"""Command-line interface.

Six subcommands cover the library's end-to-end workflow:

* ``generate`` — write the calibrated synthetic dataset to CSV;
* ``clean`` — run the six-rule cleaning pipeline over a CSV dataset;
* ``run`` — the full expansion pipeline: prints every paper table and
  (optionally) renders the figures; ``--cache-dir`` warms a stage
  cache, ``--jobs`` fans the temporal slices out over workers;
* ``sweep`` — run a parameter grid (``--set section.field=v1,v2``)
  through the staged runner with one shared cache;
* ``rebalance`` — build the Friday-night rebalancing plan;
* ``report`` — write the paper-vs-measured markdown report.

Invoke as ``python -m repro <subcommand> --help``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .analysis import plan_weekend_rebalancing
from .core import NetworkExpansionOptimiser
from .data import MobyDataset, clean_dataset
from .exceptions import ConfigError
from .pipeline import config_grid, run_sweep
from .reporting import (
    experiment_table1,
    experiment_table2,
    experiment_table3,
    experiment_table4,
    experiment_table5,
    experiment_table6,
    format_table,
    sweep_summary,
)
from .synth import SyntheticMobyGenerator


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dockless BSS network-expansion pipeline (ICDE 2024 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="write the synthetic Moby dataset to CSV"
    )
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--out", type=Path, required=True,
                          help="output directory for locations.csv/rentals.csv")

    clean = subparsers.add_parser(
        "clean", help="apply the six cleaning rules to a CSV dataset"
    )
    clean.add_argument("--data", type=Path, required=True,
                       help="directory holding locations.csv/rentals.csv")
    clean.add_argument("--out", type=Path, default=None,
                       help="where to write the cleaned dataset (optional)")

    run = subparsers.add_parser(
        "run", help="run the full expansion pipeline and print every table"
    )
    run.add_argument("--seed", type=int, default=7,
                     help="seed for the synthetic dataset (ignored with --data)")
    run.add_argument("--data", type=Path, default=None,
                     help="run over a CSV dataset instead of generating one")
    run.add_argument("--figures", type=Path, default=None,
                     help="directory to render the paper figures into")
    run.add_argument("--cache-dir", type=Path, default=None,
                     help="stage cache directory (a second run skips every "
                          "already-computed stage)")
    run.add_argument("--jobs", type=int, default=1,
                     help="worker budget for parallel stage/slice fan-out")

    sweep = subparsers.add_parser(
        "sweep", help="run a parameter grid through the staged runner"
    )
    sweep.add_argument("--seed", type=int, default=7,
                       help="seed for the synthetic dataset (ignored with --data)")
    sweep.add_argument("--data", type=Path, default=None,
                       help="sweep over a CSV dataset instead of generating one")
    sweep.add_argument("--set", dest="axes", action="append", default=[],
                       metavar="SECTION.FIELD=V1,V2,...",
                       help="one sweep axis as comma-separated values; repeat "
                            "for a cross product (e.g. --set temporal.coupling=0.08,0.12)")
    sweep.add_argument("--cache-dir", type=Path, default=None,
                       help="stage cache shared by every scenario")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="scenarios to run concurrently")
    sweep.add_argument("--executor", choices=("thread", "process"),
                       default="thread", help="worker pool backend")

    rebalance = subparsers.add_parser(
        "rebalance", help="plan Friday-night fleet rebalancing"
    )
    rebalance.add_argument("--seed", type=int, default=7)
    rebalance.add_argument("--fleet", type=int, default=95,
                           help="fleet size in bikes")

    report = subparsers.add_parser(
        "report", help="write the full paper-vs-measured markdown report"
    )
    report.add_argument("--seed", type=int, default=7)
    report.add_argument("--out", type=Path, required=True,
                        help="markdown file to write")
    return parser


def _load_dataset(args: argparse.Namespace) -> MobyDataset:
    if getattr(args, "data", None) is not None:
        return MobyDataset.from_csv(args.data)
    return SyntheticMobyGenerator(seed=args.seed).generate()


def _cmd_generate(args: argparse.Namespace) -> int:
    dataset = SyntheticMobyGenerator(seed=args.seed).generate()
    dataset.to_csv(args.out)
    print(
        f"wrote {dataset.n_locations:,} locations and "
        f"{dataset.n_rentals:,} rentals to {args.out}"
    )
    return 0


def _cmd_clean(args: argparse.Namespace) -> int:
    raw = MobyDataset.from_csv(args.data)
    cleaned, report = clean_dataset(raw)
    print(experiment_table1(report).text)
    for outcome in report.outcomes:
        print(
            f"  rule {outcome.rule}: -{outcome.locations_removed} locations, "
            f"-{outcome.rentals_removed} rentals"
        )
    if args.out is not None:
        cleaned.to_csv(args.out)
        print(f"cleaned dataset written to {args.out}")
    return 0


def _parse_axis(spec: str) -> tuple[str, list]:
    """Parse one ``--set section.field=v1,v2`` sweep axis."""
    path, _, raw_values = spec.partition("=")
    if not raw_values or "." not in path:
        raise ConfigError(
            f"bad sweep axis {spec!r}; expected SECTION.FIELD=V1,V2,..."
        )

    def coerce(text: str):
        text = text.strip()
        if text.lower() == "none":
            return None
        for kind in (int, float):
            try:
                return kind(text)
            except ValueError:
                continue
        return text

    return path.strip(), [coerce(value) for value in raw_values.split(",")]


def _cmd_run(args: argparse.Namespace) -> int:
    raw = _load_dataset(args)
    optimiser = NetworkExpansionOptimiser(
        raw, cache_dir=args.cache_dir, jobs=args.jobs
    )
    result = optimiser.run()
    for output in (
        experiment_table1(result.cleaning_report),
        experiment_table2(result),
        experiment_table3(result),
        experiment_table4(result),
        experiment_table5(result),
        experiment_table6(result),
    ):
        print(output.text)
        print()
    if args.figures is not None:
        from .viz import render_community_map, render_selected_map

        args.figures.mkdir(parents=True, exist_ok=True)
        render_selected_map(result.network).save(
            args.figures / "fig2_selected_map.svg"
        )
        for name, partition in (
            ("fig3_gbasic", result.basic.partition),
            ("fig4_gday", result.day.station_partition),
            ("fig6_ghour", result.hour.station_partition),
        ):
            render_community_map(
                result.network, partition, name
            ).save(args.figures / f"{name}.svg")
        print(f"figures written to {args.figures}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .config import PAPER_CONFIG

    axes: dict[str, list] = {}
    for spec in args.axes:
        path, values = _parse_axis(spec)
        if path in axes:
            raise ConfigError(
                f"sweep axis {path!r} given twice; list every value in one "
                f"--set (e.g. --set {path}=v1,v2)"
            )
        axes[path] = values
    grid = config_grid(PAPER_CONFIG, axes)
    raw = _load_dataset(args)
    results = run_sweep(
        raw,
        [config for _, config in grid],
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        executor=args.executor,
    )
    labels = [
        ", ".join(f"{path}={value}" for path, value in overrides.items())
        or "paper defaults"
        for overrides, _ in grid
    ]
    print(
        sweep_summary(
            list(zip(labels, results)),
            title=f"SCENARIO SWEEP ({len(results)} configs)",
        )
    )
    return 0


def _cmd_rebalance(args: argparse.Namespace) -> int:
    raw = SyntheticMobyGenerator(seed=args.seed).generate()
    optimiser = NetworkExpansionOptimiser(raw)
    optimiser.build_network()
    day = optimiser.detect_day()
    plan = plan_weekend_rebalancing(
        optimiser.build_network(), day.station_partition, args.fleet
    )
    rows = [
        [
            demand.community,
            demand.n_stations,
            demand.trips,
            f"{demand.weekend_share:.2f}",
            "receiver" if demand.is_receiver else "donor",
        ]
        for demand in plan.demands
    ]
    print(
        format_table(
            ["Community", "Stations", "Trips", "Weekend share", "Role"],
            rows,
            title="COMMUNITY DEMAND PROFILE",
        )
    )
    print(
        f"\n{plan.total_bikes_moved} of {args.fleet} bikes move "
        f"from {plan.donors} to {plan.receivers}:"
    )
    for transfer in plan.transfers:
        print(
            f"  {transfer.n_bikes} bikes: community {transfer.from_community} "
            f"(pickup {transfer.pickup_stations}) -> community "
            f"{transfer.to_community} (drop {transfer.dropoff_stations})"
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .reporting import write_markdown_report

    raw = SyntheticMobyGenerator(seed=args.seed).generate()
    result = NetworkExpansionOptimiser(raw).run()
    path = write_markdown_report(
        result, args.out, title=f"Expansion pipeline report (seed {args.seed})"
    )
    print(f"report written to {path}")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "clean": _cmd_clean,
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "rebalance": _cmd_rebalance,
    "report": _cmd_report,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
