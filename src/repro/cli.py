"""Command-line interface — a thin client over :mod:`repro.service`.

The subcommands cover the library's end-to-end workflow:

* ``generate`` — write the calibrated synthetic dataset to CSV;
* ``clean`` — run the six-rule cleaning pipeline over a CSV dataset;
* ``run`` — the full expansion pipeline: prints every paper table and
  (optionally) renders the figures; ``--cache-dir`` warms a stage
  cache, ``--jobs`` fans the temporal slices out over workers;
* ``sweep`` — run a parameter grid (``--set section.field=v1,v2``)
  and/or a dataset axis (``--datasets a,b,c`` over named datasets)
  through the staged runner with one shared cache;
* ``rebalance`` — build the Friday-night rebalancing plan;
* ``report`` — write the full paper-vs-measured markdown report;
* ``serve`` — expose the same service over HTTP (see ``docs/API.md``);
* ``bench`` — append a benchmark entry to ``BENCH_pipeline.json``.

``run``, ``sweep``, ``rebalance`` and ``report`` all build a
:class:`~repro.service.ScenarioSpec`, submit it to an in-process
:class:`~repro.service.ExpansionService`, and render the resulting
envelope — exactly what an HTTP client of ``repro serve`` receives.
``--format json`` prints the canonical envelope verbatim, byte-
identical to the ``POST /v1/runs`` response for the same scenario.
``--store-dir`` points every service-backed subcommand at the same
storage tree a ``repro serve --store-dir`` persists (stage cache,
results, datasets, job journal — see :mod:`repro.store`), so CLI runs
and the server share warm state; ``--cache-dir`` remains a deprecated
stage-cache-only alias.

Three subcommands are clients of a *running* ``repro serve`` instead
(they take ``--url``):

* ``datasets`` — ``push``/``list``/``rm`` named datasets that later
  run specs can reference as ``{"kind": "named", "name": ...}``;
* ``results`` — fetch a stored envelope by fingerprint, whole or as a
  headline view, a paginated section, or an NDJSON slice stream;
* ``cancel`` — request cooperative cancellation of a queued or
  running job;
* ``metrics`` — scrape the server's Prometheus exposition
  (``GET /v1/metrics``, see ``docs/OBSERVABILITY.md``).

Invoke as ``python -m repro <subcommand> --help``.
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Sequence

from .analysis.rebalancing import RebalancingPlan
from .core.results import ExpansionResult
from .data import MobyDataset, clean_dataset
from .exceptions import ConfigError
from .reporting import experiment_table1, format_table
from .service import (
    DatasetRef,
    ExpansionService,
    ScenarioSpec,
    canonical_envelope,
    make_server,
)
from .synth import SyntheticMobyGenerator


def _add_service_arguments(parser: argparse.ArgumentParser) -> None:
    """Options every service-backed subcommand shares."""
    parser.add_argument("--store-dir", type=Path, default=None,
                        help="root of the shared storage subsystem: stage "
                             "cache, result envelopes, named datasets and "
                             "the job journal all live under this one tree "
                             "(see repro.store)")
    parser.add_argument("--store-backend", choices=("dir", "sharded"),
                        default=None,
                        help="on-disk layout under --store-dir: 'dir' (flat, "
                             "the default) or 'sharded' (digest-prefix "
                             "fan-out for very large stores)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="deprecated alias: stage cache directory "
                             "(use --store-dir, which also persists results "
                             "and datasets)")
    parser.add_argument("--cache-bytes", type=int, default=None,
                        help="evict least-recently-used cache pickles once "
                             "the cache directory exceeds this many bytes")
    parser.add_argument("--cache-entries", type=int, default=None,
                        help="evict least-recently-used cache pickles once "
                             "the cache directory exceeds this many entries")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker budget for parallel stage/slice fan-out")
    parser.add_argument("--executor", choices=("thread", "process"),
                        default="thread",
                        help="worker pool backend; 'process' fans stages out "
                             "over worker processes, sharing values through "
                             "the on-disk stage cache")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="text renders the paper tables; json prints the "
                             "canonical result envelope")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dockless BSS network-expansion pipeline (ICDE 2024 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="write the synthetic Moby dataset to CSV"
    )
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--out", type=Path, required=True,
                          help="output directory for locations.csv/rentals.csv")

    clean = subparsers.add_parser(
        "clean", help="apply the six cleaning rules to a CSV dataset"
    )
    clean.add_argument("--data", type=Path, required=True,
                       help="directory holding locations.csv/rentals.csv")
    clean.add_argument("--out", type=Path, default=None,
                       help="where to write the cleaned dataset (optional)")

    run = subparsers.add_parser(
        "run", help="run the full expansion pipeline and print every table"
    )
    run.add_argument("--seed", type=int, default=7,
                     help="seed for the synthetic dataset (ignored with --data)")
    run.add_argument("--data", type=Path, default=None,
                     help="run over a CSV dataset instead of generating one")
    run.add_argument("--figures", type=Path, default=None,
                     help="directory to render the paper figures into")
    run.add_argument("--timings", action="store_true",
                     help="print the per-stage wall-clock breakdown after "
                          "the tables")
    _add_service_arguments(run)

    sweep = subparsers.add_parser(
        "sweep", help="run a parameter grid through the staged runner"
    )
    sweep.add_argument("--seed", type=int, default=7,
                       help="seed for the synthetic dataset (ignored with --data)")
    sweep.add_argument("--data", type=Path, default=None,
                       help="sweep over a CSV dataset instead of generating one")
    sweep.add_argument("--set", dest="axes", action="append", default=[],
                       metavar="SECTION.FIELD=V1,V2,...",
                       help="one sweep axis as comma-separated values; repeat "
                            "for a cross product (e.g. --set temporal.coupling=0.08,0.12)")
    sweep.add_argument("--datasets", default=None, metavar="NAME1,NAME2,...",
                       help="sweep the config grid over these named datasets "
                            "(stored under --store-dir by 'repro datasets "
                            "push' against a server on the same store, or "
                            "registered in-process); one envelope, every "
                            "(dataset, config) child individually "
                            "addressable")
    _add_service_arguments(sweep)

    rebalance = subparsers.add_parser(
        "rebalance", help="plan Friday-night fleet rebalancing"
    )
    rebalance.add_argument("--seed", type=int, default=7)
    rebalance.add_argument("--fleet", type=int, default=95,
                           help="fleet size in bikes")
    _add_service_arguments(rebalance)

    report = subparsers.add_parser(
        "report", help="write the full paper-vs-measured markdown report"
    )
    report.add_argument("--seed", type=int, default=7)
    report.add_argument("--out", type=Path, required=True,
                        help="markdown file to write")
    _add_service_arguments(report)

    serve = subparsers.add_parser(
        "serve", help="serve the expansion service over HTTP"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8722)
    serve.add_argument("--store-dir", type=Path, default=None,
                       help="one directory tree persisting everything: stage "
                            "cache, result envelopes, named datasets and the "
                            "job journal — a restarted serve over the same "
                            "store lists prior jobs, serves their results "
                            "and re-queues the ones left pending")
    serve.add_argument("--store-backend", choices=("dir", "sharded"),
                       default=None,
                       help="on-disk layout under --store-dir ('sharded' "
                            "fans entries out by digest prefix)")
    serve.add_argument("--cache-dir", type=Path, default=None,
                       help="deprecated alias: stage cache directory only "
                            "(use --store-dir)")
    serve.add_argument("--cache-bytes", type=int, default=None,
                       help="LRU-evict cache pickles beyond this many bytes")
    serve.add_argument("--cache-entries", type=int, default=None,
                       help="LRU-evict cache pickles beyond this many entries")
    serve.add_argument("--results-dir", type=Path, default=None,
                       help="deprecated alias: results directory only "
                            "(use --store-dir)")
    serve.add_argument("--workers", type=int, default=1,
                       help="pre-fork this many serving processes sharing "
                            "one port (SO_REUSEPORT when available); more "
                            "than 1 requires --store-dir, the shared "
                            "journal that makes the fleet one service")
    serve.add_argument("--job-workers", type=int, default=2,
                       help="concurrently executing jobs per process")
    serve.add_argument("--jobs", type=int, default=1,
                       help="worker budget inside each pipeline run")
    serve.add_argument("--executor", choices=("thread", "process"),
                       default="thread",
                       help="stage fan-out backend inside each run; "
                            "'process' keeps slow jobs off the GIL")
    serve.add_argument("--retain-jobs", type=int, default=1024,
                       help="keep at most this many finished jobs in the "
                            "job table (oldest pruned first)")
    serve.add_argument("--datasets-dir", type=Path, default=None,
                       help="deprecated alias: datasets directory only "
                            "(use --store-dir); memory-only when neither "
                            "is given")
    serve.add_argument("--max-dataset-bytes", type=int, default=None,
                       help="reject a single dataset upload over this many "
                            "serialised bytes (default: 64MiB)")
    serve.add_argument("--max-datasets-bytes", type=int, default=None,
                       help="LRU-evict stored datasets once the store "
                            "exceeds this many bytes")
    serve.add_argument("--max-datasets", type=int, default=None,
                       help="LRU-evict stored datasets beyond this count")
    serve.add_argument("--access-log", type=str, default=None,
                       metavar="PATH",
                       help="write one single-line JSON record per HTTP "
                            "request and per job transition to PATH "
                            "('-' for stderr)")
    serve.add_argument("--healthz-ttl", type=float, default=None,
                       metavar="SECONDS",
                       help="occupancy-scan cache TTL for /v1/healthz and "
                            "the store metrics (0 disables the cache; "
                            "default: 5s)")
    serve.add_argument("--no-metrics", action="store_true",
                       help="disable the metrics registry; GET /v1/metrics "
                            "answers 404 and instruments become no-ops")
    serve.add_argument("--queue-size", type=int, default=None,
                       metavar="N",
                       help="bound the admission queue: refuse new runs "
                            "with 429 + Retry-After while N jobs are "
                            "already admitted (default: unbounded)")
    serve.add_argument("--watchdog-stale", type=float, default=None,
                       metavar="SECONDS",
                       help="fail a running job as 'timeout' once its "
                            "stage-boundary heartbeat is older than this "
                            "(default: watchdog off)")

    datasets = subparsers.add_parser(
        "datasets", help="manage named datasets on a running repro serve"
    )
    dataset_commands = datasets.add_subparsers(
        dest="datasets_command", required=True
    )
    push = dataset_commands.add_parser(
        "push", help="upload a dataset under a name (PUT /v1/datasets/<name>)"
    )
    push.add_argument("name", help="dataset name (later run specs use "
                                   '{"kind": "named", "name": <name>})')
    push.add_argument("--url", default="http://127.0.0.1:8722",
                      help="base URL of the running server")
    push.add_argument("--data", type=Path, default=None,
                      help="CSV directory to upload (default: generate the "
                           "synthetic dataset from --seed)")
    push.add_argument("--seed", type=int, default=7,
                      help="synthetic seed when --data is not given")
    push.add_argument("--append", action="store_true",
                      help="append the rows of --data/rentals.csv onto the "
                           "stored dataset (PATCH /v1/datasets/<name>) "
                           "instead of replacing it; appended rental ids "
                           "must exceed every stored id")
    listing = dataset_commands.add_parser(
        "list", help="list stored datasets (GET /v1/datasets)"
    )
    listing.add_argument("--url", default="http://127.0.0.1:8722")
    remove = dataset_commands.add_parser(
        "rm", help="delete a named dataset (DELETE /v1/datasets/<name>)"
    )
    remove.add_argument("name")
    remove.add_argument("--url", default="http://127.0.0.1:8722")

    results = subparsers.add_parser(
        "results", help="fetch a stored result envelope from a running server"
    )
    results.add_argument("fingerprint", help="result fingerprint (from a job "
                                             "document or sweep scenario)")
    results.add_argument("--url", default="http://127.0.0.1:8722")
    results.add_argument("--fields", choices=("headline",), default=None,
                         help="headline: the ~1.5KB summary view")
    results.add_argument("--section", default=None, metavar="DOTTED.PATH",
                         help="address one envelope subtree, e.g. "
                              "outputs.run.day.slice_partition.assignment")
    results.add_argument("--page", type=int, default=None,
                         help="1-based page of a list section")
    results.add_argument("--page-size", type=int, default=None,
                         help="items per page (server default: 500)")
    results.add_argument("--stream", choices=("day", "hour"), default=None,
                         help="stream this temporal block's per-slice "
                              "assignment as NDJSON instead")

    cancel = subparsers.add_parser(
        "cancel", help="request cancellation of a job (DELETE /v1/jobs/<id>)"
    )
    cancel.add_argument("job_id")
    cancel.add_argument("--url", default="http://127.0.0.1:8722")

    metrics = subparsers.add_parser(
        "metrics",
        help="print a running server's metrics (GET /v1/metrics, "
             "Prometheus text format)",
    )
    metrics.add_argument("--url", default="http://127.0.0.1:8722")

    bench = subparsers.add_parser(
        "bench", help="run the calibrated benchmark matrix and append to "
                      "BENCH_pipeline.json"
    )
    bench.add_argument("--quick", action="store_true",
                       help="paper scale only, no baseline-kernel rerun")
    bench.add_argument("--out", type=Path, default=None,
                       help="trajectory file (default: BENCH_pipeline.json "
                            "at the repo root / current directory)")
    bench.add_argument("--scales", default="1,2,4",
                       help="comma-separated workload scales (trip volume "
                            "multipliers)")
    bench.add_argument("--label", default=None,
                       help="label stored on the trajectory entry")
    bench.add_argument("--check", action="store_true",
                       help="fail (exit 1) when the parallel-scaling gate "
                            "rejects the fresh entry: jobs-4 must not be "
                            "slower than the warm serial reference")
    bench.add_argument("--max-ratio", type=float, default=None,
                       help="gate limit for jobs-4 wall / serial wall "
                            "(default: 1.1, parity plus noise margin)")
    bench.add_argument("--incremental", action="store_true",
                       help="run the incremental-recompute rung instead: "
                            "cold paper run, ~5%% append, delta-aware "
                            "re-run; with --check the re-run must be >=3x "
                            "faster than cold and bit-identical")
    bench.add_argument("--min-speedup", type=float, default=None,
                       help="gate floor for cold wall / incremental wall "
                            "(default: 3.0; only with --incremental)")
    return parser


# ---------------------------------------------------------------------------
# HTTP client plumbing shared by datasets/results/cancel
# ---------------------------------------------------------------------------


def _http_request(
    url: str,
    method: str = "GET",
    body: Any | None = None,
    timeout: float = 600.0,
) -> tuple[int, str]:
    """One JSON exchange with a running server; (status, body text).

    HTTP error statuses come back as values, not exceptions — the
    subcommands print the server's ``{"error": ...}`` document and
    exit non-zero.  Connection failures raise ``URLError`` and are
    translated by :func:`_client_call`.
    """
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        url,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


def _client_call(
    url: str, method: str = "GET", body: Any | None = None
) -> tuple[int, str] | None:
    """:func:`_http_request` with connection errors reported, not raised."""
    try:
        return _http_request(url, method, body)
    except urllib.error.URLError as error:
        print(
            f"cannot reach {url}: {error.reason} "
            "(is `repro serve` running?)",
            file=sys.stderr,
        )
        return None


def _print_response(status: int, text: str) -> int:
    """Print a server response; non-2xx goes to stderr with exit 1."""
    if 200 <= status < 300:
        print(text)
        return 0
    print(text, file=sys.stderr)
    return 1


# ---------------------------------------------------------------------------
# Service plumbing shared by run/sweep/rebalance/report
# ---------------------------------------------------------------------------


def _dataset_ref(args: argparse.Namespace) -> DatasetRef:
    if getattr(args, "data", None) is not None:
        return DatasetRef.csv(args.data)
    return DatasetRef.synthetic(args.seed)


def _make_service(args: argparse.Namespace) -> ExpansionService:
    """An in-process service wired from the subcommand's arguments.

    With ``--store-dir`` everything (stage pickles, result envelopes,
    named datasets, the job journal) persists under one tree — the same
    tree a ``repro serve --store-dir`` uses, so CLI runs and the server
    share warm stages, stored results and uploaded datasets.  The
    deprecated ``--cache-dir`` alias keeps its historical behaviour:
    stage pickles there, result envelopes under ``<cache-dir>/results``.
    """
    store_dir = getattr(args, "store_dir", None)
    cache_dir = getattr(args, "cache_dir", None)
    if store_dir is None and getattr(args, "store_backend", None):
        # Same verdict `repro serve` reaches (StoreError from Store):
        # a backend choice without a tree is a mistake, never a no-op.
        raise ConfigError("--store-backend requires --store-dir")
    if store_dir is not None:
        # Same per-component precedence as `repro serve`: an explicit
        # --cache-dir overrides the store's stage namespace, so both
        # surfaces always read/write the same stage-cache tree.
        return ExpansionService(
            store_dir=store_dir,
            store_backend=getattr(args, "store_backend", None),
            cache_dir=cache_dir,
            cache_bytes=getattr(args, "cache_bytes", None),
            cache_entries=getattr(args, "cache_entries", None),
            pipeline_jobs=getattr(args, "jobs", 1),
            pipeline_executor=getattr(args, "executor", "thread"),
            sweep_executor=getattr(args, "executor", "thread"),
            # One-shot commands must not hijack a serve's journalled
            # backlog; pending jobs stay queued for a resuming server.
            resume_jobs=False,
        )
    return ExpansionService(
        cache_dir=cache_dir,
        cache_bytes=getattr(args, "cache_bytes", None),
        cache_entries=getattr(args, "cache_entries", None),
        results_dir=None if cache_dir is None else cache_dir / "results",
        pipeline_jobs=getattr(args, "jobs", 1),
        pipeline_executor=getattr(args, "executor", "thread"),
        sweep_executor=getattr(args, "executor", "thread"),
    )


def _run_scenario(
    args: argparse.Namespace, spec: ScenarioSpec
) -> tuple[dict, dict | None]:
    """Run a spec on an in-process service; returns (envelope, timings)."""
    with _make_service(args) as service:
        job = service.submit(spec)
        envelope = job.wait()
        return envelope, job.timings


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------


def _cmd_generate(args: argparse.Namespace) -> int:
    dataset = SyntheticMobyGenerator(seed=args.seed).generate()
    dataset.to_csv(args.out)
    print(
        f"wrote {dataset.n_locations:,} locations and "
        f"{dataset.n_rentals:,} rentals to {args.out}"
    )
    return 0


def _cmd_clean(args: argparse.Namespace) -> int:
    raw = MobyDataset.from_csv(args.data)
    cleaned, report = clean_dataset(raw)
    print(experiment_table1(report).text)
    for outcome in report.outcomes:
        print(
            f"  rule {outcome.rule}: -{outcome.locations_removed} locations, "
            f"-{outcome.rentals_removed} rentals"
        )
    if args.out is not None:
        cleaned.to_csv(args.out)
        print(f"cleaned dataset written to {args.out}")
    return 0


def _parse_axis(spec: str) -> tuple[str, list]:
    """Parse one ``--set section.field=v1,v2`` sweep axis."""
    path, _, raw_values = spec.partition("=")
    if not raw_values or "." not in path:
        raise ConfigError(
            f"bad sweep axis {spec!r}; expected SECTION.FIELD=V1,V2,..."
        )

    def coerce(text: str):
        text = text.strip()
        if text.lower() == "none":
            return None
        for kind in (int, float):
            try:
                return kind(text)
            except ValueError:
                continue
        return text

    return path.strip(), [coerce(value) for value in raw_values.split(",")]


def _cmd_run(args: argparse.Namespace) -> int:
    envelope, timings = _run_scenario(
        args, ScenarioSpec(dataset=_dataset_ref(args), outputs=("run",))
    )
    if args.format == "json":
        print(canonical_envelope(envelope))
        if args.timings and timings is not None:
            # stdout stays pure canonical JSON; the breakdown goes to
            # stderr so `--format json --timings` honours both flags.
            from .perf import PerfReport

            print("PER-STAGE WALL CLOCK", file=sys.stderr)
            print(PerfReport.from_dict(timings).render(indent=2), file=sys.stderr)
        return 0
    from .reporting import (
        experiment_table2,
        experiment_table3,
        experiment_table4,
        experiment_table5,
        experiment_table6,
    )

    result = ExpansionResult.from_dict(envelope["outputs"]["run"])
    for output in (
        experiment_table1(result.cleaning_report),
        experiment_table2(result),
        experiment_table3(result),
        experiment_table4(result),
        experiment_table5(result),
        experiment_table6(result),
    ):
        print(output.text)
        print()
    if args.figures is not None:
        from .viz import render_community_map, render_selected_map

        args.figures.mkdir(parents=True, exist_ok=True)
        render_selected_map(result.network).save(
            args.figures / "fig2_selected_map.svg"
        )
        for name, partition in (
            ("fig3_gbasic", result.basic.partition),
            ("fig4_gday", result.day.station_partition),
            ("fig6_ghour", result.hour.station_partition),
        ):
            render_community_map(
                result.network, partition, name
            ).save(args.figures / f"{name}.svg")
        print(f"figures written to {args.figures}")
    if args.timings and timings is not None:
        from .perf import PerfReport

        print("PER-STAGE WALL CLOCK")
        print(PerfReport.from_dict(timings).render(indent=2))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    axes: dict[str, list] = {}
    for spec in args.axes:
        path, values = _parse_axis(spec)
        if path in axes:
            raise ConfigError(
                f"sweep axis {path!r} given twice; list every value in one "
                f"--set (e.g. --set {path}=v1,v2)"
            )
        axes[path] = values
    sweep_datasets = tuple(
        name.strip() for name in (args.datasets or "").split(",") if name.strip()
    )
    envelope, _ = _run_scenario(
        args,
        ScenarioSpec(
            dataset=_dataset_ref(args),
            outputs=("sweep",),
            sweep_axes=axes,
            sweep_datasets=sweep_datasets,
        ),
    )
    if args.format == "json":
        print(canonical_envelope(envelope))
        return 0
    print(envelope["outputs"]["sweep"]["table"])
    return 0


def _cmd_rebalance(args: argparse.Namespace) -> int:
    envelope, _ = _run_scenario(
        args,
        ScenarioSpec(
            dataset=_dataset_ref(args),
            outputs=("rebalance",),
            fleet_size=args.fleet,
        ),
    )
    if args.format == "json":
        print(canonical_envelope(envelope))
        return 0
    plan = RebalancingPlan.from_dict(envelope["outputs"]["rebalance"]["plan"])
    rows = [
        [
            demand.community,
            demand.n_stations,
            demand.trips,
            f"{demand.weekend_share:.2f}",
            "receiver" if demand.is_receiver else "donor",
        ]
        for demand in plan.demands
    ]
    print(
        format_table(
            ["Community", "Stations", "Trips", "Weekend share", "Role"],
            rows,
            title="COMMUNITY DEMAND PROFILE",
        )
    )
    print(
        f"\n{plan.total_bikes_moved} of {args.fleet} bikes move "
        f"from {plan.donors} to {plan.receivers}:"
    )
    for transfer in plan.transfers:
        print(
            f"  {transfer.n_bikes} bikes: community {transfer.from_community} "
            f"(pickup {transfer.pickup_stations}) -> community "
            f"{transfer.to_community} (drop {transfer.dropoff_stations})"
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    envelope, _ = _run_scenario(
        args,
        ScenarioSpec(
            dataset=_dataset_ref(args),
            outputs=("report",),
            report_title=f"Expansion pipeline report (seed {args.seed})",
        ),
    )
    path = Path(args.out)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(envelope["outputs"]["report"]["markdown"])
    if args.format == "json":
        print(canonical_envelope(envelope))
    else:
        print(f"report written to {path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .obs import JsonEventLog
    from .service.datasets import DEFAULT_MAX_DATASET_BYTES

    def build_service(
        event_log: "JsonEventLog | None", worker: int, resume_jobs: bool
    ) -> ExpansionService:
        return ExpansionService(
            store_dir=args.store_dir,
            store_backend=args.store_backend,
            cache_dir=args.cache_dir,
            cache_bytes=args.cache_bytes,
            cache_entries=args.cache_entries,
            results_dir=args.results_dir,
            max_workers=args.job_workers,
            pipeline_jobs=args.jobs,
            pipeline_executor=args.executor,
            retain_jobs=args.retain_jobs,
            datasets_dir=args.datasets_dir,
            max_dataset_bytes=(
                args.max_dataset_bytes
                if args.max_dataset_bytes is not None
                else DEFAULT_MAX_DATASET_BYTES
            ),
            max_datasets_bytes=args.max_datasets_bytes,
            max_datasets=args.max_datasets,
            resume_jobs=resume_jobs,
            metrics=not args.no_metrics,
            healthz_ttl=args.healthz_ttl,
            event_log=event_log,
            max_queue=args.queue_size,
            watchdog_stale_s=args.watchdog_stale,
            worker=worker,
        )

    if args.workers > 1:
        if args.store_dir is None:
            print(
                "error: --workers > 1 requires --store-dir (the shared "
                "journal is what makes the worker fleet one service)",
                file=sys.stderr,
            )
            return 2
        from .service.prefork import serve_prefork

        def factory(index: int):
            # Built inside the forked child: thread pools, metrics
            # registries and log handles must never cross a fork.
            event_log = (
                JsonEventLog(args.access_log)
                if args.access_log is not None
                else None
            )
            # Worker 0 is the sole claimant of a previous fleet's
            # journalled backlog — N resuming workers would re-run it
            # N times.
            service = build_service(event_log, index, resume_jobs=index == 0)
            return service, event_log

        return serve_prefork(
            factory,
            host=args.host,
            port=args.port,
            workers=args.workers,
            announce=lambda url: print(
                f"repro service listening on {url}", flush=True
            ),
        )

    event_log = (
        JsonEventLog(args.access_log) if args.access_log is not None else None
    )
    service = build_service(event_log, 0, resume_jobs=True)
    server = make_server(
        service, host=args.host, port=args.port, access_log=event_log
    )
    print(f"repro service listening on {server.url}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.server_close()
        service.close()
        if event_log is not None:
            event_log.close()
    return 0


def _cmd_datasets(args: argparse.Namespace) -> int:
    base = args.url.rstrip("/")
    if args.datasets_command == "push":
        if getattr(args, "append", False):
            if args.data is None:
                raise ConfigError(
                    "datasets push --append needs --data (a directory "
                    "holding the delta rentals.csv)"
                )
            from .data.csvio import read_rentals

            rows = [
                [
                    rental.rental_id,
                    rental.bike_id,
                    rental.started_at.isoformat(),
                    rental.ended_at.isoformat(),
                    rental.rental_location_id,
                    rental.return_location_id,
                ]
                for rental in read_rentals(args.data / "rentals.csv")
            ]
            response = _client_call(
                f"{base}/v1/datasets/{args.name}",
                "PATCH",
                {"rentals": rows},
            )
        else:
            if args.data is not None:
                dataset = MobyDataset.from_csv(args.data)
            else:
                dataset = SyntheticMobyGenerator(seed=args.seed).generate()
            response = _client_call(
                f"{base}/v1/datasets/{args.name}", "PUT", dataset.to_dict()
            )
    elif args.datasets_command == "list":
        response = _client_call(f"{base}/v1/datasets")
    else:  # rm
        response = _client_call(f"{base}/v1/datasets/{args.name}", "DELETE")
    if response is None:
        return 1
    return _print_response(*response)


def _cmd_results(args: argparse.Namespace) -> int:
    base = args.url.rstrip("/")
    if args.stream is not None:
        if args.fields or args.section or args.page or args.page_size:
            raise ConfigError("--stream excludes --fields/--section/--page")
        url = (
            f"{base}/v1/results/{args.fingerprint}/slices"
            f"?output=run&block={args.stream}"
        )
        try:
            request = urllib.request.Request(url)
            with urllib.request.urlopen(request, timeout=600) as response:
                # NDJSON: relay the stream line by line as it arrives.
                for line in response:
                    sys.stdout.write(line.decode("utf-8"))
            return 0
        except urllib.error.HTTPError as error:
            print(error.read().decode("utf-8"), file=sys.stderr)
            return 1
        except urllib.error.URLError as error:
            print(f"cannot reach {base}: {error.reason}", file=sys.stderr)
            return 1
    query: list[str] = []
    if args.fields:
        query.append(f"fields={args.fields}")
    if args.section:
        query.append(f"section={args.section}")
    if args.page is not None:
        query.append(f"page={args.page}")
    if args.page_size is not None:
        query.append(f"page_size={args.page_size}")
    suffix = f"?{'&'.join(query)}" if query else ""
    response = _client_call(f"{base}/v1/results/{args.fingerprint}{suffix}")
    if response is None:
        return 1
    return _print_response(*response)


def _cmd_cancel(args: argparse.Namespace) -> int:
    base = args.url.rstrip("/")
    response = _client_call(f"{base}/v1/jobs/{args.job_id}", "DELETE")
    if response is None:
        return 1
    return _print_response(*response)


def _cmd_metrics(args: argparse.Namespace) -> int:
    base = args.url.rstrip("/")
    response = _client_call(f"{base}/v1/metrics")
    if response is None:
        return 1
    status, text = response
    if 200 <= status < 300:
        # Exposition text, not JSON: print verbatim (it ends in \n).
        sys.stdout.write(text)
        return 0
    print(text, file=sys.stderr)
    return 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from .perf.bench import DEFAULT_PARALLEL_MAX_RATIO, check_parallel_gate, run_bench

    if args.incremental:
        from .perf.bench import (
            INCREMENTAL_MIN_SPEEDUP,
            check_incremental_gate,
            run_incremental_bench,
        )

        entry = run_incremental_bench(
            out=args.out, label=args.label, echo=print
        )
        block = entry["incremental"]
        print(
            f"incremental re-run after a {block['delta_rentals']}-trip "
            f"append: {block['incremental_wall_s']:.2f}s vs "
            f"{block['cold_wall_s']:.2f}s cold "
            f"({block['speedup']:.2f}x; {block['slices_recomputed']} "
            f"slices recomputed, {block['slices_reused']} reused)"
        )
        if args.check or args.min_speedup is not None:
            min_speedup = (
                args.min_speedup
                if args.min_speedup is not None
                else INCREMENTAL_MIN_SPEEDUP
            )
            ok, message = check_incremental_gate(entry, min_speedup)
            print(message)
            if not ok:
                return 1
        return 0

    scales = tuple(int(part) for part in str(args.scales).split(",") if part)
    entry = run_bench(
        scales=scales,
        quick=args.quick,
        out=args.out,
        label=args.label,
        echo=print,
    )
    headline = entry["end_to_end"][0]
    notes = []
    if "speedup_vs_origin" in entry:
        notes.append(f"{entry['speedup_vs_origin']:.2f}x vs trajectory origin")
    if "speedup_vs_reference_kernels" in headline:
        notes.append(
            f"{headline['speedup_vs_reference_kernels']:.2f}x vs "
            "pre-optimisation kernels in this tree"
        )
    suffix = f" ({'; '.join(notes)})" if notes else ""
    print(f"cold paper run: {headline['wall_s']:.2f}s{suffix}")
    if args.check or args.max_ratio is not None:
        max_ratio = (
            args.max_ratio if args.max_ratio is not None else DEFAULT_PARALLEL_MAX_RATIO
        )
        ok, message = check_parallel_gate(entry, max_ratio)
        print(message)
        if not ok:
            return 1
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "clean": _cmd_clean,
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "rebalance": _cmd_rebalance,
    "report": _cmd_report,
    "serve": _cmd_serve,
    "datasets": _cmd_datasets,
    "results": _cmd_results,
    "cancel": _cmd_cancel,
    "metrics": _cmd_metrics,
    "bench": _cmd_bench,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
