"""Candidate-station generation (paper Section IV-A + Table II).

Starting from a *cleaned* dataset, this stage:

1. pins the fixed stations and pre-assigns every location within 50 m
   of one to that station's group;
2. condenses the remaining dockless locations with complete-linkage
   HAC cut at the 100 m Cluster-Boundary rule;
3. projects every trip onto the resulting groups, producing the
   *candidate graph* whose nodes are fixed stations plus candidate
   clusters and whose weighted edges are trip flows.

Node keys in the candidate graph are ``("station", location_id)`` or
``("cluster", cluster_id)`` tuples.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import GeographicClustering, cluster_locations
from ..config import ClusteringConfig
from ..data import MobyDataset
from ..geo import GeoPoint
from ..graphdb import DirectedGraph, WeightedGraph

#: A candidate-graph node: ("station", location_id) or ("cluster", id).
GroupKey = tuple[str, int]


@dataclass(frozen=True)
class CandidateGraphStats:
    """The counts of the paper's Table II."""

    n_nodes: int
    n_undirected_edges: int
    n_undirected_edges_no_loops: int
    n_directed_edges: int
    n_directed_edges_no_loops: int
    n_trips: int

    def as_rows(self) -> list[tuple[str, int]]:
        """(measure, value) rows in the paper's order."""
        return [
            ("#nodes", self.n_nodes),
            ("#undirected edges", self.n_undirected_edges),
            ("#undirected edges (no loops)", self.n_undirected_edges_no_loops),
            ("#directed edges", self.n_directed_edges),
            ("#directed edges (no loops)", self.n_directed_edges_no_loops),
            ("#trips", self.n_trips),
        ]

    def to_dict(self) -> dict[str, int]:
        """JSON-safe envelope (field name -> count)."""
        return {
            "n_nodes": self.n_nodes,
            "n_undirected_edges": self.n_undirected_edges,
            "n_undirected_edges_no_loops": self.n_undirected_edges_no_loops,
            "n_directed_edges": self.n_directed_edges,
            "n_directed_edges_no_loops": self.n_directed_edges_no_loops,
            "n_trips": self.n_trips,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CandidateGraphStats":
        """Exact inverse of :meth:`to_dict`."""
        return cls(**{key: payload[key] for key in (
            "n_nodes",
            "n_undirected_edges",
            "n_undirected_edges_no_loops",
            "n_directed_edges",
            "n_directed_edges_no_loops",
            "n_trips",
        )})


@dataclass
class CandidateNetwork:
    """The condensation stage's full output."""

    clustering: GeographicClustering
    flow: DirectedGraph
    location_to_group: dict[int, GroupKey]
    station_points: dict[int, GeoPoint]
    cluster_centroids: dict[int, GeoPoint]
    n_trips: int

    @property
    def n_stations(self) -> int:
        """Number of fixed stations."""
        return len(self.station_points)

    @property
    def n_candidates(self) -> int:
        """Number of candidate clusters."""
        return len(self.cluster_centroids)

    def group_point(self, group: GroupKey) -> GeoPoint:
        """Position of a group: station point or cluster centroid."""
        kind, key = group
        if kind == "station":
            return self.station_points[key]
        return self.cluster_centroids[key]

    def undirected(self) -> WeightedGraph:
        """Undirected weighted view of the candidate flow."""
        return self.flow.undirected()

    def stats(self) -> CandidateGraphStats:
        """Table II's counts for this candidate graph."""
        undirected = self.undirected()
        directed_edges = self.flow.edge_count
        directed_loops = sum(1 for u, v, _ in self.flow.edges() if u == v)
        undirected_edges = undirected.edge_count
        undirected_loops = sum(
            1 for u, v, _ in undirected.edges() if u == v
        )
        return CandidateGraphStats(
            n_nodes=self.n_stations + self.n_candidates,
            n_undirected_edges=undirected_edges,
            n_undirected_edges_no_loops=undirected_edges - undirected_loops,
            n_directed_edges=directed_edges,
            n_directed_edges_no_loops=directed_edges - directed_loops,
            n_trips=self.n_trips,
        )


def condense_locations(
    cleaned: MobyDataset, config: ClusteringConfig | None = None
) -> GeographicClustering:
    """The HAC condensation alone (steps 1–2, no trip projection).

    This is the expensive half of the candidate stage — complete-
    linkage HAC over every cleaned location — and it depends only on
    the cleaned *location* table, never on the rentals.  The runner
    caches its result under the cleaned-locations digest, so appending
    trips re-uses the clustering verbatim.
    """
    cfg = config or ClusteringConfig()
    location_points: dict[int, GeoPoint] = {
        record.location_id: record.point() for record in cleaned.locations()
    }
    station_points: dict[int, GeoPoint] = {
        record.location_id: record.point() for record in cleaned.stations()
    }
    return cluster_locations(location_points, station_points, cfg)


def project_candidate_flow(
    cleaned: MobyDataset, clustering: GeographicClustering
) -> CandidateNetwork:
    """Project trips onto a prebuilt clustering (step 3)."""
    station_points: dict[int, GeoPoint] = {
        record.location_id: record.point() for record in cleaned.stations()
    }
    location_to_group = clustering.assignment()

    flow = DirectedGraph()
    for station_id in station_points:
        flow.add_node(("station", station_id))
    cluster_centroids: dict[int, GeoPoint] = {}
    for cluster in clustering.clusters:
        cluster_centroids[cluster.cluster_id] = cluster.centroid
        flow.add_node(("cluster", cluster.cluster_id))

    n_trips = 0
    for row in cleaned.rental_rows():
        origin = location_to_group[row["rental_location_id"]]
        destination = location_to_group[row["return_location_id"]]
        flow.add_edge(origin, destination, 1.0)
        n_trips += 1

    return CandidateNetwork(
        clustering=clustering,
        flow=flow,
        location_to_group=location_to_group,
        station_points=station_points,
        cluster_centroids=cluster_centroids,
        n_trips=n_trips,
    )


def build_candidate_network(
    cleaned: MobyDataset, config: ClusteringConfig | None = None
) -> CandidateNetwork:
    """Run the condensation stage over a cleaned dataset."""
    return project_candidate_flow(cleaned, condense_locations(cleaned, config))
