"""Community composition tables and temporal usage profiles.

These functions produce exactly the quantities the paper tabulates and
plots after community detection:

* Tables IV/V/VI — per community: old/new station counts and the
  number of trips *within* the community, *out* of it, *in*to it;
* Figure 5 — each G_Day community's trip share per day of week;
* Figure 7 — each G_Hour community's trip share per hour of day;
* the headline self-containment figure (~74 % of trips start and end
  in the same community).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..community import Partition
from .graphs import Station, TripOD

DAY_NAMES = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")


@dataclass(frozen=True)
class CommunityRow:
    """One row of the paper's community tables."""

    community: int
    n_old_stations: int
    n_new_stations: int
    trips_within: int
    trips_out: int
    trips_in: int

    @property
    def n_stations(self) -> int:
        """Total stations in the community."""
        return self.n_old_stations + self.n_new_stations

    @property
    def trips_total(self) -> int:
        """Within + out + in (the paper's Total column)."""
        return self.trips_within + self.trips_out + self.trips_in


def community_table(
    trips: list[TripOD],
    partition: Partition,
    stations: dict[int, Station],
) -> list[CommunityRow]:
    """Build the Table IV/V/VI rows for one partition.

    Stations missing from the partition (possible when a station has no
    trips at the given granularity) are skipped in the station counts.
    """
    labels = partition.labels()
    old_counts = {label: 0 for label in labels}
    new_counts = {label: 0 for label in labels}
    for station_id, station in stations.items():
        if station_id not in partition:
            continue
        label = partition[station_id]
        if station.is_new:
            new_counts[label] += 1
        else:
            old_counts[label] += 1

    within = {label: 0 for label in labels}
    out = {label: 0 for label in labels}
    into = {label: 0 for label in labels}
    for trip in trips:
        origin_label = partition[trip.origin]
        destination_label = partition[trip.destination]
        if origin_label == destination_label:
            within[origin_label] += 1
        else:
            out[origin_label] += 1
            into[destination_label] += 1

    return [
        CommunityRow(
            community=label,
            n_old_stations=old_counts[label],
            n_new_stations=new_counts[label],
            trips_within=within[label],
            trips_out=out[label],
            trips_in=into[label],
        )
        for label in labels
    ]


def self_containment(trips: list[TripOD], partition: Partition) -> float:
    """Fraction of trips starting and ending in the same community."""
    if not trips:
        return 0.0
    same = sum(
        1 for trip in trips if partition[trip.origin] == partition[trip.destination]
    )
    return same / len(trips)


def daily_profile(
    trips: list[TripOD], partition: Partition
) -> dict[int, list[float]]:
    """Figure 5: each community's share of trips per day of week.

    A trip is attributed to its origin's community.  Each community's
    7-vector sums to 1 (communities with no trips return zeros).
    """
    counts: dict[int, list[int]] = {
        label: [0] * 7 for label in partition.labels()
    }
    for trip in trips:
        counts[partition[trip.origin]][trip.day_of_week] += 1
    return {
        label: _normalise(values) for label, values in counts.items()
    }


def hourly_profile(
    trips: list[TripOD], partition: Partition
) -> dict[int, list[float]]:
    """Figure 7: each community's share of trips per hour of day."""
    counts: dict[int, list[int]] = {
        label: [0] * 24 for label in partition.labels()
    }
    for trip in trips:
        counts[partition[trip.origin]][trip.hour_of_day] += 1
    return {
        label: _normalise(values) for label, values in counts.items()
    }


def _normalise(values: list[int]) -> list[float]:
    total = sum(values)
    if total == 0:
        return [0.0] * len(values)
    return [value / total for value in values]


def weekend_share(profile: list[float]) -> float:
    """Share of a 7-day profile falling on Saturday + Sunday."""
    if len(profile) != 7:
        raise ValueError("daily profile must have 7 entries")
    return profile[5] + profile[6]


def commute_peak_share(profile: list[float]) -> float:
    """Share of a 24-hour profile in the commute peaks (7-9 and 16-18)."""
    if len(profile) != 24:
        raise ValueError("hourly profile must have 24 entries")
    return sum(profile[7:10]) + sum(profile[16:19])


def midday_share(profile: list[float]) -> float:
    """Share of a 24-hour profile in the 11:00-15:59 midday window."""
    if len(profile) != 24:
        raise ValueError("hourly profile must have 24 entries")
    return sum(profile[11:16])
