"""Post-hoc validation of an expansion (paper's third contribution).

The paper validates new stations by checking that they are not outliers
— that they join communities alongside existing stations and observe
the same activity patterns.  This module audits a finished
:class:`~repro.core.expansion.ExpansionResult` against:

* the four selection rules (cluster diameter, centroid spacing,
  degree threshold, secondary distance);
* community health (positive modularity, new stations spread over
  communities rather than forming isolated ones);
* behavioural similarity (each new station's degree lies within the
  range spanned by the fixed stations' degrees, scaled tolerance).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster import cluster_diameter_m
from ..geo import haversine_m
from .expansion import ExpansionResult


@dataclass
class ValidationReport:
    """Outcome of every validation check."""

    checks: dict[str, bool] = field(default_factory=dict)
    details: dict[str, str] = field(default_factory=dict)

    def record(self, name: str, passed: bool, detail: str) -> None:
        """Store one check's outcome."""
        self.checks[name] = passed
        self.details[name] = detail

    @property
    def all_passed(self) -> bool:
        """True when every check passed."""
        return all(self.checks.values())

    def failures(self) -> list[str]:
        """Names of failed checks."""
        return [name for name, passed in self.checks.items() if not passed]


def validate_expansion(result: ExpansionResult) -> ValidationReport:
    """Run the full audit over a pipeline result."""
    report = ValidationReport()
    config = result.selection
    network = result.network
    candidates = result.candidates

    # Rule 1 — every selected cluster's diameter is within the boundary.
    location_points = {
        record.location_id: record.point()
        for record in result.cleaned.locations()
    }
    selected_ids = set(result.selection.selected_cluster_ids)
    worst_diameter = 0.0
    for cluster in candidates.clustering.clusters:
        if cluster.cluster_id in selected_ids:
            worst_diameter = max(
                worst_diameter, cluster_diameter_m(cluster, location_points)
            )
    boundary = 100.0
    report.record(
        "rule1_cluster_boundary",
        worst_diameter <= boundary + 1e-6,
        f"worst selected-cluster diameter {worst_diameter:.1f} m (limit {boundary:.0f} m)",
    )

    # Rule 4 — every new station is at least 250 m from every other station.
    new_stations = [
        network.stations[station_id] for station_id in network.selected_station_ids
    ]
    all_stations = list(network.stations.values())
    min_spacing = float("inf")
    for new in new_stations:
        for other in all_stations:
            if other.station_id == new.station_id:
                continue
            min_spacing = min(
                min_spacing, haversine_m(new.point, other.point)
            )
    secondary = 250.0
    report.record(
        "rule4_secondary_distance",
        (not new_stations) or min_spacing >= secondary - 1e-6,
        f"closest new-station spacing {min_spacing:.1f} m (limit {secondary:.0f} m)",
    )

    # Rule 3 — every selected candidate met the degree threshold.
    threshold = config.degree_threshold
    below = [
        entry
        for entry in config.scores
        if entry.score > 0 and entry.degree < threshold
    ]
    report.record(
        "rule3_degree_threshold",
        not below,
        f"{len(below)} selected candidates below threshold {threshold}",
    )

    # Community health: positive modularity at every granularity.
    report.record(
        "modularity_positive",
        result.basic.modularity > 0
        and result.day.modularity > 0
        and result.hour.modularity > 0,
        "Q = {:.3f} / {:.3f} / {:.3f} (basic/day/hour)".format(
            result.basic.modularity,
            result.day.modularity,
            result.hour.modularity,
        ),
    )

    # New stations should join the community structure, not dominate a
    # single isolated community.
    partition = result.basic.partition
    new_labels = {
        partition[station_id]
        for station_id in network.selected_station_ids
        if station_id in partition
    }
    mixed = sum(
        1
        for label, members in partition.communities().items()
        if label in new_labels
        and any(
            not network.stations[station_id].is_new
            for station_id in members
            if station_id in network.stations
        )
    )
    report.record(
        "new_stations_integrate",
        (not new_labels) or mixed >= max(1, len(new_labels) // 2),
        f"{mixed}/{len(new_labels)} communities containing new stations also hold old ones",
    )

    # Behavioural similarity: new-station degrees within the fixed range.
    g_basic = network.g_basic()
    fixed_degrees = [
        g_basic.degree(station_id) for station_id in network.fixed_station_ids
    ]
    if fixed_degrees and new_stations:
        low = 0
        high = max(fixed_degrees) * 2
        outliers = [
            station.station_id
            for station in new_stations
            if not low <= g_basic.degree(station.station_id) <= high
        ]
        report.record(
            "new_station_degrees_in_range",
            not outliers,
            f"{len(outliers)} new stations outside degree range [{low}, {high}]",
        )
    return report
