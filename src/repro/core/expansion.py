"""The end-to-end network-expansion pipeline (the paper's methodology).

:class:`NetworkExpansionOptimiser` chains the three steps of Section IV
— graph construction, station ranking and selection, and community
detection at three temporal granularities — over a raw dataset.  Each
stage can also be invoked on its own for the benches.

>>> from repro.synth import generate_paper_dataset
>>> from repro.core import NetworkExpansionOptimiser
>>> result = NetworkExpansionOptimiser(generate_paper_dataset()).run()
>>> result.selection.n_selected > 0
True
"""

from __future__ import annotations

from dataclasses import dataclass

from ..community import (
    LouvainResult,
    TemporalCommunityResult,
    detect_temporal_communities,
    louvain,
)
from ..config import PAPER_CONFIG, PipelineConfig
from ..data import CleaningReport, MobyDataset, clean_dataset
from ..exceptions import PipelineError
from .candidates import CandidateNetwork, build_candidate_network
from .graphs import SelectedNetwork, build_selected_network
from .selection import SelectionResult, select_stations

N_DAY_SLICES = 7
N_HOUR_SLICES = 24


@dataclass
class ExpansionResult:
    """Everything the pipeline produced, stage by stage."""

    cleaned: MobyDataset
    cleaning_report: CleaningReport
    candidates: CandidateNetwork
    selection: SelectionResult
    network: SelectedNetwork
    basic: LouvainResult
    day: TemporalCommunityResult
    hour: TemporalCommunityResult

    @property
    def n_new_stations(self) -> int:
        """How many stations the expansion added."""
        return self.selection.n_selected

    @property
    def n_total_stations(self) -> int:
        """Stations after expansion."""
        return len(self.network.stations)


class NetworkExpansionOptimiser:
    """Stages and runs the full expansion pipeline over a raw dataset."""

    def __init__(
        self, raw: MobyDataset, config: PipelineConfig = PAPER_CONFIG
    ) -> None:
        self.raw = raw
        self.config = config
        self._cleaned: MobyDataset | None = None
        self._report: CleaningReport | None = None
        self._candidates: CandidateNetwork | None = None
        self._selection: SelectionResult | None = None
        self._network: SelectedNetwork | None = None

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------

    def clean(self) -> tuple[MobyDataset, CleaningReport]:
        """Stage 0: apply the six cleaning rules."""
        if self._cleaned is None:
            self._cleaned, self._report = clean_dataset(self.raw)
        assert self._report is not None
        return self._cleaned, self._report

    def condense(self) -> CandidateNetwork:
        """Stage 1: HAC condensation into the candidate graph."""
        if self._candidates is None:
            cleaned, _ = self.clean()
            self._candidates = build_candidate_network(
                cleaned, self.config.clustering
            )
        return self._candidates

    def select(self) -> SelectionResult:
        """Stage 2: Algorithm 1 over the candidate graph."""
        if self._selection is None:
            self._selection = select_stations(
                self.condense(), self.config.selection
            )
        return self._selection

    def build_network(self) -> SelectedNetwork:
        """Stage 2b: reassign locations and trips to the expanded network."""
        if self._network is None:
            cleaned, _ = self.clean()
            self._network = build_selected_network(
                cleaned, self.condense(), self.select()
            )
        return self._network

    def detect_basic(self) -> LouvainResult:
        """Stage 3a: Louvain on G_Basic."""
        return louvain(self.build_network().g_basic(), self.config.community)

    def detect_day(self) -> TemporalCommunityResult:
        """Stage 3b: multislice Louvain on G_Day (7 slices)."""
        network = self.build_network()
        return detect_temporal_communities(
            network.day_sliced_trips(), N_DAY_SLICES, self.config.temporal
        )

    def detect_hour(self) -> TemporalCommunityResult:
        """Stage 3c: multislice Louvain on G_Hour (24 slices)."""
        network = self.build_network()
        return detect_temporal_communities(
            network.hour_sliced_trips(), N_HOUR_SLICES, self.config.temporal
        )

    # ------------------------------------------------------------------
    # One-shot
    # ------------------------------------------------------------------

    def run(self) -> ExpansionResult:
        """Run every stage and bundle the results."""
        cleaned, report = self.clean()
        if cleaned.n_rentals == 0:
            raise PipelineError("cleaning removed every rental — nothing to do")
        return ExpansionResult(
            cleaned=cleaned,
            cleaning_report=report,
            candidates=self.condense(),
            selection=self.select(),
            network=self.build_network(),
            basic=self.detect_basic(),
            day=self.detect_day(),
            hour=self.detect_hour(),
        )
