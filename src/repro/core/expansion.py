"""The end-to-end network-expansion pipeline (the paper's methodology).

:class:`NetworkExpansionOptimiser` is a thin facade over the staged
:class:`~repro.pipeline.PipelineRunner`: it chains the three steps of
Section IV — graph construction, station ranking and selection, and
community detection at three temporal granularities — over a raw
dataset.  Each stage can still be invoked on its own for the benches,
and the runner underneath adds content-addressed caching (pass
``cache_dir``) and parallel fan-out (pass ``jobs``); for a given
pipeline version, cached, parallel, facade and direct-runner execution
all produce identical results, pinned by the golden suite in
``tests/test_golden_paper.py``.

>>> from repro.synth import generate_paper_dataset
>>> from repro.core import NetworkExpansionOptimiser
>>> result = NetworkExpansionOptimiser(generate_paper_dataset()).run()
>>> result.selection.n_selected > 0
True
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Mapping, Sequence

from ..community import LouvainResult, TemporalCommunityResult
from ..config import PAPER_CONFIG, PipelineConfig
from ..data import CleaningReport, MobyDataset
from ..pipeline.cache import StageCache
from ..pipeline.runner import (
    N_DAY_SLICES,
    N_HOUR_SLICES,
    PipelineRunner,
    config_grid,
    run_sweep,
)
from .candidates import CandidateNetwork
from .graphs import SelectedNetwork
from .results import ExpansionResult
from .selection import SelectionResult

__all__ = [
    "ExpansionResult",
    "N_DAY_SLICES",
    "N_HOUR_SLICES",
    "NetworkExpansionOptimiser",
]


class NetworkExpansionOptimiser:
    """Stages and runs the full expansion pipeline over a raw dataset.

    A facade over :class:`~repro.pipeline.PipelineRunner`; the public
    stage methods and the :class:`ExpansionResult` shape are unchanged
    from the pre-runner implementation.
    """

    def __init__(
        self,
        raw: MobyDataset,
        config: PipelineConfig = PAPER_CONFIG,
        *,
        cache: StageCache | None = None,
        cache_dir: str | Path | None = None,
        jobs: int = 1,
        executor: str = "thread",
    ) -> None:
        self.raw = raw
        self.config = config
        self.runner = PipelineRunner(
            raw,
            config,
            cache=cache,
            cache_dir=cache_dir,
            jobs=jobs,
            executor=executor,
        )

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------

    def clean(self) -> tuple[MobyDataset, CleaningReport]:
        """Stage 0: apply the six cleaning rules."""
        cleaned, report, _aux = self.runner.stage("clean")
        return cleaned, report

    def condense(self) -> CandidateNetwork:
        """Stage 1: HAC condensation into the candidate graph."""
        return self.runner.stage("candidates")

    def select(self) -> SelectionResult:
        """Stage 2: Algorithm 1 over the candidate graph."""
        return self.runner.stage("selection")

    def build_network(self) -> SelectedNetwork:
        """Stage 2b: reassign locations and trips to the expanded network."""
        return self.runner.stage("network")

    def detect_basic(self) -> LouvainResult:
        """Stage 3a: Louvain on G_Basic."""
        return self.runner.stage("basic")

    def detect_day(self) -> TemporalCommunityResult:
        """Stage 3b: multislice Louvain on G_Day (7 slices)."""
        return self.runner.stage("day")

    def detect_hour(self) -> TemporalCommunityResult:
        """Stage 3c: multislice Louvain on G_Hour (24 slices)."""
        return self.runner.stage("hour")

    # ------------------------------------------------------------------
    # One-shot
    # ------------------------------------------------------------------

    def run(self) -> ExpansionResult:
        """Run every stage and bundle the results."""
        return self.runner.run()

    def run_sweep(
        self,
        configs: Sequence[PipelineConfig] | Mapping[str, Sequence[Any]],
        *,
        jobs: int = 1,
        executor: str = "thread",
    ) -> list[ExpansionResult]:
        """Run a parameter grid over this dataset, sharing the cache.

        ``configs`` is either explicit :class:`PipelineConfig` objects
        or a mapping of dotted-path axes (``{"temporal.coupling":
        [0.1, 0.2]}``) expanded as a cross product around this
        optimiser's config.  Stages a config does not change are
        computed once for the whole sweep.
        """
        if isinstance(configs, Mapping):
            configs = [config for _, config in config_grid(self.config, configs)]
        return run_sweep(
            self.raw,
            configs,
            cache=self.runner.cache,
            jobs=jobs,
            executor=executor,
        )
