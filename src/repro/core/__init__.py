"""The paper's core contribution: the network-expansion pipeline."""

from .candidates import (
    CandidateGraphStats,
    CandidateNetwork,
    GroupKey,
    build_candidate_network,
)
from .expansion import (
    ExpansionResult,
    N_DAY_SLICES,
    N_HOUR_SLICES,
    NetworkExpansionOptimiser,
)
from .graphs import (
    KIND_FIXED,
    KIND_SELECTED,
    SelectedNetwork,
    SelectedNetworkStats,
    Station,
    TripOD,
    build_selected_network,
)
from .profiles import (
    CommunityRow,
    DAY_NAMES,
    commute_peak_share,
    community_table,
    daily_profile,
    hourly_profile,
    midday_share,
    self_containment,
    weekend_share,
)
from .selection import (
    CandidateScore,
    REJECT_BELOW_DEGREE,
    REJECT_NEAR_CANDIDATE,
    REJECT_NEAR_STATION,
    SelectionResult,
    check_pairwise_distance,
    select_stations,
)
from .validation import ValidationReport, validate_expansion

__all__ = [
    "CandidateGraphStats",
    "CandidateNetwork",
    "CandidateScore",
    "CommunityRow",
    "DAY_NAMES",
    "ExpansionResult",
    "GroupKey",
    "KIND_FIXED",
    "KIND_SELECTED",
    "N_DAY_SLICES",
    "N_HOUR_SLICES",
    "NetworkExpansionOptimiser",
    "REJECT_BELOW_DEGREE",
    "REJECT_NEAR_CANDIDATE",
    "REJECT_NEAR_STATION",
    "SelectedNetwork",
    "SelectedNetworkStats",
    "SelectionResult",
    "Station",
    "TripOD",
    "ValidationReport",
    "build_candidate_network",
    "build_selected_network",
    "check_pairwise_distance",
    "community_table",
    "commute_peak_share",
    "daily_profile",
    "hourly_profile",
    "midday_share",
    "select_stations",
    "self_containment",
    "validate_expansion",
    "weekend_share",
]
