"""Station ranking and selection — the paper's Algorithm 1.

The algorithm scores each candidate cluster by its degree in the
candidate graph, zeroes the score of any candidate that fails Rule 3
(degree below the minimum fixed-station degree) or sits within the
Rule-4 secondary distance (250 m) of a pre-existing station, then
repeatedly knocks out the lower-degree member of any surviving pair of
candidates closer than 250 m to each other.  The survivors, in
descending score order, become the new stations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..config import SelectionConfig
from ..geo import GeoPoint, GridIndex, haversine_m
from ..serialize import check_envelope
from .candidates import CandidateNetwork, GroupKey

#: Rejection reasons recorded per candidate.
REJECT_BELOW_DEGREE = "below_degree_threshold"
REJECT_NEAR_STATION = "near_pre_existing_station"
REJECT_NEAR_CANDIDATE = "near_higher_degree_candidate"


@dataclass(frozen=True)
class CandidateScore:
    """One candidate's outcome: final score and rejection reason (if any)."""

    cluster_id: int
    degree: int
    score: int
    rejection: str | None


@dataclass
class SelectionResult:
    """Full output of Algorithm 1."""

    degree_threshold: int
    scores: list[CandidateScore] = field(default_factory=list)

    @property
    def selected_cluster_ids(self) -> list[int]:
        """Cluster ids of the selected candidates, best score first."""
        winners = [entry for entry in self.scores if entry.score > 0]
        winners.sort(key=lambda entry: (-entry.score, entry.cluster_id))
        return [entry.cluster_id for entry in winners]

    @property
    def n_selected(self) -> int:
        """How many candidates became stations."""
        return sum(1 for entry in self.scores if entry.score > 0)

    def rejection_counts(self) -> dict[str, int]:
        """Rejections by reason."""
        counts: dict[str, int] = {}
        for entry in self.scores:
            if entry.rejection is not None:
                counts[entry.rejection] = counts.get(entry.rejection, 0) + 1
        return counts

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe envelope: threshold plus every candidate's outcome."""
        return {
            "type": "SelectionResult",
            "degree_threshold": self.degree_threshold,
            "scores": [
                {
                    "cluster_id": entry.cluster_id,
                    "degree": entry.degree,
                    "score": entry.score,
                    "rejection": entry.rejection,
                }
                for entry in self.scores
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SelectionResult":
        """Exact inverse of :meth:`to_dict`."""
        check_envelope(payload, "SelectionResult")
        return cls(
            degree_threshold=payload["degree_threshold"],
            scores=[
                CandidateScore(
                    cluster_id=entry["cluster_id"],
                    degree=entry["degree"],
                    score=entry["score"],
                    rejection=entry["rejection"],
                )
                for entry in payload["scores"]
            ],
        )


def select_stations(
    network: CandidateNetwork, config: SelectionConfig | None = None
) -> SelectionResult:
    """Run Algorithm 1 over a candidate network."""
    cfg = config or SelectionConfig()
    undirected = network.undirected()

    def degree_of(group: GroupKey) -> int:
        return undirected.degree(group) if group in undirected else 0

    # Line 1: the Rule-3 threshold from the fixed stations.
    if cfg.degree_threshold is not None:
        threshold = cfg.degree_threshold
    else:
        station_degrees = [
            degree_of(("station", station_id))
            for station_id in network.station_points
        ]
        threshold = min(station_degrees) if station_degrees else 0

    # Lines 2-9: initial scoring against Rules 3 and 4.
    station_index: GridIndex[int] = GridIndex(
        cell_m=max(100.0, cfg.secondary_distance_m)
    )
    for station_id, point in network.station_points.items():
        station_index.insert(station_id, point)

    result = SelectionResult(degree_threshold=threshold)
    alive: dict[int, tuple[int, GeoPoint]] = {}
    for cluster_id in sorted(network.cluster_centroids):
        degree = degree_of(("cluster", cluster_id))
        centroid = network.cluster_centroids[cluster_id]
        if degree < threshold:
            result.scores.append(
                CandidateScore(cluster_id, degree, 0, REJECT_BELOW_DEGREE)
            )
            continue
        if station_index.within(centroid, cfg.secondary_distance_m):
            result.scores.append(
                CandidateScore(cluster_id, degree, 0, REJECT_NEAR_STATION)
            )
            continue
        alive[cluster_id] = (degree, centroid)

    # Lines 10-16: knock out near pairs, lower degree first, until the
    # surviving set is pairwise farther than the secondary distance.
    candidate_index: GridIndex[int] = GridIndex(
        cell_m=max(100.0, cfg.secondary_distance_m)
    )
    for cluster_id, (_, centroid) in alive.items():
        candidate_index.insert(cluster_id, centroid)

    changed = True
    while changed:
        changed = False
        # Visit candidates from the lowest degree upwards so the loser
        # of each conflict is decided deterministically.
        for cluster_id in sorted(alive, key=lambda cid: (alive[cid][0], cid)):
            if cluster_id not in alive:
                continue
            degree, centroid = alive[cluster_id]
            for other_id, _ in candidate_index.within(
                centroid, cfg.secondary_distance_m
            ):
                if other_id == cluster_id or other_id not in alive:
                    continue
                other_degree, _ = alive[other_id]
                loser = (
                    cluster_id
                    if (degree, -cluster_id) < (other_degree, -other_id)
                    else other_id
                )
                result.scores.append(
                    CandidateScore(
                        loser, alive[loser][0], 0, REJECT_NEAR_CANDIDATE
                    )
                )
                candidate_index.remove(loser)
                del alive[loser]
                changed = True
                if loser == cluster_id:
                    break

    # Lines 17-18: survivors keep their degree as score.
    for cluster_id, (degree, _) in alive.items():
        result.scores.append(CandidateScore(cluster_id, degree, degree, None))
    result.scores.sort(key=lambda entry: entry.cluster_id)
    return result


def check_pairwise_distance(
    points: list[GeoPoint], minimum_m: float
) -> list[tuple[int, int, float]]:
    """All index pairs closer than ``minimum_m`` (audit helper)."""
    violations: list[tuple[int, int, float]] = []
    for i in range(len(points)):
        for j in range(i + 1, len(points)):
            distance = haversine_m(points[i], points[j])
            if distance < minimum_m:
                violations.append((i, j, distance))
    return violations
