"""The bundled output of a full expansion pipeline run.

Lives in its own module so both the staged runner
(:mod:`repro.pipeline`) and the legacy facade
(:mod:`repro.core.expansion`) can produce the identical shape without
importing each other.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..community import LouvainResult, TemporalCommunityResult
from ..data import CleaningReport, MobyDataset
from .candidates import CandidateNetwork
from .graphs import SelectedNetwork
from .selection import SelectionResult


@dataclass
class ExpansionResult:
    """Everything the pipeline produced, stage by stage."""

    cleaned: MobyDataset
    cleaning_report: CleaningReport
    candidates: CandidateNetwork
    selection: SelectionResult
    network: SelectedNetwork
    basic: LouvainResult
    day: TemporalCommunityResult
    hour: TemporalCommunityResult

    @property
    def n_new_stations(self) -> int:
        """How many stations the expansion added."""
        return self.selection.n_selected

    @property
    def n_total_stations(self) -> int:
        """Stations after expansion."""
        return len(self.network.stations)
