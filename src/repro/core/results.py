"""The bundled output of a full expansion pipeline run.

Lives in its own module so both the staged runner
(:mod:`repro.pipeline`) and the legacy facade
(:mod:`repro.core.expansion`) can produce the identical shape without
importing each other.

:meth:`ExpansionResult.to_dict` is the run envelope served by
:mod:`repro.service`: everything the reporting and analysis layers
consume — the cleaning report, Algorithm 1's full scoring, the
expanded network with its OD trips, and the three community
structures — serialised JSON-safe, plus the :meth:`headline` numbers
pinned by the golden suite.  The two bulky intermediates that nothing
downstream of the pipeline needs in full (the cleaned dataset and the
candidate graph) are carried as summary views; a round-tripped result
therefore renders every paper table and figure and feeds the
rebalancing planner, but cannot be pushed back through the pipeline
or re-validated against the raw per-location data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..community import LouvainResult, TemporalCommunityResult
from ..data import CleaningReport, MobyDataset
from ..serialize import check_envelope
from .candidates import CandidateGraphStats, CandidateNetwork
from .graphs import SelectedNetwork
from .selection import SelectionResult

#: Modularity digits kept in :meth:`ExpansionResult.headline`; matches
#: the golden suite's pin (guards against float noise, nothing more).
HEADLINE_MODULARITY_DECIMALS = 9


@dataclass(frozen=True)
class DatasetSummaryView:
    """Stand-in for a cleaned :class:`MobyDataset` after a round trip.

    Carries only the Table-I counts; the per-record data stays behind
    in the process that ran the pipeline.
    """

    n_stations: int
    n_rentals: int
    n_locations: int


@dataclass(frozen=True)
class CandidateSummaryView:
    """Stand-in for a :class:`CandidateNetwork` after a round trip.

    Exposes the pieces the reporting layer reads — :meth:`stats` and
    the node counts — without the clustering or the flow graph.
    """

    n_stations: int
    n_candidates: int
    n_trips: int
    _stats: CandidateGraphStats

    def stats(self) -> CandidateGraphStats:
        """The paper's Table II counts."""
        return self._stats


@dataclass
class ExpansionResult:
    """Everything the pipeline produced, stage by stage."""

    cleaned: MobyDataset
    cleaning_report: CleaningReport
    candidates: CandidateNetwork
    selection: SelectionResult
    network: SelectedNetwork
    basic: LouvainResult
    day: TemporalCommunityResult
    hour: TemporalCommunityResult
    #: Optional wall-clock instrumentation (a ``PerfReport`` envelope)
    #: recorded when the producing runner carried a ``StageTimer``.
    #: Wall times vary run to run, so the block is *excluded* from the
    #: canonical envelope unless present — stored results and the
    #: golden byte-identity guarantees are unaffected by default.
    timings: dict[str, Any] | None = field(default=None, compare=False)

    @property
    def n_new_stations(self) -> int:
        """How many stations the expansion added."""
        return self.selection.n_selected

    @property
    def n_total_stations(self) -> int:
        """Stations after expansion."""
        return len(self.network.stations)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def headline(self) -> dict[str, dict[str, Any]]:
        """The headline numbers of Tables I-VI, golden-suite shaped.

        Keys mirror ``tests/goldens/paper_seed7.json`` exactly, so an
        envelope's headline block can be compared against the pinned
        fixture byte for byte.
        """
        candidate_stats = self.candidates.stats()
        network_stats = self.network.stats()
        report = self.cleaning_report
        return {
            "table1_dataset": {
                "original_stations": report.before.n_stations,
                "original_rentals": report.before.n_rentals,
                "original_locations": report.before.n_locations,
                "cleaned_stations": report.after.n_stations,
                "cleaned_rentals": report.after.n_rentals,
                "cleaned_locations": report.after.n_locations,
            },
            "table2_candidates": {
                "nodes": candidate_stats.n_nodes,
                "undirected_edges": candidate_stats.n_undirected_edges,
                "undirected_edges_no_loops": candidate_stats.n_undirected_edges_no_loops,
                "directed_edges": candidate_stats.n_directed_edges,
                "directed_edges_no_loops": candidate_stats.n_directed_edges_no_loops,
                "trips": candidate_stats.n_trips,
            },
            "table3_selected": {
                "n_fixed": network_stats.n_fixed,
                "n_selected": network_stats.n_selected,
                "n_trips": network_stats.n_trips,
                "n_directed_edges": network_stats.n_directed_edges,
            },
            "table4_gbasic": {
                "n_communities": self.basic.n_communities,
                "modularity": round(
                    self.basic.modularity, HEADLINE_MODULARITY_DECIMALS
                ),
            },
            "table5_gday": {
                "n_communities": self.day.n_communities,
                "n_slices": self.day.n_slices,
                "modularity": round(
                    self.day.modularity, HEADLINE_MODULARITY_DECIMALS
                ),
            },
            "table6_ghour": {
                "n_communities": self.hour.n_communities,
                "n_slices": self.hour.n_slices,
                "modularity": round(
                    self.hour.modularity, HEADLINE_MODULARITY_DECIMALS
                ),
            },
        }

    def to_dict(self) -> dict[str, Any]:
        """The JSON-safe run envelope (see the module docstring)."""
        envelope = {
            "type": "ExpansionResult",
            "headline": self.headline(),
            "cleaned": {
                "n_stations": self.cleaned.n_stations,
                "n_rentals": self.cleaned.n_rentals,
                "n_locations": self.cleaned.n_locations,
            },
            "cleaning_report": self.cleaning_report.to_dict(),
            "candidates": {
                "n_stations": self.candidates.n_stations,
                "n_candidates": self.candidates.n_candidates,
                "n_trips": self.candidates.n_trips,
                "stats": self.candidates.stats().to_dict(),
            },
            "selection": self.selection.to_dict(),
            "network": self.network.to_dict(),
            "basic": self.basic.to_dict(),
            "day": self.day.to_dict(),
            "hour": self.hour.to_dict(),
        }
        if self.timings is not None:
            envelope["timings"] = self.timings
        return envelope

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExpansionResult":
        """Rebuild a served result from :meth:`to_dict` output.

        ``cleaned`` and ``candidates`` come back as summary views (see
        :class:`DatasetSummaryView` / :class:`CandidateSummaryView`);
        everything else is restored in full, so every ``experiment_*``
        table/figure and the rebalancing planner run unchanged and
        :meth:`headline` reproduces the original numbers exactly.
        """
        check_envelope(payload, "ExpansionResult")
        cleaned = payload["cleaned"]
        candidates = payload["candidates"]
        return cls(
            cleaned=DatasetSummaryView(
                n_stations=cleaned["n_stations"],
                n_rentals=cleaned["n_rentals"],
                n_locations=cleaned["n_locations"],
            ),
            cleaning_report=CleaningReport.from_dict(payload["cleaning_report"]),
            candidates=CandidateSummaryView(
                n_stations=candidates["n_stations"],
                n_candidates=candidates["n_candidates"],
                n_trips=candidates["n_trips"],
                _stats=CandidateGraphStats.from_dict(candidates["stats"]),
            ),
            selection=SelectionResult.from_dict(payload["selection"]),
            network=SelectedNetwork.from_dict(payload["network"]),
            basic=LouvainResult.from_dict(payload["basic"]),
            day=TemporalCommunityResult.from_dict(payload["day"]),
            hour=TemporalCommunityResult.from_dict(payload["hour"]),
            timings=payload.get("timings"),
        )
