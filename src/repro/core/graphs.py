"""The selected network and the three temporal graph structures.

After Algorithm 1, the network's node set is fixed: the pre-existing
stations plus the selected candidates.  Every location is reassigned to
its nearest station (paper Section IV-B step 3), trips become
station-to-station origin-destination records, and the three structures
of Section IV-C fall out:

* **G_Basic** — stations as nodes, trip counts as undirected weights;
* **G_Day** — each trip keyed by day of week (7 slices);
* **G_Hour** — each trip keyed by start hour (24 slices).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..cluster import NearestStationAssigner
from ..data import MobyDataset
from ..exceptions import CommunityError
from ..geo import GeoPoint
from ..graphdb import DirectedGraph, WeightedGraph
from ..serialize import check_envelope
from .candidates import CandidateNetwork
from .selection import SelectionResult

KIND_FIXED = "fixed"
KIND_SELECTED = "selected"


@dataclass(frozen=True)
class Station:
    """One station of the expanded network."""

    station_id: int
    point: GeoPoint
    kind: str
    name: str
    source_cluster_id: int | None = None

    @property
    def is_new(self) -> bool:
        """True for stations created by the expansion."""
        return self.kind == KIND_SELECTED


@dataclass(frozen=True)
class TripOD:
    """One trip after station reassignment."""

    origin: int
    destination: int
    day_of_week: int
    hour_of_day: int

    @property
    def is_loop(self) -> bool:
        """True when the trip starts and ends at the same station."""
        return self.origin == self.destination


@dataclass
class SelectedNetwork:
    """The expanded station network plus its reassigned trips."""

    stations: dict[int, Station]
    location_to_station: dict[int, int]
    trips: list[TripOD]

    @property
    def fixed_station_ids(self) -> list[int]:
        """Ids of pre-existing stations."""
        return sorted(
            station_id
            for station_id, station in self.stations.items()
            if station.kind == KIND_FIXED
        )

    @property
    def selected_station_ids(self) -> list[int]:
        """Ids of newly selected stations."""
        return sorted(
            station_id
            for station_id, station in self.stations.items()
            if station.kind == KIND_SELECTED
        )

    # ------------------------------------------------------------------
    # Graph structures
    # ------------------------------------------------------------------

    def directed_flow(self) -> DirectedGraph:
        """Directed trip-count graph over stations."""
        flow = DirectedGraph()
        for station_id in self.stations:
            flow.add_node(station_id)
        for trip in self.trips:
            flow.add_edge(trip.origin, trip.destination, 1.0)
        return flow

    def g_basic(self) -> WeightedGraph:
        """The paper's G_Basic: undirected, weighted by trip count."""
        graph = WeightedGraph()
        for station_id in self.stations:
            graph.add_node(station_id)
        for trip in self.trips:
            graph.add_edge(trip.origin, trip.destination, 1.0)
        return graph

    def day_sliced_trips(self) -> list[tuple[int, int, int]]:
        """(origin, destination, day-of-week) triples for G_Day."""
        return [
            (trip.origin, trip.destination, trip.day_of_week)
            for trip in self.trips
        ]

    def hour_sliced_trips(self) -> list[tuple[int, int, int]]:
        """(origin, destination, hour-of-day) triples for G_Hour."""
        return [
            (trip.origin, trip.destination, trip.hour_of_day)
            for trip in self.trips
        ]

    def day_slice_buckets(self) -> list[list[tuple[int, int]]]:
        """G_Day's 7 per-slice OD buckets, built in one pass over trips.

        Equivalent to bucketing :meth:`day_sliced_trips` but without
        materialising the intermediate triple list (trip order within
        each slice is preserved, so the resulting multislice graph is
        identical).
        """
        buckets: list[list[tuple[int, int]]] = [[] for _ in range(7)]
        for trip in self.trips:
            day = trip.day_of_week
            if not 0 <= day < 7:
                raise CommunityError(f"slice index {day} outside [0, 7)")
            buckets[day].append((trip.origin, trip.destination))
        return buckets

    def hour_slice_buckets(self) -> list[list[tuple[int, int]]]:
        """G_Hour's 24 per-slice OD buckets, one pass over trips."""
        buckets: list[list[tuple[int, int]]] = [[] for _ in range(24)]
        for trip in self.trips:
            hour = trip.hour_of_day
            if not 0 <= hour < 24:
                raise CommunityError(f"slice index {hour} outside [0, 24)")
            buckets[hour].append((trip.origin, trip.destination))
        return buckets

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe envelope carrying the complete network.

        Stations, the location assignment and every OD trip are all
        included, so :meth:`from_dict` rebuilds a fully functional
        network — graph views, Table III and the rebalancing planner
        work identically on the round-tripped object.
        """
        return {
            "type": "SelectedNetwork",
            "stations": [
                {
                    "station_id": station.station_id,
                    "lat": station.point.lat,
                    "lon": station.point.lon,
                    "kind": station.kind,
                    "name": station.name,
                    "source_cluster_id": station.source_cluster_id,
                }
                for _, station in sorted(self.stations.items())
            ],
            "location_to_station": sorted(
                [location_id, station_id]
                for location_id, station_id in self.location_to_station.items()
            ),
            "trips": [
                [trip.origin, trip.destination, trip.day_of_week, trip.hour_of_day]
                for trip in self.trips
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SelectedNetwork":
        """Exact inverse of :meth:`to_dict`."""
        check_envelope(payload, "SelectedNetwork")
        return cls(
            stations={
                entry["station_id"]: Station(
                    station_id=entry["station_id"],
                    point=GeoPoint(entry["lat"], entry["lon"]),
                    kind=entry["kind"],
                    name=entry["name"],
                    source_cluster_id=entry["source_cluster_id"],
                )
                for entry in payload["stations"]
            },
            location_to_station={
                location_id: station_id
                for location_id, station_id in payload["location_to_station"]
            },
            trips=[
                TripOD(
                    origin=origin,
                    destination=destination,
                    day_of_week=day,
                    hour_of_day=hour,
                )
                for origin, destination, day, hour in payload["trips"]
            ],
        )

    # ------------------------------------------------------------------
    # Table III
    # ------------------------------------------------------------------

    def stats(self) -> "SelectedNetworkStats":
        """The paper's Table III for this network."""
        fixed = set(self.fixed_station_ids)
        trips_from_fixed = sum(1 for trip in self.trips if trip.origin in fixed)
        trips_to_fixed = sum(1 for trip in self.trips if trip.destination in fixed)
        flow = self.directed_flow()
        edges_from_fixed = 0
        edges_to_fixed = 0
        total_edges = 0
        for u, v, _ in flow.edges():
            total_edges += 1
            if u in fixed:
                edges_from_fixed += 1
            if v in fixed:
                edges_to_fixed += 1
        n_trips = len(self.trips)
        return SelectedNetworkStats(
            n_fixed=len(fixed),
            n_selected=len(self.selected_station_ids),
            trips_from_fixed=trips_from_fixed,
            trips_to_fixed=trips_to_fixed,
            trips_from_selected=n_trips - trips_from_fixed,
            trips_to_selected=n_trips - trips_to_fixed,
            edges_from_fixed=edges_from_fixed,
            edges_to_fixed=edges_to_fixed,
            edges_from_selected=total_edges - edges_from_fixed,
            edges_to_selected=total_edges - edges_to_fixed,
            n_trips=n_trips,
            n_directed_edges=total_edges,
        )


@dataclass(frozen=True)
class SelectedNetworkStats:
    """The counts of the paper's Table III."""

    n_fixed: int
    n_selected: int
    trips_from_fixed: int
    trips_to_fixed: int
    trips_from_selected: int
    trips_to_selected: int
    edges_from_fixed: int
    edges_to_fixed: int
    edges_from_selected: int
    edges_to_selected: int
    n_trips: int
    n_directed_edges: int


def build_station_set(
    cleaned: MobyDataset,
    candidates: CandidateNetwork,
    selection: SelectionResult,
) -> dict[int, Station]:
    """The expanded station roster after Algorithm 1 (cheap).

    New stations take ids continuing after the largest fixed-station
    id.  Deterministic in (candidates, selection) and inexpensive, so
    the incremental runner rebuilds it to *identify* the assignment it
    may reuse — the roster is the identity the nearest-station map is
    keyed on.
    """
    stations: dict[int, Station] = {}
    for station_id, point in candidates.station_points.items():
        name = cleaned.location(station_id).name
        stations[station_id] = Station(
            station_id=station_id,
            point=point,
            kind=KIND_FIXED,
            name=name or f"Station {station_id}",
        )
    next_id = max(stations) + 1 if stations else 0
    for cluster_id in selection.selected_cluster_ids:
        stations[next_id] = Station(
            station_id=next_id,
            point=candidates.cluster_centroids[cluster_id],
            kind=KIND_SELECTED,
            name=f"New station {next_id} (cluster {cluster_id})",
            source_cluster_id=cluster_id,
        )
        next_id += 1
    return stations


def assign_locations_to_stations(
    cleaned: MobyDataset, stations: dict[int, Station]
) -> dict[int, int]:
    """Nearest-station assignment of every cleaned location."""
    assigner = NearestStationAssigner(
        {station_id: station.point for station_id, station in stations.items()}
    )
    return assigner.assign_all(
        {record.location_id: record.point() for record in cleaned.locations()}
    )


def project_trip(row: dict, location_to_station: dict[int, int]) -> TripOD:
    """One raw rental row projected onto its station OD pair."""
    started_at = row["started_at"]
    return TripOD(
        origin=location_to_station[row["rental_location_id"]],
        destination=location_to_station[row["return_location_id"]],
        day_of_week=started_at.weekday(),
        hour_of_day=started_at.hour,
    )


def build_selected_network(
    cleaned: MobyDataset,
    candidates: CandidateNetwork,
    selection: SelectionResult,
) -> SelectedNetwork:
    """Materialise the expanded network after Algorithm 1.

    New stations take ids continuing after the largest fixed-station
    id; every cleaned location is then reassigned to its nearest
    station and the trips are projected onto station pairs.
    """
    stations = build_station_set(cleaned, candidates, selection)
    location_to_station = assign_locations_to_stations(cleaned, stations)
    trips = [
        project_trip(row, location_to_station)
        for row in cleaned.rental_rows()
    ]
    return SelectedNetwork(
        stations=stations,
        location_to_station=location_to_station,
        trips=trips,
    )
