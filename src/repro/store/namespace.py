"""Namespaces: the policy half of :mod:`repro.store`.

A :class:`Namespace` wraps one :class:`~repro.store.backend.Backend`
with everything the stage cache, results store and dataset store each
used to implement privately:

* **canonical key encoding** — logical keys are validated against the
  namespace's pattern (hex digests for content-addressed namespaces,
  dataset names, job ids) and mapped onto backend keys by suffix
  (``<key>.pkl``) or multi-part layout (``<key>/meta.json``).  A key
  that fails validation raises
  :class:`~repro.exceptions.StoreKeyError` *before* touching storage —
  path traversal is impossible by construction;
* **byte/entry quotas with LRU eviction** — after every store the
  least-recently-*accessed* entries are evicted until ``max_bytes`` /
  ``max_entries`` hold again.  The just-written entry is exempt (even
  a degenerate ``max_bytes=0`` keeps the latest value), as is every
  entry of an unbounded namespace — which is exactly how the process
  executor's rendezvous directory opts out of eviction;
* **persisted access metadata** — recency rides on the backend's
  access stamps (file mtimes for directory backends), so eviction
  order survives restarts.  Reads go through the backend's ``peek``
  and recency is stamped separately by policy: never for unbounded
  namespaces (nothing sorts by it), immediately for bounded ones, or
  coalesced per key within ``touch_window_s`` and flushed by
  :meth:`flush_touches` / :meth:`close` / any eviction scan — so a
  hit-heavy loop costs one stamp write per key per window instead of
  one per hit;
* **oversize rejection** — namespaces fronting client uploads set
  ``reject_oversize`` and ``max_entry_bytes`` to refuse an entry that
  could not be stored within quota even by evicting everything else
  (:class:`~repro.exceptions.StoreQuotaError`), instead of churning
  the cache;
* **transient-fault retries** — reads and atomic publishes go through
  a :class:`~repro.resilience.retry.RetryPolicy` (exponential backoff,
  full jitter), so a backend flap costs a bounded delay instead of a
  miss or a failed store.  Only errors the policy classifies as
  transient are retried: :class:`~repro.exceptions.StoreQuotaError`,
  :class:`~repro.exceptions.StoreKeyError` and permanent I/O states
  (``ENOSPC``) re-raise immediately, and the ``retries`` counter in
  :meth:`stats` records every extra attempt;
* **striped key locks** — :meth:`lock` serialises concurrent work on
  one key (stage computation, dataset overwrite-vs-read).  Locks come
  from a fixed stripe table indexed by key hash, so the hot read path
  never takes a global mutex to mint per-key locks and the lock table
  cannot grow without bound.  Two keys sharing a stripe serialise
  against each other — a false positive that costs a wait (or an
  eviction skip), never correctness.

Multi-file entries (a dataset's CSV pair plus metadata) declare their
``parts``; the *last* part is the recency anchor and is written last,
so a crash mid-write leaves a partial entry that reads as absent, and
``accounted_parts`` controls which files count against byte quotas.
"""

from __future__ import annotations

import re
import threading
import time
from contextlib import contextmanager
from typing import Any, BinaryIO, Mapping

from ..exceptions import StoreKeyError, StoreQuotaError
from ..resilience.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from .backend import Backend, EntryStat

#: Content-addressed namespaces: plain lowercase hex digests.
HEX_KEY = re.compile(r"^[0-9a-f]+$")

#: Name-like keys (dataset names, job ids): path-safe, never hidden.
NAME_KEY = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: Number of key-lock stripes per namespace.  Far above the number of
#: keys any workload holds locked at once, so stripe collisions are
#: rare; a power of two keeps the modulo cheap.
LOCK_STRIPES = 64


class Namespace:
    """Policy wrapper over a backend: keys, quotas, eviction, locks."""

    def __init__(
        self,
        backend: Backend,
        *,
        key_pattern: re.Pattern = HEX_KEY,
        key_label: str = "key",
        suffix: str = "",
        parts: tuple[str, ...] | None = None,
        accounted_parts: tuple[str, ...] | None = None,
        max_bytes: int | None = None,
        max_entries: int | None = None,
        max_entry_bytes: int | None = None,
        reject_oversize: bool = False,
        touch_window_s: float = 0.0,
        occupancy_ttl_s: float | None = None,
        retry: RetryPolicy | None = DEFAULT_RETRY_POLICY,
    ) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive")
        if max_entry_bytes is not None and max_entry_bytes < 1:
            raise ValueError("max_entry_bytes must be positive")
        if parts is not None and not parts:
            raise ValueError("parts must name at least one file")
        if parts is not None and suffix:
            raise ValueError("multi-part namespaces cannot also use a suffix")
        if accounted_parts is not None:
            if parts is None:
                raise ValueError("accounted_parts needs parts")
            unknown = set(accounted_parts) - set(parts)
            if unknown:
                raise ValueError(f"accounted_parts not in parts: {unknown}")
        if touch_window_s < 0:
            raise ValueError("touch_window_s must be non-negative")
        if occupancy_ttl_s is not None and occupancy_ttl_s < 0:
            raise ValueError("occupancy_ttl_s must be non-negative")
        self.backend = backend
        self.key_pattern = key_pattern
        self.key_label = key_label
        self.suffix = suffix
        self.parts = parts
        self.accounted_parts = accounted_parts if accounted_parts is not None else parts
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self.max_entry_bytes = max_entry_bytes
        self.reject_oversize = reject_oversize
        self.touch_window_s = touch_window_s
        self.retry = retry
        self.occupancy_ttl_s = (
            occupancy_ttl_s
            if occupancy_ttl_s is not None
            else self.OCCUPANCY_TTL_S
        )
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        #: Stamp writes actually issued to the backend (observability:
        #: the debounce/skip-unbounded policies are measured by this).
        self.touch_writes = 0
        #: Extra backend attempts the retry policy issued after a
        #: transient fault — the namespace's flap meter.
        self.retries = 0
        self._mutex = threading.Lock()
        self._stripe_locks = tuple(
            threading.Lock() for _ in range(LOCK_STRIPES)
        )
        self._evict_mutex = threading.Lock()
        # Debounced access stamps: backend key -> last write (monotonic)
        # and the set of keys with a hit since their last write.
        self._touch_mutex = threading.Lock()
        self._touch_flushed: dict[str, float] = {}
        self._touch_pending: set[str] = set()
        #: (monotonic expiry, {"entries": ..., "bytes": ...}) — see stats().
        self._occupancy_cache: tuple[float, dict[str, int]] | None = None

    # ------------------------------------------------------------------
    # Canonical key encoding
    # ------------------------------------------------------------------

    def check_key(self, key: str) -> str:
        """Validate (and return) a logical key; :class:`StoreKeyError` otherwise."""
        if not isinstance(key, str) or not self.key_pattern.match(key):
            raise StoreKeyError(f"bad {self.key_label} {key!r}")
        return key

    def _encode(self, key: str, part: str | None = None) -> str:
        self.check_key(key)
        if self.parts is not None:
            if part is None or part not in self.parts:
                raise StoreKeyError(
                    f"unknown part {part!r} for {self.key_label} {key!r}; "
                    f"expected one of {self.parts}"
                )
            return f"{key}/{part}"
        return f"{key}{self.suffix}"

    def _decode(self, backend_key: str) -> str | None:
        """Backend key -> logical key, or ``None`` for foreign files."""
        if self.parts is not None:
            head, sep, tail = backend_key.partition("/")
            if not sep or tail not in self.parts:
                return None
            key = head
        else:
            if self.suffix and not backend_key.endswith(self.suffix):
                return None
            key = backend_key[: len(backend_key) - len(self.suffix)] if self.suffix else backend_key
        return key if self.key_pattern.match(key) else None

    @property
    def _anchor(self) -> str | None:
        """The part carrying an entry's recency stamp (written last)."""
        return self.parts[-1] if self.parts is not None else None

    # ------------------------------------------------------------------
    # Access-stamp policy
    # ------------------------------------------------------------------

    @property
    def unbounded(self) -> bool:
        """Whether no quota could ever trigger an eviction here."""
        return self.max_bytes is None and self.max_entries is None

    def _note_access(self, anchor_key: str) -> None:
        """Record a warm hit on ``anchor_key`` per the stamp policy.

        Unbounded namespaces never stamp — nothing sorts by recency
        when nothing can be evicted.  With no debounce window every
        hit writes through (the historical behaviour).  Otherwise the
        first hit per window writes through and later hits within the
        window only mark the key pending, to be flushed by the next
        eviction scan, :meth:`flush_touches` or :meth:`close`.
        """
        if self.unbounded:
            return
        if self.touch_window_s <= 0.0:
            self.backend.touch(anchor_key)
            with self._mutex:
                self.touch_writes += 1
            return
        now = time.monotonic()
        with self._touch_mutex:
            last = self._touch_flushed.get(anchor_key)
            if last is not None and now - last < self.touch_window_s:
                self._touch_pending.add(anchor_key)
                return
            if len(self._touch_flushed) > 8192:  # stale-key backstop
                self._touch_flushed.clear()
            self._touch_flushed[anchor_key] = now
            self._touch_pending.discard(anchor_key)
        self.backend.touch(anchor_key)
        with self._mutex:
            self.touch_writes += 1

    def flush_touches(self) -> int:
        """Write every coalesced access stamp through to the backend.

        Returns the number of stamps written.  Runs before every
        eviction scan (so LRU ordering sees coalesced hits) and on
        :meth:`close` (so restart-surviving recency holds).
        """
        now = time.monotonic()
        with self._touch_mutex:
            pending = list(self._touch_pending)
            self._touch_pending.clear()
            for anchor_key in pending:
                self._touch_flushed[anchor_key] = now
        for anchor_key in pending:
            self.backend.touch(anchor_key)
        if pending:
            with self._mutex:
                self.touch_writes += len(pending)
        return len(pending)

    def close(self) -> None:
        """Flush coalesced access stamps; the namespace stays usable."""
        self.flush_touches()

    def count_front_hit(self) -> None:
        """Count a hit served by a caller-side front (an object LRU).

        Keeps hit/miss observability truthful when an adapter answers
        warm reads without touching backend bytes at all.
        """
        with self._mutex:
            self.hits += 1

    # ------------------------------------------------------------------
    # Transient-fault retries
    # ------------------------------------------------------------------

    def _retrying(self, fn):
        """Run one backend call under the retry policy, counting retries."""
        if self.retry is None:
            return fn()
        return self.retry.call(fn, on_retry=self._count_retry)

    def _count_retry(self, error: BaseException, retry_index: int) -> None:
        with self._mutex:
            self.retries += 1

    # ------------------------------------------------------------------
    # Single-part entries
    # ------------------------------------------------------------------

    def get(self, key: str) -> bytes | None:
        """Stored bytes (recency refreshed), or ``None``; counts hit/miss.

        The read itself is a ``peek`` — lock-free in every backend's
        hot path — and the recency stamp is applied separately by
        :meth:`_note_access`, so unbounded namespaces pay zero stamp
        writes per hit and bounded ones can coalesce them.
        """
        encoded = self._encode(key)
        data = self._retrying(lambda: self.backend.peek(encoded))
        with self._mutex:
            if data is None:
                self.misses += 1
            else:
                self.hits += 1
        if data is not None:
            self._note_access(encoded)
        return data

    def peek(self, key: str) -> bytes | None:
        """Stored bytes without counters or recency, or ``None``.

        The byte-serving seam: adapters that keep their own rendered
        front (the service's envelope byte cache) read refills through
        here and account hits/misses themselves via
        :meth:`count_front_hit` — double-counting a refill as both a
        front miss and a namespace hit would skew the cache ratios the
        healthz block reports.
        """
        encoded = self._encode(key)
        return self._retrying(lambda: self.backend.peek(encoded))

    def entry_stat(self, key: str) -> EntryStat | None:
        """Size and recency stamp of ``key``, or ``None`` when absent.

        Multi-part entries report their anchor's stamp.  For unbounded
        namespaces (which never rewrite stamps on reads) the stamp is
        the publish time — the value HTTP ``Last-Modified`` wants.
        """
        return self.backend.stat(self._encode(key, self._anchor))

    def put(self, key: str, data: bytes) -> None:
        """Store ``data`` under ``key``, then enforce the quotas."""
        encoded = self._encode(key)  # validate before any quota verdict
        self._check_entry_size(key, len(data))
        self._retrying(lambda: self.backend.put(encoded, data))
        with self._mutex:
            self.stores += 1
        self.evict(keep=key)

    def open_read(self, key: str) -> BinaryIO | None:
        """A streaming read handle, or ``None`` when absent."""
        try:
            return self.backend.open_read(self._encode(key))
        except OSError:
            return None

    @contextmanager
    def open_write(self, key: str):
        """Streaming atomic write; quotas enforced after publish."""
        encoded = self._encode(key)
        with self.backend.open_write(encoded) as handle:
            yield handle
        with self._mutex:
            self.stores += 1
        self.evict(keep=key)

    # ------------------------------------------------------------------
    # Multi-part entries
    # ------------------------------------------------------------------

    def put_entry(self, key: str, files: Mapping[str, bytes]) -> None:
        """Store a multi-part entry; parts written in declared order.

        The recency anchor (the last declared part) is written last —
        and on an overwrite the *old* anchor is deleted first — so a
        crash between part writes can never leave a mix of old and new
        parts that reads as a consistent entry: without its anchor an
        entry is invisible to readers, listings and accounting.  (The
        cost is that a crash mid-overwrite loses the old version too;
        for content-addressed stores a re-upload restores it.)
        """
        assert self.parts is not None, "put_entry needs a parts namespace"
        self.check_key(key)
        unknown = set(files) - set(self.parts)
        if unknown:
            raise StoreKeyError(f"unknown parts for {key!r}: {sorted(unknown)}")
        accounted = set(self.accounted_parts or ())
        size = sum(len(data) for part, data in files.items() if part in accounted)
        self._check_entry_size(key, size)
        if self._anchor in files:  # full replacement: invalidate first
            self.backend.delete(self._encode(key, self._anchor))
        for part in self.parts:
            if part in files:
                encoded = self._encode(key, part)
                data = files[part]
                self._retrying(lambda: self.backend.put(encoded, data))
        with self._mutex:
            self.stores += 1
        self.evict(keep=key)

    def get_part(self, key: str, part: str) -> bytes | None:
        """One part's bytes; refreshes the whole entry's recency.

        Recency rides on the anchor alone (eviction sorts by anchor
        stamps), so a hit on any part stamps the anchor — through the
        same skip-unbounded/debounce policy as :meth:`get`.
        """
        encoded = self._encode(key, part)
        data = self._retrying(lambda: self.backend.peek(encoded))
        with self._mutex:
            if data is None:
                self.misses += 1
            else:
                self.hits += 1
        if data is not None:
            self._note_access(self._encode(key, self._anchor))
        return data

    def peek_part(self, key: str, part: str) -> bytes | None:
        """One part's bytes *without* refreshing recency or counters.

        Metadata queries (listings, digests, healthz) read through
        here so they never perturb the LRU eviction order.
        """
        encoded = self._encode(key, part)
        return self._retrying(lambda: self.backend.peek(encoded))

    # ------------------------------------------------------------------
    # Part-level rewrites (in-place entry surgery)
    # ------------------------------------------------------------------
    #
    # An *append* rewrites one part of a live entry without ever
    # materialising the whole entry in memory.  The caller owns the
    # crash-safety protocol — delete the anchor first (the entry reads
    # as absent mid-surgery), rewrite the bulk parts through streaming
    # handles, write the new anchor last, then :meth:`finish_entry` —
    # and must hold :meth:`lock` for the key throughout.

    def delete_part(self, key: str, part: str) -> bool:
        """Drop one part of a multi-part entry; returns whether it existed.

        Deleting the anchor part makes the whole entry read as absent —
        the first step of a crash-safe in-place rewrite.
        """
        return self.backend.delete(self._encode(key, part))

    def put_part(self, key: str, part: str, data: bytes) -> None:
        """Write one part of a multi-part entry (atomic publish).

        No quota check and no store count — the caller completes the
        surgery with :meth:`finish_entry`, which does both.
        """
        encoded = self._encode(key, part)
        self._retrying(lambda: self.backend.put(encoded, data))

    def open_part_read(self, key: str, part: str) -> BinaryIO | None:
        """A streaming read handle on one part, or ``None`` when absent."""
        try:
            return self.backend.open_read(self._encode(key, part))
        except OSError:
            return None

    @contextmanager
    def open_part_write(self, key: str, part: str):
        """Streaming atomic write of one part.

        The handle's bytes publish atomically on exit — a concurrent
        reader sees the old part or the complete new one, never a torn
        mix — so a crash mid-append leaves the old bytes in place (and
        the deleted anchor keeps the entry invisible regardless).
        """
        encoded = self._encode(key, part)
        with self.backend.open_write(encoded) as handle:
            yield handle

    def finish_entry(self, key: str) -> None:
        """Account a completed in-place rewrite: one store, then quotas."""
        with self._mutex:
            self.stores += 1
        self.evict(keep=key)

    def check_entry_size(self, key: str, size: int) -> None:
        """Raise :class:`StoreQuotaError` if ``size`` breaks per-entry caps.

        The pre-flight an append runs *before* touching any part: the
        verdict must land while the old entry is still intact.
        """
        self._check_entry_size(key, size)

    # ------------------------------------------------------------------
    # Shared operations
    # ------------------------------------------------------------------

    def delete(self, key: str) -> bool:
        """Drop ``key`` (every part); returns whether anything existed."""
        if self.parts is not None:
            # Anchor first: a reader that loses the race sees no anchor
            # and treats the leftover parts as absent.
            existed = False
            for part in (self._anchor, *self.parts[:-1]):
                existed = self.backend.delete(self._encode(key, part)) or existed
            return existed
        return self.backend.delete(self._encode(key))

    def touch(self, key: str) -> None:
        """Refresh ``key``'s recency without reading it.

        Explicit touches always write through (the caller asked for a
        durable stamp), and reset the key's debounce window.
        """
        anchor_key = self._encode(key, self._anchor)
        if self.touch_window_s > 0.0:
            with self._touch_mutex:
                self._touch_flushed[anchor_key] = time.monotonic()
                self._touch_pending.discard(anchor_key)
        self.backend.touch(anchor_key)
        with self._mutex:
            self.touch_writes += 1

    def __contains__(self, key: str) -> bool:
        return self.backend.stat(self._encode(key, self._anchor)) is not None

    def keys(self) -> list[str]:
        """Every complete logical key, sorted."""
        found: set[str] = set()
        for backend_key in self.backend.list():
            key = self._decode(backend_key)
            if key is None:
                continue
            if self.parts is not None and not backend_key.endswith(f"/{self._anchor}"):
                continue  # an entry exists only once its anchor does
            found.add(key)
        return sorted(found)

    def lock(self, key: str):
        """Serialise concurrent work on one key (a context manager).

        Striped: the lock comes from a fixed table indexed by key
        hash, so this never takes a global mutex and the table never
        grows.  Keys sharing a stripe contend spuriously — a wait or
        an eviction skip, never a correctness issue.
        """
        return self._stripe_locks[hash(key) % LOCK_STRIPES]

    # ------------------------------------------------------------------
    # Accounting, quotas, eviction
    # ------------------------------------------------------------------

    def entry_bytes(self, key: str) -> int | None:
        """Accounted bytes of one entry, or ``None`` when absent.

        Direct stats on the entry's own files — never a scan of the
        whole namespace.
        """
        if self.parts is None:
            stat = self.backend.stat(self._encode(key))
            return stat.size if stat is not None else None
        if key not in self:
            return None
        total = 0
        for part in self.accounted_parts or ():
            stat = self.backend.stat(self._encode(key, part))
            if stat is not None:
                total += stat.size
        return total

    def total_bytes(self) -> int:
        """Accounted bytes across the namespace."""
        return sum(
            size for stats in self._grouped().values() for size, _ in stats
        )

    def entries(self) -> int:
        """Number of complete logical entries."""
        return len(self.keys())

    #: Default for how long a computed occupancy (entries/bytes) may be
    #: served from cache.  Occupancy needs a full backend scan — linear
    #: in entries — so a monitoring system polling healthz every second
    #: must not pay for 100k stat calls per poll; counters are always
    #: live.  Tunable per instance via ``occupancy_ttl_s`` (surfaced by
    #: ``repro serve --healthz-ttl``); ``0`` disables the cache.
    OCCUPANCY_TTL_S = 5.0

    def stats(self) -> dict[str, Any]:
        """The namespace's healthz block.

        ``hits``/``misses``/``stores``/``evictions`` are live in-memory
        counters; ``entries``/``bytes`` come from a backend scan cached
        for :attr:`occupancy_ttl_s` seconds.
        """
        now = time.monotonic()
        with self._mutex:
            cached = self._occupancy_cache
        if cached is not None and cached[0] > now:
            occupancy = cached[1]
        else:
            grouped = self._grouped()
            occupancy = {
                "entries": len(grouped),
                "bytes": sum(
                    size for sizes in grouped.values() for size, _ in sizes
                ),
            }
            with self._mutex:
                self._occupancy_cache = (now + self.occupancy_ttl_s, occupancy)
        return {
            **occupancy,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "touch_writes": self.touch_writes,
            "retries": self.retries,
        }

    def _check_entry_size(self, key: str, size: int) -> None:
        if self.max_entry_bytes is not None and size > self.max_entry_bytes:
            raise StoreQuotaError(
                f"{self.key_label} {key!r} is {size} bytes; the "
                f"per-{self.key_label} cap is {self.max_entry_bytes}"
            )
        if (
            self.reject_oversize
            and self.max_bytes is not None
            and size > self.max_bytes
        ):
            raise StoreQuotaError(
                f"{self.key_label} {key!r} is {size} bytes; the whole "
                f"store is capped at {self.max_bytes}"
            )

    def _grouped(self) -> dict[str, list[tuple[int, float]]]:
        """Logical key -> [(accounted size, recency)] over live entries."""
        accounted = set(self.accounted_parts or ())
        grouped: dict[str, list[tuple[int, float]]] = {}
        anchors: dict[str, float] = {}
        for backend_key in self.backend.list():
            key = self._decode(backend_key)
            if key is None:
                continue
            stat = self.backend.stat(backend_key)
            if stat is None:
                continue  # deleted under us
            if self.parts is None:
                grouped[key] = [(stat.size, stat.accessed)]
                continue
            part = backend_key.partition("/")[2]
            if part == self._anchor:
                anchors[key] = stat.accessed
            if part in accounted:
                grouped.setdefault(key, []).append((stat.size, stat.accessed))
            else:
                grouped.setdefault(key, [])
        if self.parts is not None:
            # Entries without their anchor are in-flight or torn: they
            # are invisible to readers, so they are invisible here too.
            grouped = {
                key: [(size, anchors[key]) for size, _ in stats] or []
                for key, stats in grouped.items()
                if key in anchors
            }
        return grouped

    def evict(self, keep: str | None = None) -> int:
        """Drop LRU entries until the quotas hold; returns evictions.

        ``keep`` (typically the just-written entry) is never evicted,
        and neither is an entry whose per-key lock is currently held —
        a writer or reader mid-flight on it makes it recently used by
        definition, and deleting parts underneath an in-progress
        multi-part write could strand a half-replaced entry.  Best
        effort by design: entries deleted under a lockless concurrent
        reader simply read as misses and are recomputed or re-uploaded.
        """
        if self.unbounded:
            return 0
        evicted = 0
        with self._evict_mutex:
            self.flush_touches()  # the scan must see coalesced hits
            grouped = self._grouped()
            order = sorted(
                grouped,
                key=lambda key: max(
                    (recency for _, recency in grouped[key]), default=0.0
                ),
            )
            total_bytes = sum(
                size for stats in grouped.values() for size, _ in stats
            )
            n_entries = len(grouped)
            for key in order:
                over_bytes = (
                    self.max_bytes is not None and total_bytes > self.max_bytes
                )
                over_entries = (
                    self.max_entries is not None and n_entries > self.max_entries
                )
                if not (over_bytes or over_entries):
                    break
                if key == keep:
                    continue
                key_lock = self.lock(key)
                if not key_lock.acquire(blocking=False):
                    continue  # actively in use: not an LRU victim
                try:
                    if not self.delete(key):
                        continue
                finally:
                    key_lock.release()
                total_bytes -= sum(size for size, _ in grouped[key])
                n_entries -= 1
                evicted += 1
        with self._mutex:
            self.evictions += evicted
        return evicted
