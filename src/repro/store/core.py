"""`Store`: one root, one backend kind, a backend per namespace.

A :class:`Store` is the object ``--store-dir``/``--store-backend``
construct: it owns a root location and a backend kind and hands out
one backend per storage concern (``stage``, ``results``,
``datasets``, ``jobs``), each rooted at its own subdirectory — so a
single directory tree carries everything a service needs to survive a
restart::

    store/
      stage/     <fingerprint>.pkl        (stage cache)
      results/   <fingerprint>.json       (result envelopes)
      datasets/  <name>/{locations.csv,rentals.csv,meta.json}
      jobs/      <job id>.json            (job journal)

Per-namespace layouts are exactly what the pre-unification stores
wrote, so existing cache/results/datasets directories are adopted
unchanged when pointed at directly through the deprecated per-store
flags.  With the ``sharded`` backend each namespace fans its entries
out into digest-prefix shard directories; file contents stay
byte-identical.  Without a root the store is memory-backed with
identical semantics — the mode in-process test services use.

Policy (quotas, eviction, key encoding) is layered on by each
adapter's canonical namespace builder (``stage_namespace``,
``results_namespace``, ``datasets_namespace``, ``jobs_namespace``).
"""

from __future__ import annotations

import json
from pathlib import Path

from ..exceptions import StoreError
from ..resilience.faults import FaultConfig, FaultInjectingBackend
from .backend import BACKEND_KINDS, Backend, make_backend

#: Marker file recording a store tree's backend kind, so reopening the
#: tree without ``--store-backend`` adopts the right layout instead of
#: silently bifurcating into a second, mutually invisible one.
MARKER_NAME = "store.json"


class Store:
    """A per-namespace backend factory bound to one root and kind."""

    def __init__(
        self,
        root: str | Path | None = None,
        backend: str | None = None,
    ) -> None:
        self.root = Path(root) if root is not None else None
        recorded = self._read_marker()
        if backend is None:
            backend = recorded or ("dir" if root is not None else "memory")
        if backend not in BACKEND_KINDS:
            raise StoreError(
                f"unknown store backend {backend!r}; expected one of "
                f"{BACKEND_KINDS}"
            )
        if backend != "memory" and root is None:
            raise StoreError(
                f"the {backend!r} store backend needs a root directory"
            )
        if recorded is not None and backend != recorded:
            raise StoreError(
                f"store at {self.root} was created with the {recorded!r} "
                f"backend; refusing to open it as {backend!r} (the layouts "
                "are mutually invisible)"
            )
        self.backend_kind = backend
        if self.root is not None and recorded is None:
            self._write_marker()

    def _marker_path(self) -> Path:
        assert self.root is not None
        return self.root / MARKER_NAME

    def _read_marker(self) -> str | None:
        if self.root is None:
            return None
        try:
            payload = json.loads(self._marker_path().read_text())
        except (OSError, ValueError):
            return None
        kind = payload.get("backend") if isinstance(payload, dict) else None
        return kind if kind in BACKEND_KINDS else None

    def _write_marker(self) -> None:
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            self._marker_path().write_text(
                json.dumps({"type": "Store", "backend": self.backend_kind})
                + "\n"
            )
        except OSError:
            pass  # unwritable root fails later, with a better error

    def backend(self, name: str) -> Backend:
        """A backend of this store's kind rooted at ``<root>/<name>``.

        When the ``REPRO_FAULT_*`` environment variables describe a
        fault schedule (see :class:`~repro.resilience.faults.FaultConfig`),
        the backend is wrapped in a
        :class:`~repro.resilience.faults.FaultInjectingBackend` — the
        switch chaos tests flip to fault a real ``repro serve``
        subprocess without touching its code.
        """
        backend = make_backend(
            self.backend_kind,
            None if self.root is None else self.root / name,
        )
        faults = FaultConfig.from_env()
        if faults is not None and faults.active:
            backend = FaultInjectingBackend(backend, faults)
        return backend

    def spec(self, name: str) -> tuple[str, str] | None:
        """(kind, root) a worker process can rebuild namespace ``name`` from.

        ``None`` for memory stores — bytes cannot cross a process
        boundary through them.
        """
        if self.root is None:
            return None
        return (self.backend_kind, str(self.root / name))
