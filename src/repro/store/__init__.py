"""repro.store — the one pluggable storage subsystem under everything.

Three layers, smallest surface first:

* :class:`Backend` (:mod:`repro.store.backend`) — a flat byte store
  with atomic publish and persisted access stamps.  Implementations:
  :class:`MemoryBackend`, :class:`DirBackend` (the historical
  one-file-per-key layout) and :class:`ShardedDirBackend`
  (digest-prefix fan-out for 100k+ entries).
* :class:`Namespace` (:mod:`repro.store.namespace`) — policy over a
  backend: canonical key encoding and validation, byte/entry quotas
  with LRU-by-access eviction, persisted recency, oversize rejection,
  per-key locks, multi-part entries.  :class:`ObjectLRU` is its
  in-process sibling for caches of live objects.
* :class:`Store` (:mod:`repro.store.core`) — one root + backend kind
  handing out a namespace per concern; what ``--store-dir`` /
  ``--store-backend`` construct and ``/v1/healthz`` reports on.

The stage cache (:class:`repro.pipeline.cache.StageCache`), results
store (:class:`repro.service.store.ResultsStore`), dataset store
(:class:`repro.service.datasets.DatasetStore`) and job journal
(:class:`repro.service.jobs.JobStore`) are thin adapters over
namespaces of this subsystem — no storage policy lives anywhere else.
"""

from .backend import (
    BACKEND_KINDS,
    Backend,
    DirBackend,
    EntryStat,
    MemoryBackend,
    ShardedDirBackend,
    make_backend,
)
from .core import Store
from .lru import ObjectLRU
from .namespace import HEX_KEY, NAME_KEY, Namespace

__all__ = [
    "BACKEND_KINDS",
    "Backend",
    "DirBackend",
    "EntryStat",
    "HEX_KEY",
    "MemoryBackend",
    "NAME_KEY",
    "Namespace",
    "ObjectLRU",
    "ShardedDirBackend",
    "Store",
    "make_backend",
]
