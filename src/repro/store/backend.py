"""Storage backends: the byte-level half of :mod:`repro.store`.

A :class:`Backend` is a flat key/value store over raw bytes.  Keys are
relative POSIX-style paths (``ab12…f.pkl``, ``tiny/meta.json``) that a
:class:`~repro.store.namespace.Namespace` has already validated — the
backend's job is only durability and atomicity:

* ``put``/``open_write`` publish atomically (a concurrent reader sees
  the old bytes or the complete new bytes, never a torn write);
* ``stat`` exposes size and an *access* stamp that ``get``/``touch``
  refresh — the recency signal the namespace's LRU eviction sorts by.
  Directory backends persist it as file mtime, so eviction order
  survives process restarts;
* ``list`` never yields in-flight temporary files.

Three implementations:

:class:`MemoryBackend`
    A process-local dict.  Same semantics, nothing survives the
    process — the mode in-process test services use.
:class:`DirBackend`
    One file per key under a root directory: exactly the on-disk
    layout the stage cache, results store and dataset store used
    before they shared this subsystem, so existing directories are
    adopted as-is.
:class:`ShardedDirBackend`
    Like :class:`DirBackend`, but entries fan out into
    ``<shard>/<key>`` subdirectories by a stable digest prefix of the
    key's first path component, so 100k+ stage pickles never share one
    directory.  File *content* is byte-identical to
    :class:`DirBackend`; only the directory layout differs.
"""

from __future__ import annotations

import hashlib
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from io import BytesIO
from pathlib import Path, PurePosixPath
from typing import BinaryIO, Iterator, Protocol, runtime_checkable

#: Backend kinds :func:`make_backend` understands.
BACKEND_KINDS = ("memory", "dir", "sharded")

#: Marker embedded in in-flight temporary file names; ``list`` skips it.
_TMP_MARKER = ".tmp-"


@dataclass(frozen=True)
class EntryStat:
    """Size and access recency of one stored key."""

    size: int
    accessed: float


@runtime_checkable
class Backend(Protocol):
    """The byte-level storage contract namespaces build policy on."""

    def get(self, key: str) -> bytes | None:
        """The stored bytes (access recency refreshed), or ``None``."""

    def peek(self, key: str) -> bytes | None:
        """The stored bytes *without* refreshing recency, or ``None``."""

    def put(self, key: str, data: bytes) -> None:
        """Store ``data`` under ``key``, atomically replacing any old value."""

    def delete(self, key: str) -> bool:
        """Drop ``key``; returns whether it existed."""

    def list(self) -> Iterator[str]:
        """Every stored key (no ordering guarantee, no tmp files)."""

    def stat(self, key: str) -> EntryStat | None:
        """Size/recency of ``key`` without touching it, or ``None``."""

    def touch(self, key: str) -> None:
        """Refresh ``key``'s access recency (no-op if missing)."""

    def open_read(self, key: str) -> BinaryIO:
        """A readable binary handle (raises ``FileNotFoundError`` if absent)."""

    def open_write(self, key: str) -> "AbstractWriteHandle":
        """A context manager whose handle publishes atomically on exit."""


class AbstractWriteHandle(Protocol):
    """``with backend.open_write(key) as handle: handle.write(...)``."""

    def __enter__(self) -> BinaryIO: ...

    def __exit__(self, *exc_info: object) -> bool | None: ...


# ---------------------------------------------------------------------------
# Memory
# ---------------------------------------------------------------------------


class MemoryBackend:
    """Process-local byte store with monotonic access stamps."""

    def __init__(self) -> None:
        self._entries: dict[str, bytes] = {}
        self._stamps: dict[str, float] = {}
        self._clock = 0.0
        self._mutex = threading.Lock()

    def _tick(self) -> float:
        self._clock += 1.0
        return self._clock

    def get(self, key: str) -> bytes | None:
        with self._mutex:
            data = self._entries.get(key)
            if data is not None:
                self._stamps[key] = self._tick()
            return data

    def peek(self, key: str) -> bytes | None:
        with self._mutex:
            return self._entries.get(key)

    def put(self, key: str, data: bytes) -> None:
        with self._mutex:
            self._entries[key] = bytes(data)
            self._stamps[key] = self._tick()

    def delete(self, key: str) -> bool:
        with self._mutex:
            self._stamps.pop(key, None)
            return self._entries.pop(key, None) is not None

    def list(self) -> Iterator[str]:
        with self._mutex:
            return iter(list(self._entries))

    def stat(self, key: str) -> EntryStat | None:
        with self._mutex:
            data = self._entries.get(key)
            if data is None:
                return None
            return EntryStat(size=len(data), accessed=self._stamps[key])

    def touch(self, key: str) -> None:
        with self._mutex:
            if key in self._entries:
                self._stamps[key] = self._tick()

    def open_read(self, key: str) -> BinaryIO:
        data = self.get(key)
        if data is None:
            raise FileNotFoundError(key)
        return BytesIO(data)

    @contextmanager
    def open_write(self, key: str):
        buffer = BytesIO()
        yield buffer
        self.put(key, buffer.getvalue())


# ---------------------------------------------------------------------------
# Directories
# ---------------------------------------------------------------------------


class DirBackend:
    """One file per key under ``root`` — the historical flat layout."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # Subclasses override only the key<->path mapping.
    def _path(self, key: str) -> Path:
        return self.root / PurePosixPath(key)

    def _key(self, path: Path) -> str:
        return path.relative_to(self.root).as_posix()

    def get(self, key: str) -> bytes | None:
        path = self._path(key)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        try:
            os.utime(path)  # refresh LRU recency; survives restarts
        except OSError:
            pass
        return data

    def peek(self, key: str) -> bytes | None:
        try:
            return self._path(key).read_bytes()
        except OSError:
            return None

    def put(self, key: str, data: bytes) -> None:
        with self.open_write(key) as handle:
            handle.write(data)

    def delete(self, key: str) -> bool:
        path = self._path(key)
        try:
            path.unlink()
        except OSError:
            return False
        self._prune_dirs(path.parent)
        return True

    def _prune_dirs(self, directory: Path) -> None:
        """Drop directories a delete emptied (never the root itself)."""
        try:
            while directory != self.root and directory.is_relative_to(self.root):
                directory.rmdir()  # fails on non-empty: done pruning
                directory = directory.parent
        except OSError:
            pass

    def list(self) -> Iterator[str]:
        if not self.root.is_dir():
            return
        for path in sorted(self.root.rglob("*")):
            if path.is_file() and _TMP_MARKER not in path.name:
                yield self._key(path)

    def stat(self, key: str) -> EntryStat | None:
        try:
            stat = self._path(key).stat()
        except OSError:
            return None
        return EntryStat(size=stat.st_size, accessed=stat.st_mtime)

    def touch(self, key: str) -> None:
        try:
            os.utime(self._path(key))
        except OSError:
            pass

    def open_read(self, key: str) -> BinaryIO:
        return open(self._path(key), "rb")

    @contextmanager
    def open_write(self, key: str):
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic publish: write next to the target, then os.replace — a
        # concurrent reader sees the old file or the complete new one.
        tmp = path.with_name(
            f"{path.name}{_TMP_MARKER}{os.getpid()}.{threading.get_ident()}"
        )
        try:
            with open(tmp, "wb") as handle:
                yield handle
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise


class ShardedDirBackend(DirBackend):
    """A :class:`DirBackend` fanning entries out by digest prefix.

    The shard of a key is a stable hex prefix of the SHA-256 of its
    *first* path component, so multi-file entries (a dataset's CSV
    pair + meta) stay colocated in one shard directory.  100k stage
    pickles spread over 256 directories instead of one.
    """

    def __init__(self, root: str | Path, *, width: int = 2) -> None:
        super().__init__(root)
        if not 1 <= width <= 8:
            raise ValueError("shard width must be between 1 and 8")
        self.width = width

    @staticmethod
    def _shard_of(component: str, width: int) -> str:
        return hashlib.sha256(component.encode("utf-8")).hexdigest()[:width]

    def _path(self, key: str) -> Path:
        head = PurePosixPath(key).parts[0]
        return self.root / self._shard_of(head, self.width) / PurePosixPath(key)

    def _key(self, path: Path) -> str:
        relative = path.relative_to(self.root)
        return PurePosixPath(*relative.parts[1:]).as_posix()


def make_backend(kind: str, root: str | Path | None = None) -> Backend:
    """Construct a backend by kind name (the ``--store-backend`` values).

    >>> make_backend("memory").put("k", b"v")
    >>> make_backend("bogus")
    Traceback (most recent call last):
        ...
    repro.exceptions.StoreError: unknown store backend 'bogus'; expected one of ('memory', 'dir', 'sharded')
    """
    from ..exceptions import StoreError

    if kind == "memory":
        return MemoryBackend()
    if kind in ("dir", "sharded") and root is None:
        raise StoreError(f"the {kind!r} store backend needs a root directory")
    if kind == "dir":
        return DirBackend(root)
    if kind == "sharded":
        return ShardedDirBackend(root)
    raise StoreError(
        f"unknown store backend {kind!r}; expected one of {BACKEND_KINDS}"
    )
