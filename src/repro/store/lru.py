"""A slot-bounded LRU map for live Python objects.

Byte-level LRU eviction lives in :class:`~repro.store.namespace.Namespace`;
this is its in-process counterpart for caches that hold *objects*
(unpickled stage values, resolved datasets) where serialising through a
backend would defeat the point.  Kept here so every eviction policy in
the codebase lives under :mod:`repro.store`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Iterator

#: Sentinel distinguishing "absent" from a cached ``None``.
_ABSENT = object()


class ObjectLRU:
    """A thread-safe, slot-bounded, recency-ordered mapping.

    ``slots=0`` disables retention entirely (every :meth:`put` is a
    no-op), which is how a memory-tier-less stage cache is expressed.

    >>> lru = ObjectLRU(2)
    >>> lru.put("a", 1); lru.put("b", 2)
    >>> _ = lru.get("a")        # refresh: "b" is now least recent
    >>> lru.put("c", 3)
    >>> sorted(lru)
    ['a', 'c']
    """

    def __init__(self, slots: int) -> None:
        if slots < 0:
            raise ValueError("slots must be non-negative")
        self.slots = slots
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._mutex = threading.Lock()

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The stored value (recency refreshed), or ``default``."""
        with self._mutex:
            value = self._entries.get(key, _ABSENT)
            if value is _ABSENT:
                return default
            self._entries.move_to_end(key)
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Store ``value``, evicting the least recent beyond ``slots``."""
        if self.slots == 0:
            return
        with self._mutex:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.slots:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._mutex:
            self._entries.clear()

    def __contains__(self, key: Hashable) -> bool:
        with self._mutex:
            return key in self._entries

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)

    def __iter__(self) -> Iterator[Hashable]:
        with self._mutex:
            return iter(list(self._entries))
