"""repro — reproduction of "Graph-Based Optimisation of Network
Expansion in a Dockless Bike Sharing System" (ICDE 2024).

The package implements the paper's full pipeline over a calibrated
synthetic stand-in for the proprietary Moby Bikes dataset:

>>> from repro import NetworkExpansionOptimiser, generate_paper_dataset
>>> result = NetworkExpansionOptimiser(generate_paper_dataset()).run()
>>> result.basic.modularity > 0
True

Sub-packages: :mod:`repro.geo` (geospatial substrate), :mod:`repro.data`
(relational tables + cleaning), :mod:`repro.synth` (dataset generator),
:mod:`repro.graphdb` (property graph), :mod:`repro.cluster` (HAC),
:mod:`repro.community` (Louvain & friends), :mod:`repro.metrics`,
:mod:`repro.core` (the expansion pipeline), :mod:`repro.viz` and
:mod:`repro.reporting`.
"""

from .config import (
    ClusteringConfig,
    CommunityConfig,
    PAPER_CONFIG,
    PipelineConfig,
    SelectionConfig,
    TemporalCommunityConfig,
)
from .core import (
    ExpansionResult,
    NetworkExpansionOptimiser,
    validate_expansion,
)
from .data import MobyDataset, clean_dataset
from .exceptions import ReproError
from .synth import SyntheticMobyGenerator, generate_paper_dataset

__version__ = "1.0.0"

__all__ = [
    "ClusteringConfig",
    "CommunityConfig",
    "ExpansionResult",
    "MobyDataset",
    "NetworkExpansionOptimiser",
    "PAPER_CONFIG",
    "PipelineConfig",
    "ReproError",
    "SelectionConfig",
    "SyntheticMobyGenerator",
    "TemporalCommunityConfig",
    "clean_dataset",
    "generate_paper_dataset",
    "validate_expansion",
]
