"""repro — reproduction of "Graph-Based Optimisation of Network
Expansion in a Dockless Bike Sharing System" (ICDE 2024).

The package implements the paper's full pipeline over a calibrated
synthetic stand-in for the proprietary Moby Bikes dataset:

>>> from repro import NetworkExpansionOptimiser, generate_paper_dataset
>>> result = NetworkExpansionOptimiser(generate_paper_dataset()).run()
>>> result.basic.modularity > 0
True

The methodology is executed as a staged DAG by
:class:`~repro.pipeline.PipelineRunner` (``clean`` -> ``candidates``
-> ``selection`` -> ``network`` -> ``basic``/``day``/``hour``), with
content-addressed caching of every stage value and parallel fan-out of
the temporal community slices.  ``NetworkExpansionOptimiser`` is a
thin facade over it; both produce identical results, pinned by the
golden regression suite in ``tests/test_golden_paper.py``:

>>> from repro import PipelineRunner
>>> runner = PipelineRunner(generate_paper_dataset())  # cache_dir=..., jobs=...
>>> runner.run().selection.n_selected > 0
True

Parameter grids share one cache through :func:`~repro.pipeline.run_sweep`
(CLI: ``repro sweep``), so a sweep only recomputes the stages a config
actually changes — see ``examples/scenario_sweep.py``.

For serving, :mod:`repro.service` wraps the runner in a typed
scenario/job API: :class:`~repro.service.ScenarioSpec` requests are
fingerprinted, deduplicated and executed by an
:class:`~repro.service.ExpansionService` whose JSON result envelopes
are shared verbatim by the Python API, the CLI (``--format json``)
and the ``repro serve`` HTTP endpoints:

>>> from repro.service import DatasetRef, ExpansionService, ScenarioSpec
>>> service = ExpansionService()
>>> spec = ScenarioSpec(dataset=DatasetRef.synthetic(7))  # doctest: +SKIP
>>> service.run(spec)["outputs"]["run"]["headline"]  # doctest: +SKIP

Sub-packages: :mod:`repro.geo` (geospatial substrate), :mod:`repro.data`
(relational tables + cleaning), :mod:`repro.synth` (dataset generator),
:mod:`repro.graphdb` (property graph), :mod:`repro.cluster` (HAC),
:mod:`repro.community` (Louvain & friends), :mod:`repro.metrics`,
:mod:`repro.core` (the expansion pipeline), :mod:`repro.pipeline` (the
staged runner), :mod:`repro.viz` and :mod:`repro.reporting`.
"""

from .config import (
    ClusteringConfig,
    CommunityConfig,
    PAPER_CONFIG,
    PipelineConfig,
    SelectionConfig,
    TemporalCommunityConfig,
)
from .core import (
    ExpansionResult,
    NetworkExpansionOptimiser,
    validate_expansion,
)
from .data import MobyDataset, clean_dataset
from .exceptions import ReproError
from .pipeline import PipelineRunner, StageCache, config_grid, run_sweep
from .service import DatasetRef, ExpansionService, ScenarioSpec
from .synth import SyntheticMobyGenerator, generate_paper_dataset

__version__ = "1.2.0"

__all__ = [
    "ClusteringConfig",
    "CommunityConfig",
    "DatasetRef",
    "ExpansionResult",
    "ExpansionService",
    "MobyDataset",
    "NetworkExpansionOptimiser",
    "PAPER_CONFIG",
    "PipelineConfig",
    "PipelineRunner",
    "ReproError",
    "ScenarioSpec",
    "SelectionConfig",
    "StageCache",
    "SyntheticMobyGenerator",
    "TemporalCommunityConfig",
    "clean_dataset",
    "config_grid",
    "generate_paper_dataset",
    "run_sweep",
    "validate_expansion",
]
