"""Demand-forecast baselines.

The paper's related work reaches for graph convolutional networks; a
credible library needs the baselines any such model must beat:

* :class:`GlobalMeanModel` — one number per station;
* :class:`CalendarProfileModel` — per-station (weekday-class, hour)
  historical averages, the standard seasonal-naive baseline;
* :class:`SmoothedCalendarModel` — the same with shrinkage towards the
  station mean for sparse buckets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .series import DemandPoint, DemandSeries


class GlobalMeanModel:
    """Predicts each station's historical mean demand per bucket."""

    def __init__(self) -> None:
        self._means: dict[int, float] = {}
        self._fallback = 0.0

    def fit(self, series: DemandSeries) -> "GlobalMeanModel":
        """Estimate per-station means from a training series."""
        totals: dict[int, int] = {}
        counts: dict[int, int] = {}
        for point in series.points:
            totals[point.station_id] = totals.get(point.station_id, 0) + point.count
            counts[point.station_id] = counts.get(point.station_id, 0) + 1
        self._means = {
            station: totals[station] / counts[station] for station in totals
        }
        if counts:
            self._fallback = sum(totals.values()) / sum(counts.values())
        return self

    def predict(self, point: DemandPoint) -> float:
        """Forecast demand for one bucket."""
        return self._means.get(point.station_id, self._fallback)


@dataclass
class _Bucket:
    total: int = 0
    count: int = 0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class CalendarProfileModel:
    """Per-station (weekend?, hour) historical-average forecaster.

    For daily series the hour key collapses, leaving a per-station
    weekday/weekend average.
    """

    def __init__(self) -> None:
        self._buckets: dict[tuple[int, bool, int | None], _Bucket] = {}
        self._station_mean = GlobalMeanModel()

    def _key(self, point: DemandPoint) -> tuple[int, bool, int | None]:
        return (point.station_id, point.is_weekend, point.hour)

    def fit(self, series: DemandSeries) -> "CalendarProfileModel":
        """Estimate the calendar buckets from a training series."""
        self._station_mean.fit(series)
        for point in series.points:
            bucket = self._buckets.setdefault(self._key(point), _Bucket())
            bucket.total += point.count
            bucket.count += 1
        return self

    def predict(self, point: DemandPoint) -> float:
        """Forecast demand for one bucket."""
        bucket = self._buckets.get(self._key(point))
        if bucket is None or bucket.count == 0:
            return self._station_mean.predict(point)
        return bucket.mean


@dataclass
class SmoothedCalendarModel:
    """Calendar profile with shrinkage towards the station mean.

    prediction = (n * bucket_mean + k * station_mean) / (n + k), with
    ``k`` the shrinkage strength — sparse buckets lean on the station
    mean, busy ones trust their own history.
    """

    shrinkage: float = 5.0
    _calendar: CalendarProfileModel = field(default_factory=CalendarProfileModel)
    _mean: GlobalMeanModel = field(default_factory=GlobalMeanModel)

    def fit(self, series: DemandSeries) -> "SmoothedCalendarModel":
        """Fit both components."""
        self._calendar.fit(series)
        self._mean.fit(series)
        return self

    def predict(self, point: DemandPoint) -> float:
        """Shrunk forecast for one bucket."""
        bucket = self._calendar._buckets.get(self._calendar._key(point))
        station_mean = self._mean.predict(point)
        if bucket is None or bucket.count == 0:
            return station_mean
        n = bucket.count
        return (n * bucket.mean + self.shrinkage * station_mean) / (
            n + self.shrinkage
        )
