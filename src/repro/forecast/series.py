"""Demand time series over the station network.

Related work the paper builds on ([1], [22]) predicts station-level
hourly demand; the substrate for any such model is a clean demand
series.  This module aggregates cleaned rentals into per-station (or
per-community) counts at daily or hourly resolution, with calendar
features attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, datetime, timedelta
from typing import Iterable, Sequence

from ..data.records import RentalRecord


@dataclass(frozen=True)
class DemandPoint:
    """One observation: demand at a station over one time bucket."""

    station_id: int
    day: date
    hour: int | None
    count: int

    @property
    def weekday(self) -> int:
        """Monday=0..Sunday=6."""
        return self.day.weekday()

    @property
    def is_weekend(self) -> bool:
        """Saturday or Sunday."""
        return self.weekday >= 5


@dataclass
class DemandSeries:
    """A dense demand series for a set of stations.

    ``hourly`` selects the resolution; missing buckets are explicit
    zeros so baselines see the full calendar.
    """

    points: list[DemandPoint]
    hourly: bool

    @classmethod
    def from_rentals(
        cls,
        rentals: Iterable[RentalRecord],
        location_to_station: dict[int, int],
        hourly: bool = False,
        station_ids: Sequence[int] | None = None,
    ) -> "DemandSeries":
        """Aggregate rental *origins* into a dense demand series."""
        counts: dict[tuple[int, date, int | None], int] = {}
        first_day: date | None = None
        last_day: date | None = None
        seen_stations: set[int] = set()
        for rental in rentals:
            station = location_to_station[rental.rental_location_id]
            seen_stations.add(station)
            day = rental.started_at.date()
            hour = rental.started_at.hour if hourly else None
            counts[(station, day, hour)] = counts.get((station, day, hour), 0) + 1
            if first_day is None or day < first_day:
                first_day = day
            if last_day is None or day > last_day:
                last_day = day
        if first_day is None or last_day is None:
            return cls(points=[], hourly=hourly)

        stations = sorted(station_ids) if station_ids is not None else sorted(seen_stations)
        hours: Sequence[int | None] = range(24) if hourly else [None]
        points: list[DemandPoint] = []
        day = first_day
        while day <= last_day:
            for station in stations:
                for hour in hours:
                    points.append(
                        DemandPoint(
                            station_id=station,
                            day=day,
                            hour=hour,
                            count=counts.get((station, day, hour), 0),
                        )
                    )
            day += timedelta(days=1)
        return cls(points=points, hourly=hourly)

    def __len__(self) -> int:
        return len(self.points)

    def stations(self) -> list[int]:
        """Distinct station ids, sorted."""
        return sorted({point.station_id for point in self.points})

    def total_demand(self) -> int:
        """Total trips in the series."""
        return sum(point.count for point in self.points)

    def split_by_date(self, cutoff: date) -> tuple["DemandSeries", "DemandSeries"]:
        """Train/test split: days before ``cutoff`` vs the rest."""
        train = [p for p in self.points if p.day < cutoff]
        test = [p for p in self.points if p.day >= cutoff]
        return (
            DemandSeries(points=train, hourly=self.hourly),
            DemandSeries(points=test, hourly=self.hourly),
        )

    def timestamps(self) -> list[datetime]:
        """Bucket start timestamps (diagnostics)."""
        return [
            datetime(p.day.year, p.day.month, p.day.day, p.hour or 0)
            for p in self.points
        ]
