"""Demand-forecasting substrate: series, baselines, evaluation."""

from .baselines import (
    CalendarProfileModel,
    GlobalMeanModel,
    SmoothedCalendarModel,
)
from .evaluation import ForecastScore, evaluate
from .series import DemandPoint, DemandSeries

__all__ = [
    "CalendarProfileModel",
    "DemandPoint",
    "DemandSeries",
    "ForecastScore",
    "GlobalMeanModel",
    "SmoothedCalendarModel",
    "evaluate",
]
