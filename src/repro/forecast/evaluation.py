"""Forecast evaluation: MAE/RMSE over a held-out demand series."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

from .series import DemandPoint, DemandSeries


class Forecaster(Protocol):
    """Anything with fit/predict over demand points."""

    def fit(self, series: DemandSeries) -> "Forecaster": ...

    def predict(self, point: DemandPoint) -> float: ...


@dataclass(frozen=True)
class ForecastScore:
    """Error metrics of one model on one test series."""

    model: str
    mae: float
    rmse: float
    n_points: int


def evaluate(
    model: Forecaster, name: str, train: DemandSeries, test: DemandSeries
) -> ForecastScore:
    """Fit on ``train``, score on ``test``."""
    if not test.points:
        raise ValueError("test series is empty")
    model.fit(train)
    total_abs = 0.0
    total_sq = 0.0
    for point in test.points:
        error = model.predict(point) - point.count
        total_abs += abs(error)
        total_sq += error * error
    n = len(test.points)
    return ForecastScore(
        model=name,
        mae=total_abs / n,
        rmse=math.sqrt(total_sq / n),
        n_points=n,
    )
