"""Degree, strength and flux metrics (paper Section II's metric set)."""

from __future__ import annotations

from ..graphdb import DirectedGraph, NodeKey, WeightedGraph


def degrees(graph: WeightedGraph) -> dict[NodeKey, int]:
    """Distinct-neighbour degree of every node (loops excluded)."""
    return {node: graph.degree(node) for node in graph.nodes()}


def strengths(graph: WeightedGraph) -> dict[NodeKey, float]:
    """Weighted degree of every node (self-loops counted twice)."""
    return {node: graph.strength(node) for node in graph.nodes()}


def out_strengths(graph: DirectedGraph) -> dict[NodeKey, float]:
    """Total outgoing weight of every node."""
    return {node: graph.out_strength(node) for node in graph.nodes()}


def in_strengths(graph: DirectedGraph) -> dict[NodeKey, float]:
    """Total incoming weight of every node."""
    return {node: graph.in_strength(node) for node in graph.nodes()}


def fluxes(graph: DirectedGraph) -> dict[NodeKey, float]:
    """Net flow (in minus out) of every node.

    A persistently positive flux marks a bike sink (the node
    accumulates bikes); negative marks a source — the quantity fleet
    rebalancing teams care about.
    """
    return {node: graph.flux(node) for node in graph.nodes()}


def min_degree(graph: WeightedGraph, nodes: list[NodeKey] | None = None) -> int:
    """Smallest degree over ``nodes`` (default: all nodes).

    This is the paper's Rule-3 threshold when evaluated over the fixed
    stations.
    """
    pool = nodes if nodes is not None else list(graph.nodes())
    if not pool:
        raise ValueError("min_degree over an empty node set")
    return min(graph.degree(node) for node in pool)
