"""Local clustering coefficients (spatial-distribution metric of [13])."""

from __future__ import annotations

from ..graphdb import NodeKey, WeightedGraph


def local_clustering(graph: WeightedGraph, node: NodeKey) -> float:
    """Fraction of a node's neighbour pairs that are themselves linked.

    Self-loops are ignored; nodes with fewer than two neighbours score
    0 (the networkx convention).
    """
    neighbours = [
        other for other in graph.neighbours(node) if other != node
    ]
    k = len(neighbours)
    if k < 2:
        return 0.0
    links = 0
    for i in range(k):
        for j in range(i + 1, k):
            if graph.has_edge(neighbours[i], neighbours[j]):
                links += 1
    return 2.0 * links / (k * (k - 1))


def clustering_coefficients(graph: WeightedGraph) -> dict[NodeKey, float]:
    """Local clustering coefficient of every node."""
    return {node: local_clustering(graph, node) for node in graph.nodes()}


def average_clustering(graph: WeightedGraph) -> float:
    """Mean local clustering coefficient (0 for an empty graph)."""
    coefficients = clustering_coefficients(graph)
    if not coefficients:
        return 0.0
    return sum(coefficients.values()) / len(coefficients)
