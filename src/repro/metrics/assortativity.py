"""Degree assortativity — do hubs connect to hubs?

A standard descriptor in the BSS network literature ([13], [23]):
the Pearson correlation of degrees across edges.  Spatial
infrastructure networks are typically disassortative (hubs serve
leaves).
"""

from __future__ import annotations

import math

from ..graphdb import WeightedGraph


def degree_assortativity(graph: WeightedGraph) -> float:
    """Pearson degree-degree correlation over edges (loops skipped).

    Returns 0.0 when the graph has no variance to correlate (fewer
    than two edges, or a regular graph).
    """
    pairs: list[tuple[int, int]] = []
    degree = {node: graph.degree(node) for node in graph.nodes()}
    for u, v, _ in graph.edges():
        if u == v:
            continue
        # Each undirected edge contributes both orientations, which is
        # the standard symmetric treatment.
        pairs.append((degree[u], degree[v]))
        pairs.append((degree[v], degree[u]))
    if len(pairs) < 2:
        return 0.0
    n = len(pairs)
    mean_x = sum(x for x, _ in pairs) / n
    mean_y = sum(y for _, y in pairs) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in pairs) / n
    var_x = sum((x - mean_x) ** 2 for x, _ in pairs) / n
    var_y = sum((y - mean_y) ** 2 for _, y in pairs) / n
    if var_x <= 0 or var_y <= 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)
