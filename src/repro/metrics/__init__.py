"""Network-metrics substrate."""

from .assortativity import degree_assortativity
from .centrality import betweenness_centrality, closeness_centrality, pagerank
from .clustering_coeff import (
    average_clustering,
    clustering_coefficients,
    local_clustering,
)
from .degree import (
    degrees,
    fluxes,
    in_strengths,
    min_degree,
    out_strengths,
    strengths,
)
from .gini import gini
from .summary import FlowSummary, NetworkSummary, summarise, summarise_flow

__all__ = [
    "FlowSummary",
    "NetworkSummary",
    "average_clustering",
    "betweenness_centrality",
    "closeness_centrality",
    "degree_assortativity",
    "clustering_coefficients",
    "degrees",
    "fluxes",
    "gini",
    "in_strengths",
    "local_clustering",
    "min_degree",
    "out_strengths",
    "pagerank",
    "strengths",
    "summarise",
    "summarise_flow",
]
