"""Centrality metrics: betweenness (Brandes), closeness and PageRank.

All three appear in the related work the paper builds on ([13], [20],
[21]) as standard descriptors of BSS networks.  Implementations follow
the canonical definitions over weighted graphs, where edge *weights are
interpreted as closeness* (trip counts): shortest-path algorithms use
the reciprocal weight as the traversal cost, the usual transform for
flow-like weights.
"""

from __future__ import annotations

import heapq
from collections import deque

from ..graphdb import NodeKey, WeightedGraph

_EPSILON = 1e-12


def _costs(graph: WeightedGraph, use_weights: bool) -> dict[NodeKey, dict[NodeKey, float]]:
    """Per-edge traversal costs: 1/weight, or 1 when unweighted."""
    costs: dict[NodeKey, dict[NodeKey, float]] = {}
    for node in graph.nodes():
        costs[node] = {
            neighbour: (1.0 / weight if use_weights else 1.0)
            for neighbour, weight in graph.neighbours(node).items()
            if neighbour != node and weight > 0
        }
    return costs


def betweenness_centrality(
    graph: WeightedGraph, use_weights: bool = False, normalised: bool = True
) -> dict[NodeKey, float]:
    """Brandes' exact betweenness centrality.

    Unweighted mode runs BFS per source; weighted mode runs Dijkstra
    with cost 1/weight.  Normalisation divides by (n-1)(n-2)/2 (the
    undirected convention, matching networkx).
    """
    nodes = list(graph.nodes())
    n = len(nodes)
    betweenness = {node: 0.0 for node in nodes}
    costs = _costs(graph, use_weights)

    for source in nodes:
        # Single-source shortest paths with path counting.
        stack: list[NodeKey] = []
        predecessors: dict[NodeKey, list[NodeKey]] = {node: [] for node in nodes}
        sigma = {node: 0.0 for node in nodes}
        sigma[source] = 1.0
        distance: dict[NodeKey, float] = {}

        if not use_weights:
            distance[source] = 0.0
            queue: deque[NodeKey] = deque([source])
            while queue:
                current = queue.popleft()
                stack.append(current)
                for neighbour in costs[current]:
                    alt = distance[current] + 1.0
                    if neighbour not in distance:
                        distance[neighbour] = alt
                        queue.append(neighbour)
                    if distance[neighbour] == alt:
                        sigma[neighbour] += sigma[current]
                        predecessors[neighbour].append(current)
        else:
            # Exact float comparisons, mirroring networkx's Dijkstra so
            # tie counting (and therefore sigma) agrees with the oracle.
            seen: dict[NodeKey, float] = {source: 0.0}
            counter = 0
            heap: list[tuple[float, int, NodeKey, NodeKey | None]] = [
                (0.0, counter, source, None)
            ]
            while heap:
                dist, _, current, _ = heapq.heappop(heap)
                if current in distance:
                    continue
                distance[current] = dist
                stack.append(current)
                for neighbour, cost in costs[current].items():
                    alt = dist + cost
                    if neighbour in distance:
                        if distance[neighbour] == alt:
                            sigma[neighbour] += sigma[current]
                            predecessors[neighbour].append(current)
                        continue
                    if neighbour not in seen or alt < seen[neighbour]:
                        seen[neighbour] = alt
                        counter += 1
                        heapq.heappush(heap, (alt, counter, neighbour, current))
                        sigma[neighbour] = sigma[current]
                        predecessors[neighbour] = [current]
                    elif seen[neighbour] == alt:
                        sigma[neighbour] += sigma[current]
                        predecessors[neighbour].append(current)

        # Accumulation (dependency back-propagation).
        delta = {node: 0.0 for node in nodes}
        while stack:
            w = stack.pop()
            for v in predecessors[w]:
                delta[v] += (sigma[v] / sigma[w]) * (1.0 + delta[w])
            if w != source:
                betweenness[w] += delta[w]

    # Each undirected pair was counted from both endpoints.
    for node in betweenness:
        betweenness[node] /= 2.0
    if normalised and n > 2:
        scale = 2.0 / ((n - 1) * (n - 2))
        for node in betweenness:
            betweenness[node] *= scale
    return betweenness


def closeness_centrality(
    graph: WeightedGraph, use_weights: bool = False
) -> dict[NodeKey, float]:
    """Closeness with the Wasserman-Faust component correction.

    closeness(u) = ((r-1)/(n-1)) * (r-1)/sum_d, where r is the size of
    u's reachable set — the networkx convention, so disconnected graphs
    behave sensibly.
    """
    nodes = list(graph.nodes())
    n = len(nodes)
    costs = _costs(graph, use_weights)
    closeness: dict[NodeKey, float] = {}
    for source in nodes:
        distance = _single_source_distances(source, costs, use_weights)
        reachable = len(distance)
        total = sum(distance.values())
        if total > 0 and n > 1:
            closeness[source] = ((reachable - 1) / (n - 1)) * ((reachable - 1) / total)
        else:
            closeness[source] = 0.0
    return closeness


def _single_source_distances(
    source: NodeKey,
    costs: dict[NodeKey, dict[NodeKey, float]],
    use_weights: bool,
) -> dict[NodeKey, float]:
    """BFS or Dijkstra distances from ``source`` (source included at 0)."""
    distance: dict[NodeKey, float] = {}
    if not use_weights:
        distance[source] = 0.0
        queue: deque[NodeKey] = deque([source])
        while queue:
            current = queue.popleft()
            for neighbour in costs[current]:
                if neighbour not in distance:
                    distance[neighbour] = distance[current] + 1.0
                    queue.append(neighbour)
        return distance
    counter = 0
    heap: list[tuple[float, int, NodeKey]] = [(0.0, counter, source)]
    while heap:
        dist, _, current = heapq.heappop(heap)
        if current in distance:
            continue
        distance[current] = dist
        for neighbour, cost in costs[current].items():
            if neighbour not in distance:
                counter += 1
                heapq.heappush(heap, (dist + cost, counter, neighbour))
    return distance


def pagerank(
    graph: WeightedGraph,
    damping: float = 0.85,
    max_iters: int = 200,
    tolerance: float = 1e-10,
) -> dict[NodeKey, float]:
    """Weighted PageRank by power iteration (undirected interpretation).

    Transition probability from u to v is w(u,v)/strength(u); dangling
    mass is redistributed uniformly.  Converges when the L1 change
    drops below ``tolerance``.
    """
    nodes = list(graph.nodes())
    n = len(nodes)
    if n == 0:
        return {}
    rank = {node: 1.0 / n for node in nodes}
    out_weight = {
        node: sum(
            weight
            for neighbour, weight in graph.neighbours(node).items()
        ) + graph.neighbours(node).get(node, 0.0)
        for node in nodes
    }
    for _ in range(max_iters):
        next_rank = {node: (1.0 - damping) / n for node in nodes}
        dangling = sum(rank[node] for node in nodes if out_weight[node] <= 0)
        for node in nodes:
            if out_weight[node] <= 0:
                continue
            share = damping * rank[node] / out_weight[node]
            for neighbour, weight in graph.neighbours(node).items():
                contribution = weight * share
                if neighbour == node:
                    contribution *= 2.0  # a loop keeps both weight "ends"
                next_rank[neighbour] += contribution
        if dangling > 0:
            spread = damping * dangling / n
            for node in nodes:
                next_rank[node] += spread
        change = sum(abs(next_rank[node] - rank[node]) for node in nodes)
        rank = next_rank
        if change < tolerance:
            break
    return rank
