"""Whole-network summaries combining the individual metrics."""

from __future__ import annotations

from dataclasses import dataclass

from ..graphdb import DirectedGraph, WeightedGraph
from .clustering_coeff import average_clustering
from .gini import gini


@dataclass(frozen=True)
class NetworkSummary:
    """Global descriptors of one trip network."""

    n_nodes: int
    n_edges: int
    total_weight: float
    mean_degree: float
    mean_strength: float
    average_clustering: float
    strength_gini: float
    n_components: int
    largest_component: int


def summarise(graph: WeightedGraph) -> NetworkSummary:
    """Compute the global descriptor set of an undirected trip graph."""
    nodes = list(graph.nodes())
    n = len(nodes)
    if n == 0:
        return NetworkSummary(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0, 0)
    strengths = [graph.strength(node) for node in nodes]
    degrees = [graph.degree(node) for node in nodes]
    components = graph.connected_components()
    return NetworkSummary(
        n_nodes=n,
        n_edges=graph.edge_count,
        total_weight=graph.total_weight,
        mean_degree=sum(degrees) / n,
        mean_strength=sum(strengths) / n,
        average_clustering=average_clustering(graph),
        strength_gini=gini(strengths),
        n_components=len(components),
        largest_component=len(components[0]) if components else 0,
    )


@dataclass(frozen=True)
class FlowSummary:
    """Directed-flow descriptors (loops, flux balance)."""

    n_nodes: int
    n_directed_edges: int
    n_self_loops: int
    total_trips: float
    max_abs_flux: float


def summarise_flow(graph: DirectedGraph) -> FlowSummary:
    """Compute directed-flow descriptors of a trip graph."""
    nodes = list(graph.nodes())
    loops = sum(1 for u, v, _ in graph.edges() if u == v)
    total = sum(weight for _, _, weight in graph.edges())
    max_flux = max((abs(graph.flux(node)) for node in nodes), default=0.0)
    return FlowSummary(
        n_nodes=len(nodes),
        n_directed_edges=graph.edge_count,
        n_self_loops=loops,
        total_trips=total,
        max_abs_flux=max_flux,
    )
