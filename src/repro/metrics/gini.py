"""Gini coefficient — the network-equity metric of [13], [24].

Applied to station strengths it answers "how unevenly is trip volume
spread over the network?": 0 is perfectly even, values towards 1 mean
a few stations dominate.
"""

from __future__ import annotations

from typing import Iterable


def gini(values: Iterable[float]) -> float:
    """Gini coefficient of a set of non-negative values.

    Uses the sorted-rank formula
    G = (2 * sum_i i*x_(i) / (n * sum x)) - (n + 1) / n.
    Returns 0.0 for empty input or an all-zero vector.
    """
    data = sorted(float(v) for v in values)
    if not data:
        return 0.0
    if any(value < 0 for value in data):
        raise ValueError("gini is defined for non-negative values")
    total = sum(data)
    if total == 0:
        return 0.0
    n = len(data)
    weighted = sum(rank * value for rank, value in enumerate(data, start=1))
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n
