"""The :class:`Stage` abstraction: one node of the pipeline DAG."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Protocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runner import PipelineRunner


class StageFn(Protocol):
    """A stage body: ``fn(runner, *input_values) -> value``."""

    def __call__(self, runner: "PipelineRunner", *inputs: Any) -> Any: ...


@dataclass(frozen=True)
class Stage:
    """One named unit of work in the pipeline DAG.

    Attributes
    ----------
    name:
        Unique stage name; also its handle in :meth:`PipelineRunner.stage`.
    inputs:
        Names of upstream stages whose values the body consumes, in the
        order the body expects them.
    fn:
        The body.  It receives the runner (for config and the slice
        mapper) followed by one positional argument per input stage.
    config_sections:
        :class:`~repro.config.PipelineConfig` attribute names this stage
        reads.  Only these feed the stage's fingerprint, so changing an
        unrelated section leaves the stage's cache entry warm.
    """

    name: str
    inputs: tuple[str, ...]
    fn: Callable[..., Any]
    config_sections: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a stage needs a non-empty name")
        if self.name in self.inputs:
            raise ValueError(f"stage {self.name!r} cannot input itself")
