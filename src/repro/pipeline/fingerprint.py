"""Content-addressed fingerprints for pipeline stages.

A stage's cache key is a SHA-256 digest chaining together everything
that can change its output: the dataset digest (for root stages), the
configuration sections the stage actually reads, and the keys of its
parent stages.  Changing the selection thresholds therefore invalidates
``selection`` and everything downstream of it while leaving the
``candidates`` stage warm — the granularity the sweep runner relies on.
"""

from __future__ import annotations

import dataclasses
import hashlib
from datetime import datetime
from pathlib import Path
from typing import Any, Iterable

from ..data import MobyDataset

#: Slice fan-outs of the temporal stages (kept in step with
#: ``SelectedNetwork.day_slice_buckets`` / ``hour_slice_buckets``).
SLICE_COUNTS = {"day": 7, "hour": 24}


def _token(value: Any) -> str:
    """A deterministic, order-independent string form of ``value``."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: _token(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        name = type(value).__name__
        return f"{name}({','.join(f'{k}={v}' for k, v in sorted(fields.items()))})"
    if isinstance(value, dict):
        items = ",".join(
            f"{_token(k)}:{_token(v)}" for k, v in sorted(value.items(), key=repr)
        )
        return f"{{{items}}}"
    if isinstance(value, (list, tuple)):
        return f"[{','.join(_token(v) for v in value)}]"
    if isinstance(value, (set, frozenset)):
        return f"{{{','.join(sorted(_token(v) for v in value))}}}"
    if isinstance(value, Path):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    return repr(value)


def fingerprint(*parts: Any) -> str:
    """SHA-256 hex digest of the tokenised ``parts``."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(_token(part).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def config_digest(config: Any) -> str:
    """Fingerprint of one configuration object (any dataclass)."""
    return fingerprint(config)


def location_token(location: Any) -> bytes:
    """The canonical digest token of one location record."""
    return (
        f"L|{location.location_id}|{location.lat!r}|{location.lon!r}"
        f"|{location.is_station}|{location.name}"
    ).encode("utf-8")


def rental_token(rental: Any) -> bytes:
    """The canonical digest token of one rental record."""
    return (
        f"R|{rental.rental_id}|{rental.bike_id}|{rental.started_at}"
        f"|{rental.ended_at}|{rental.rental_location_id}"
        f"|{rental.return_location_id}"
    ).encode("utf-8")


def dataset_digest(dataset: MobyDataset) -> str:
    """Digest of a dataset's full record content (id order).

    Two datasets with identical rows — whether generated, loaded from
    CSV, or round-tripped — share a digest, so cache entries survive
    serialisation boundaries.
    """
    digest = hashlib.sha256()
    for location in dataset.locations():
        digest.update(location_token(location))
    for rental in dataset.rentals():
        digest.update(rental_token(rental))
    return digest.hexdigest()


def locations_digest(dataset: MobyDataset) -> str:
    """Digest of a dataset's location records alone (id order).

    Appends add rentals, never locations, so this is the stable content
    identity the clustering and station-assignment sub-caches key on:
    it survives every append while still tracking real location edits.
    """
    digest = hashlib.sha256()
    for location in dataset.locations():
        digest.update(location_token(location))
    return digest.hexdigest()


def rentals_digest(rentals: Iterable[Any]) -> str:
    """Digest of an ordered run of rental records (an append chunk)."""
    digest = hashlib.sha256()
    for rental in rentals:
        digest.update(rental_token(rental))
    return digest.hexdigest()


def chain_digest(parent: str, chunk: str) -> str:
    """One link of a rolling digest chain: ``H(parent || chunk)``.

    Appending a chunk to a dataset (or to one temporal slice of it)
    advances its digest in O(chunk) — the stored log is never re-read —
    while still committing to the full history: two datasets share a
    chain digest only if they were built by the same sequence of
    appends over the same base content.
    """
    digest = hashlib.sha256()
    digest.update(parent.encode("ascii"))
    digest.update(b"|")
    digest.update(chunk.encode("ascii"))
    return digest.hexdigest()


def slice_index(started_at: datetime, kind: str) -> int:
    """The temporal slice a trip starting at ``started_at`` falls in."""
    if kind == "day":
        return started_at.weekday()
    if kind == "hour":
        return started_at.hour
    raise ValueError(f"unknown slice kind {kind!r}; expected day or hour")


def slice_digests(rentals: Iterable[Any]) -> dict[str, list[str]]:
    """Per-slice content digests of an ordered run of rental records.

    One pass: every rental's token feeds the digest of the day slice
    and the hour slice its ``started_at`` falls in.  Returned as
    ``{"day": [7 hex digests], "hour": [24 hex digests]}`` — the
    delta-aware identity the temporal stages key their per-slice cache
    entries on.  An empty slice digests as SHA-256 of nothing, the same
    value for every empty slice everywhere.
    """
    digests = {
        kind: [hashlib.sha256() for _ in range(count)]
        for kind, count in SLICE_COUNTS.items()
    }
    for rental in rentals:
        token = rental_token(rental)
        digests["day"][rental.started_at.weekday()].update(token)
        digests["hour"][rental.started_at.hour].update(token)
    return {
        kind: [digest.hexdigest() for digest in row]
        for kind, row in digests.items()
    }


def dataset_slice_digests(dataset: MobyDataset) -> dict[str, list[str]]:
    """:func:`slice_digests` over a dataset's rentals in id order.

    Reads the raw rows directly — the token strings are identical to
    the record-based ones, without materialising a record per rental —
    so the no-lineage fallback of the incremental runner stays cheap.
    """
    digests = {
        kind: [hashlib.sha256() for _ in range(count)]
        for kind, count in SLICE_COUNTS.items()
    }
    for row in dataset.rental_rows():
        token = (
            f"R|{row['rental_id']}|{row['bike_id']}|{row['started_at']}"
            f"|{row['ended_at']}|{row['rental_location_id']}"
            f"|{row['return_location_id']}"
        ).encode("utf-8")
        started_at = row["started_at"]
        digests["day"][started_at.weekday()].update(token)
        digests["hour"][started_at.hour].update(token)
    return {
        kind: [digest.hexdigest() for digest in row]
        for kind, row in digests.items()
    }
