"""Content-addressed fingerprints for pipeline stages.

A stage's cache key is a SHA-256 digest chaining together everything
that can change its output: the dataset digest (for root stages), the
configuration sections the stage actually reads, and the keys of its
parent stages.  Changing the selection thresholds therefore invalidates
``selection`` and everything downstream of it while leaving the
``candidates`` stage warm — the granularity the sweep runner relies on.
"""

from __future__ import annotations

import dataclasses
import hashlib
from pathlib import Path
from typing import Any

from ..data import MobyDataset


def _token(value: Any) -> str:
    """A deterministic, order-independent string form of ``value``."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: _token(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        name = type(value).__name__
        return f"{name}({','.join(f'{k}={v}' for k, v in sorted(fields.items()))})"
    if isinstance(value, dict):
        items = ",".join(
            f"{_token(k)}:{_token(v)}" for k, v in sorted(value.items(), key=repr)
        )
        return f"{{{items}}}"
    if isinstance(value, (list, tuple)):
        return f"[{','.join(_token(v) for v in value)}]"
    if isinstance(value, (set, frozenset)):
        return f"{{{','.join(sorted(_token(v) for v in value))}}}"
    if isinstance(value, Path):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    return repr(value)


def fingerprint(*parts: Any) -> str:
    """SHA-256 hex digest of the tokenised ``parts``."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(_token(part).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def config_digest(config: Any) -> str:
    """Fingerprint of one configuration object (any dataclass)."""
    return fingerprint(config)


def dataset_digest(dataset: MobyDataset) -> str:
    """Digest of a dataset's full record content (id order).

    Two datasets with identical rows — whether generated, loaded from
    CSV, or round-tripped — share a digest, so cache entries survive
    serialisation boundaries.
    """
    digest = hashlib.sha256()
    for location in dataset.locations():
        digest.update(
            (
                f"L|{location.location_id}|{location.lat!r}|{location.lon!r}"
                f"|{location.is_station}|{location.name}"
            ).encode("utf-8")
        )
    for rental in dataset.rentals():
        digest.update(
            (
                f"R|{rental.rental_id}|{rental.bike_id}|{rental.started_at}"
                f"|{rental.ended_at}|{rental.rental_location_id}"
                f"|{rental.return_location_id}"
            ).encode("utf-8")
        )
    return digest.hexdigest()
