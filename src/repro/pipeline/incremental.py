"""Delta-aware stage bodies: turn a rerun over an appended log into an update.

Append-mode datasets (:meth:`repro.service.datasets.DatasetStore.append`)
only ever add rental rows with ids above everything stored, so a rerun
over the appended dataset relates to the previous run by a pure *delta*:
the raw tables are the old tables plus a tail of new rentals.  This
module holds the exact merge algebra the incremental runner uses to
reuse the previous run's stage values:

* :func:`incremental_clean` classifies only the appended rentals against
  the previous run's location rule sets and splices the survivors into a
  copy of the previous cleaned dataset;
* :func:`merge_candidate_flow` adds the survivors' edges to a copy of
  the previous candidate flow (the HAC clustering is reused verbatim);
* :func:`merge_selected_network` appends the survivors' station OD trips
  to the previous network when the station roster and the nearest-
  station assignment are unchanged.

Every merge is *exact*: the merged value is equal — including iteration
order, which seeds Louvain — to what the cold body would compute over
the appended dataset, because appended ids sort after all stored ids and
every table and graph here iterates in insertion/pk order.  Each helper
returns ``None`` whenever its soundness guard fails, and the runner
falls back to the cold body; incremental mode is an optimisation, never
a semantics change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.candidates import CandidateNetwork
from ..core.graphs import SelectedNetwork, Station, TripOD
from ..data import MobyDataset, RentalRecord
from ..data.cleaning import (
    CleaningReport,
    CleaningRuleSets,
    RuleOutcome,
    classify_rentals,
)


@dataclass(frozen=True)
class CleanAux:
    """What the ``clean`` stage value carries beyond (dataset, report).

    ``rule_sets`` and ``final_location_ids`` let a *later* run classify
    appended rentals without re-running the geographic oracles;
    ``clean_locations_digest`` is the content identity of the cleaned
    location table that the HAC and nearest-station sub-caches key on;
    ``parent_digest``/``delta_survivors`` are set only when this value
    was itself produced incrementally, so the downstream stage bodies
    know which prefix value to merge the survivors into.
    """

    #: Location-level decisions of rules 1-3 over the raw table.
    rule_sets: CleaningRuleSets
    #: Location ids present in the cleaned dataset (after rule 6).
    final_location_ids: frozenset[int]
    #: Digest of the cleaned location table (id order).
    clean_locations_digest: str
    #: Chain digest of the parent dataset when built incrementally.
    parent_digest: str | None = None
    #: Appended rentals that survived cleaning (id order).
    delta_survivors: tuple[RentalRecord, ...] = ()


def incremental_clean(
    raw: MobyDataset,
    delta: Sequence[RentalRecord],
    prefix_value: tuple[MobyDataset, CleaningReport, CleanAux],
    parent_digest: str,
) -> tuple[MobyDataset, CleaningReport, CleanAux] | None:
    """The clean-stage value for ``raw`` = parent dataset + ``delta``.

    Exactness argument: the location table is untouched by appends, so
    the rule-1/2/3 doomed sets and the rule-5 surviving domain are the
    parent's; rules 1-5 judge each rental row independently, so
    classifying only the delta reproduces the sequential passes.  Rule 6
    keeps a location iff some surviving rental references it — the guard
    below ensures every delta survivor references locations the parent
    already kept, so the rule-6 kept set (and with it the cleaned
    location table) is exactly the parent's.  Splicing the survivors
    into a copy of the parent's cleaned dataset then equals cleaning the
    appended dataset cold: both tables iterate in pk order and every
    delta id sorts after every parent id.

    Returns ``None`` when a guard fails (location table changed shape,
    non-monotonic ids, or a survivor resurrects a rule-6-dropped
    location); the caller must fall back to the cold body.
    """
    prefix_cleaned, prefix_report, prefix_aux = prefix_value
    # Appends never touch locations; a different location count means
    # this is not actually parent + delta, whatever the caller thinks.
    if raw.n_locations != prefix_report.before.n_locations:
        return None
    if len(delta) != raw.n_rentals - prefix_report.before.n_rentals:
        return None
    # Id monotonicity: every delta id must exceed every parent id, or
    # the merged pk order would not be prefix-then-delta.
    prefix_cleaned_max = prefix_cleaned.max_rental_id()
    if delta and prefix_cleaned_max is not None:
        if min(rental.rental_id for rental in delta) <= prefix_cleaned_max:
            return None

    survivors, counts = classify_rentals(delta, prefix_aux.rule_sets)
    final = prefix_aux.final_location_ids
    for rental in survivors:
        if (
            rental.rental_location_id not in final
            or rental.return_location_id not in final
        ):
            # The survivor references a location rule 6 dropped in the
            # parent run — the appended dataset would resurrect it, so
            # the cleaned location table genuinely changes.  Cold path.
            return None

    merged = prefix_cleaned.copy()
    for rental in survivors:
        merged.add_rental(rental)

    outcomes = []
    for prior in prefix_report.outcomes:
        extra = counts.get(prior.rule, 0)
        outcomes.append(
            RuleOutcome(
                rule=prior.rule,
                locations_removed=prior.locations_removed,
                rentals_removed=prior.rentals_removed + extra,
            )
        )
    report = CleaningReport(
        before=raw.summary(),
        after=merged.summary(),
        outcomes=outcomes,
    )
    aux = CleanAux(
        rule_sets=prefix_aux.rule_sets,
        final_location_ids=prefix_aux.final_location_ids,
        clean_locations_digest=prefix_aux.clean_locations_digest,
        parent_digest=parent_digest,
        delta_survivors=tuple(survivors),
    )
    return merged, report, aux


def merge_candidate_flow(
    prefix: CandidateNetwork, survivors: Sequence[RentalRecord]
) -> CandidateNetwork:
    """The candidate network for parent + survivors, built by merging.

    The clustering, group assignment, station points and centroids are
    pure functions of the cleaned *location* table, which incremental
    cleaning guarantees unchanged — they are shared with the prefix
    value.  The flow graph accumulates edge weights commutatively and
    the cold build inserts trips in pk order, so copying the prefix
    flow and appending the survivors' edges reproduces it exactly.
    """
    flow = prefix.flow.copy()
    location_to_group = prefix.location_to_group
    for rental in survivors:
        flow.add_edge(
            location_to_group[rental.rental_location_id],
            location_to_group[rental.return_location_id],
            1.0,
        )
    return CandidateNetwork(
        clustering=prefix.clustering,
        flow=flow,
        location_to_group=location_to_group,
        station_points=prefix.station_points,
        cluster_centroids=prefix.cluster_centroids,
        n_trips=prefix.n_trips + len(survivors),
    )


def merge_selected_network(
    prefix: SelectedNetwork,
    stations: dict[int, Station],
    location_to_station: dict[int, int],
    survivors: Sequence[RentalRecord],
) -> SelectedNetwork | None:
    """The selected network for parent + survivors, built by merging.

    Valid only when the freshly derived station roster and nearest-
    station assignment equal the prefix run's — appends shift candidate
    degrees, so Algorithm 1 *can* select a different station set, in
    which case every trip must be re-projected and we return ``None``.
    When they match, the cold trip list is the prefix trips followed by
    the survivors' projections (pk order), appended here verbatim.
    """
    if prefix.stations != stations:
        return None
    if prefix.location_to_station != location_to_station:
        return None
    trips = list(prefix.trips)
    for rental in survivors:
        trips.append(
            TripOD(
                origin=location_to_station[rental.rental_location_id],
                destination=location_to_station[rental.return_location_id],
                day_of_week=rental.started_at.weekday(),
                hour_of_day=rental.started_at.hour,
            )
        )
    return SelectedNetwork(
        stations=stations,
        location_to_station=location_to_station,
        trips=trips,
    )


__all__ = [
    "CleanAux",
    "incremental_clean",
    "merge_candidate_flow",
    "merge_selected_network",
]
