"""Two-level stage cache: in-memory LRU over an optional byte store.

Values are keyed by the content-addressed fingerprints from
:mod:`repro.pipeline.fingerprint`.  The memory tier is a bounded
:class:`~repro.store.ObjectLRU` of live values shared by every runner
holding the same :class:`StageCache`; the durable tier is a
:class:`~repro.store.Namespace` of pickled entries (one ``<key>.pkl``
per stage, written atomically) that makes warm runs survive process
boundaries — a second ``repro run --cache-dir`` skips every stage.
Per-key locks serialise concurrent computation of the same stage so a
sweep never does the shared work twice.

All storage *policy* — atomic publish, byte/entry quotas, LRU-by-access
eviction whose order survives restarts (file mtimes), backend layout
(flat or digest-sharded) — lives in :mod:`repro.store`; this class only
translates stage values to and from pickle bytes.
"""

from __future__ import annotations

import pickle
import re
import threading
from pathlib import Path
from typing import Any

from ..store import (
    DirBackend,
    Namespace,
    ObjectLRU,
    ShardedDirBackend,
    make_backend,
)

#: Sentinel returned by :meth:`StageCache.get` on a miss (``None`` is a
#: legitimate cached value).
MISS = object()

#: Stage keys are hex fingerprints in production; tests and benches use
#: short labels, so the canonical encoding is name-like, path-safe.
_STAGE_KEY = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")

#: Access-stamp debounce for bounded stage namespaces: a hit-heavy
#: sweep stamps each warm stage once per window instead of once per
#: hit.  Pending stamps flush on eviction scans and :meth:`close`.
STAGE_TOUCH_WINDOW_S = 5.0


def stage_namespace(
    backend: Any,
    *,
    max_bytes: int | None = None,
    max_entries: int | None = None,
    touch_window_s: float = STAGE_TOUCH_WINDOW_S,
) -> Namespace:
    """The canonical stage-cache namespace policy over ``backend``."""
    return Namespace(
        backend,
        key_pattern=_STAGE_KEY,
        key_label="stage key",
        suffix=".pkl",
        max_bytes=max_bytes,
        max_entries=max_entries,
        touch_window_s=touch_window_s,
    )


class StageCache:
    """LRU memory tier over an optional durable pickle namespace.

    Parameters
    ----------
    cache_dir:
        Legacy convenience: a flat directory backing the durable tier
        (equivalent to passing a ``dir``-backend namespace rooted
        there).  ``None`` with no ``namespace`` means memory-tier only.
    memory_slots:
        Bound on live values retained in process (0 disables the tier).
    max_bytes / max_entries:
        Durable-tier quotas; least-recently-used entries are evicted
        after every store until both hold (see
        :meth:`repro.store.Namespace.evict`).
    namespace:
        A prebuilt durable-tier namespace (e.g. from a shared
        :class:`repro.store.Store`); overrides ``cache_dir``.
    """

    def __init__(
        self,
        cache_dir: str | Path | None = None,
        memory_slots: int = 128,
        *,
        max_bytes: int | None = None,
        max_entries: int | None = None,
        namespace: Namespace | None = None,
    ) -> None:
        if memory_slots < 0:
            raise ValueError("memory_slots must be non-negative")
        if namespace is None and cache_dir is not None:
            namespace = stage_namespace(
                DirBackend(cache_dir), max_bytes=max_bytes, max_entries=max_entries
            )
        elif namespace is None:
            # Quota validation must not silently vanish with the tier.
            if max_bytes is not None and max_bytes < 0:
                raise ValueError("max_bytes must be non-negative")
            if max_entries is not None and max_entries < 1:
                raise ValueError("max_entries must be positive")
        self.namespace = namespace
        self.memory_slots = memory_slots
        self._memory = ObjectLRU(memory_slots)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self._mutex = threading.Lock()
        self._key_locks: dict[str, threading.Lock] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def cache_dir(self) -> Path | None:
        """Root of the durable tier when it is directory-backed."""
        if self.namespace is not None and isinstance(
            self.namespace.backend, DirBackend
        ):
            return self.namespace.backend.root
        return None

    @property
    def max_bytes(self) -> int | None:
        return self.namespace.max_bytes if self.namespace is not None else None

    @property
    def max_entries(self) -> int | None:
        return self.namespace.max_entries if self.namespace is not None else None

    @property
    def evictions(self) -> int:
        """Durable-tier evictions (the namespace's counter)."""
        return self.namespace.evictions if self.namespace is not None else 0

    def spec(self) -> tuple[str, str] | None:
        """(backend kind, root) a worker process can rebuild this cache from.

        ``None`` when the durable tier is absent or memory-backed —
        those cannot carry values across a process boundary.
        """
        backend = self.namespace.backend if self.namespace is not None else None
        if not isinstance(backend, DirBackend):
            return None
        kind = "sharded" if isinstance(backend, ShardedDirBackend) else "dir"
        return (kind, str(backend.root))

    @classmethod
    def from_spec(cls, spec: tuple[str, str] | None) -> "StageCache":
        """Rebuild an (unbounded) cache over the directory ``spec`` names."""
        if spec is None:
            return cls()
        kind, root = spec
        return cls(namespace=stage_namespace(make_backend(kind, root)))

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------

    def get(self, key: str) -> Any:
        """The cached value for ``key``, or :data:`MISS`."""
        value = self._memory.get(key, MISS)
        if value is not MISS:
            with self._mutex:
                self.hits += 1
            return value
        value = self._read_durable(key)
        if value is MISS:
            with self._mutex:
                self.misses += 1
            return MISS
        with self._mutex:
            self.hits += 1
        self._memory.put(key, value)
        return value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` in both tiers."""
        with self._mutex:
            self.stores += 1
        self._memory.put(key, value)
        if self.namespace is not None:
            try:
                self.namespace.put(
                    key, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
                )
            except OSError:
                pass  # a full/readonly disk degrades to a memory cache

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not MISS

    def clear_memory(self) -> None:
        """Drop the memory tier (the durable tier is untouched)."""
        self._memory.clear()

    def close(self) -> None:
        """Flush coalesced durable-tier access stamps (stays usable)."""
        if self.namespace is not None:
            self.namespace.flush_touches()

    def lock(self, key: str):
        """Serialise concurrent computation of the same key."""
        if self.namespace is not None:
            return self.namespace.lock(key)
        with self._mutex:
            return self._key_locks.setdefault(key, threading.Lock())

    def key_lock(self, key: str):
        """A dedicated in-process lock for ``key`` (never striped).

        Namespace locks are striped, so nesting a second :meth:`lock`
        inside a held one can deadlock when both keys hash to the same
        stripe.  Sub-stage entries (HAC, assignment) — which are always
        computed *inside* a held stage lock — serialise through this
        per-key registry instead.
        """
        with self._mutex:
            return self._key_locks.setdefault(key, threading.Lock())

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _read_durable(self, key: str) -> Any:
        if self.namespace is None:
            return MISS
        try:
            data = self.namespace.get(key)
        except OSError:
            return MISS
        if data is None:
            return MISS
        try:
            return pickle.loads(data)
        except Exception:
            # Any unreadable entry — truncated write, version-skewed
            # pickle (ModuleNotFoundError/TypeError/...), plain garbage
            # — is a miss: recomputing is always safe.
            return MISS
