"""Two-level stage cache: in-memory LRU over an optional disk store.

Values are keyed by the content-addressed fingerprints from
:mod:`repro.pipeline.fingerprint`.  The memory tier is a bounded LRU
shared by every runner holding the same :class:`StageCache`; the disk
tier (one pickle per key, written atomically) makes warm runs survive
process boundaries — a second ``repro run --cache-dir`` skips every
stage.  Per-key locks serialise concurrent computation of the same
stage so a sweep never does the shared work twice.

Long-lived cache directories (a sweep server, ``repro serve``) can
bound the disk tier with ``max_bytes``/``max_entries``: after every
store the least-recently-used pickles are evicted until both limits
hold again.  Recency is tracked through file mtimes — refreshed on
every disk hit — so eviction order survives process restarts.
"""

from __future__ import annotations

import os
import pickle
import threading
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

#: Sentinel returned by :meth:`StageCache.get` on a miss (``None`` is a
#: legitimate cached value).
MISS = object()


class StageCache:
    """LRU memory cache with an optional on-disk pickle tier."""

    def __init__(
        self,
        cache_dir: str | Path | None = None,
        memory_slots: int = 64,
        *,
        max_bytes: int | None = None,
        max_entries: int | None = None,
    ) -> None:
        if memory_slots < 0:
            raise ValueError("memory_slots must be non-negative")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.memory_slots = memory_slots
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self._memory: OrderedDict[str, Any] = OrderedDict()
        self._mutex = threading.Lock()
        self._key_locks: dict[str, threading.Lock] = {}
        self._evict_mutex = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------

    def get(self, key: str) -> Any:
        """The cached value for ``key``, or :data:`MISS`."""
        with self._mutex:
            if key in self._memory:
                self._memory.move_to_end(key)
                self.hits += 1
                return self._memory[key]
        value = self._read_disk(key)
        if value is MISS:
            with self._mutex:
                self.misses += 1
            return MISS
        with self._mutex:
            self.hits += 1
            self._remember(key, value)
        return value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` in both tiers."""
        with self._mutex:
            self.stores += 1
            self._remember(key, value)
        self._write_disk(key, value)

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not MISS

    def clear_memory(self) -> None:
        """Drop the memory tier (the disk tier is untouched)."""
        with self._mutex:
            self._memory.clear()

    @contextmanager
    def lock(self, key: str) -> Iterator[None]:
        """Serialise concurrent computation of the same key."""
        with self._mutex:
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        with key_lock:
            yield

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _remember(self, key: str, value: Any) -> None:
        if self.memory_slots == 0:
            return
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_slots:
            self._memory.popitem(last=False)

    def _path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{key}.pkl"

    def _read_disk(self, key: str) -> Any:
        if self.cache_dir is None:
            return MISS
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except Exception:
            # Any unreadable entry — truncated write, version-skewed
            # pickle (ModuleNotFoundError/TypeError/...), plain garbage
            # — is a miss: recomputing is always safe.
            return MISS
        try:
            os.utime(path)  # refresh LRU recency
        except OSError:
            pass
        return value

    def _write_disk(self, key: str, value: Any) -> None:
        if self.cache_dir is None:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        # Atomic publish: a concurrent reader sees the old file or the
        # complete new one, never a partial pickle.
        tmp = path.with_suffix(f".tmp.{os.getpid()}.{threading.get_ident()}")
        try:
            with open(tmp, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)
            return
        self._evict_disk(keep=path.name)

    def _evict_disk(self, keep: str) -> None:
        """Drop LRU pickles until the disk tier fits the size limits.

        ``keep`` names the just-written entry, which is never evicted —
        even a degenerate ``max_bytes=0`` keeps the latest value until
        the next store replaces it.  Best-effort by design: entries
        deleted under a concurrent reader simply read as misses.
        """
        if self.max_bytes is None and self.max_entries is None:
            return
        with self._evict_mutex:
            try:
                entries = []
                for path in self.cache_dir.glob("*.pkl"):
                    stat = path.stat()
                    entries.append((stat.st_mtime, path, stat.st_size))
            except OSError:
                return
            entries.sort()  # oldest mtime first
            total_bytes = sum(size for _, _, size in entries)
            n_entries = len(entries)
            for _, path, size in entries:
                over_bytes = (
                    self.max_bytes is not None and total_bytes > self.max_bytes
                )
                over_entries = (
                    self.max_entries is not None and n_entries > self.max_entries
                )
                if not (over_bytes or over_entries):
                    break
                if path.name == keep:
                    continue
                try:
                    path.unlink()
                except OSError:
                    continue
                total_bytes -= size
                n_entries -= 1
                self.evictions += 1
