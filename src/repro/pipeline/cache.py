"""Two-level stage cache: in-memory LRU over an optional disk store.

Values are keyed by the content-addressed fingerprints from
:mod:`repro.pipeline.fingerprint`.  The memory tier is a bounded LRU
shared by every runner holding the same :class:`StageCache`; the disk
tier (one pickle per key, written atomically) makes warm runs survive
process boundaries — a second ``repro run --cache-dir`` skips every
stage.  Per-key locks serialise concurrent computation of the same
stage so a sweep never does the shared work twice.
"""

from __future__ import annotations

import os
import pickle
import threading
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

#: Sentinel returned by :meth:`StageCache.get` on a miss (``None`` is a
#: legitimate cached value).
MISS = object()


class StageCache:
    """LRU memory cache with an optional on-disk pickle tier."""

    def __init__(
        self,
        cache_dir: str | Path | None = None,
        memory_slots: int = 64,
    ) -> None:
        if memory_slots < 0:
            raise ValueError("memory_slots must be non-negative")
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.memory_slots = memory_slots
        self._memory: OrderedDict[str, Any] = OrderedDict()
        self._mutex = threading.Lock()
        self._key_locks: dict[str, threading.Lock] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------

    def get(self, key: str) -> Any:
        """The cached value for ``key``, or :data:`MISS`."""
        with self._mutex:
            if key in self._memory:
                self._memory.move_to_end(key)
                self.hits += 1
                return self._memory[key]
        value = self._read_disk(key)
        if value is MISS:
            with self._mutex:
                self.misses += 1
            return MISS
        with self._mutex:
            self.hits += 1
            self._remember(key, value)
        return value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` in both tiers."""
        with self._mutex:
            self.stores += 1
            self._remember(key, value)
        self._write_disk(key, value)

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not MISS

    def clear_memory(self) -> None:
        """Drop the memory tier (the disk tier is untouched)."""
        with self._mutex:
            self._memory.clear()

    @contextmanager
    def lock(self, key: str) -> Iterator[None]:
        """Serialise concurrent computation of the same key."""
        with self._mutex:
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        with key_lock:
            yield

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _remember(self, key: str, value: Any) -> None:
        if self.memory_slots == 0:
            return
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_slots:
            self._memory.popitem(last=False)

    def _path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{key}.pkl"

    def _read_disk(self, key: str) -> Any:
        if self.cache_dir is None:
            return MISS
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except Exception:
            # Any unreadable entry — truncated write, version-skewed
            # pickle (ModuleNotFoundError/TypeError/...), plain garbage
            # — is a miss: recomputing is always safe.
            return MISS

    def _write_disk(self, key: str, value: Any) -> None:
        if self.cache_dir is None:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        # Atomic publish: a concurrent reader sees the old file or the
        # complete new one, never a partial pickle.
        tmp = path.with_suffix(f".tmp.{os.getpid()}.{threading.get_ident()}")
        try:
            with open(tmp, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)
