"""The staged pipeline runner and the multi-scenario sweep driver.

``PipelineRunner`` executes the expansion stage DAG declared in
:data:`EXPANSION_STAGES`.  Each stage value is looked up in a
:class:`~repro.pipeline.cache.StageCache` under its content-addressed
fingerprint before the body runs, and execution counts are kept per
stage so tests (and benches) can assert that a warm run recomputes
nothing.  With ``jobs > 1`` the independent community stages run
concurrently and the temporal stages fan their per-slice aggregation
out over the same worker budget.

**Incremental mode.**  When the runner is handed the ``lineage`` of an
append-mode dataset (see :meth:`repro.service.datasets.DatasetStore.
lineage`) and the stage cache still holds the previous run over the
parent dataset, the stage bodies switch from recompute to *merge*: the
appended rentals are classified against the previous run's cleaning
decisions, their edges and trips are spliced onto the previous graph
values, and the temporal stages re-aggregate only the slices whose
content digest moved (untouched slices come back warm from per-slice
cache entries).  Every merge is guarded by the exactness conditions in
:mod:`repro.pipeline.incremental` and falls back to the cold body when
one fails, so results are byte-identical either way.
"""

from __future__ import annotations

import hashlib
import itertools
import shutil
import tempfile
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..community.louvain import louvain
from ..community.temporal import (
    aggregate_slice,
    detect_temporal_communities_from_aggregates,
)
from ..config import PAPER_CONFIG, PipelineConfig
from ..core.candidates import condense_locations, project_candidate_flow
from ..core.graphs import (
    SelectedNetwork,
    assign_locations_to_stations,
    build_station_set,
    project_trip,
)
from ..core.results import ExpansionResult
from ..core.selection import select_stations
from ..data import MobyDataset
from ..data.cleaning import clean_dataset_with_rules
from ..exceptions import PipelineCancelledError, PipelineError
from ..perf.timer import NULL_TIMER, StageTimer
from .cache import MISS, StageCache
from .fingerprint import (
    SLICE_COUNTS,
    dataset_digest,
    dataset_slice_digests,
    fingerprint,
    locations_digest,
)
from .incremental import (
    CleanAux,
    incremental_clean,
    merge_candidate_flow,
    merge_selected_network,
)
from .stage import Stage

N_DAY_SLICES = 7
N_HOUR_SLICES = 24

#: Bump when a stage's semantics change: old cache entries become
#: unreachable instead of silently stale.  (2: the ``clean`` stage value
#: grew a :class:`~repro.pipeline.incremental.CleanAux` third element.)
CACHE_SCHEMA_VERSION = 2

_EXECUTOR_KINDS = ("thread", "process")


# ---------------------------------------------------------------------------
# Stage bodies (module-level so process pools can pickle them)
# ---------------------------------------------------------------------------


def _stage_clean(runner: "PipelineRunner") -> tuple:
    parent = runner.lineage_parent()
    if parent is not None:
        parent_digest, parent_max = parent
        prefix = runner.prefix_value("clean", parent_digest)
        if prefix is not MISS:
            delta = runner.raw.rentals_after(parent_max)
            value = incremental_clean(runner.raw, delta, prefix, parent_digest)
            if value is not None:
                runner.note_incremental("clean")
                return value
    cleaned, report, rules = clean_dataset_with_rules(runner.raw)
    aux = CleanAux(
        rule_sets=rules,
        final_location_ids=frozenset(
            row["location_id"] for row in cleaned.location_rows()
        ),
        clean_locations_digest=locations_digest(cleaned),
    )
    return cleaned, report, aux


def _stage_candidates(runner: "PipelineRunner", clean: tuple):
    cleaned, _, aux = clean
    if aux.parent_digest is not None:
        prefix = runner.prefix_value("candidates", aux.parent_digest)
        if prefix is not MISS:
            runner.note_incremental("candidates")
            return merge_candidate_flow(prefix, aux.delta_survivors)
    # The HAC condensation depends only on the cleaned location table,
    # so it is cached value-addressed — appends (and config changes
    # outside the clustering section) reuse it even when the trip
    # projection must rerun.
    hac_key = fingerprint(
        "hac",
        CACHE_SCHEMA_VERSION,
        runner.config.clustering,
        aux.clean_locations_digest,
    )
    clustering = runner.sub_cached(
        hac_key, lambda: condense_locations(cleaned, runner.config.clustering)
    )
    return project_candidate_flow(cleaned, clustering)


def _stage_selection(runner: "PipelineRunner", candidates):
    return select_stations(candidates, runner.config.selection)


def _stage_network(runner: "PipelineRunner", clean: tuple, candidates, selection):
    cleaned, _, aux = clean
    stations = build_station_set(cleaned, candidates, selection)
    # The nearest-station assignment depends only on the station roster
    # and the cleaned locations — value-addressed like the HAC above.
    assign_key = fingerprint(
        "assign", CACHE_SCHEMA_VERSION, stations, aux.clean_locations_digest
    )
    location_to_station = runner.sub_cached(
        assign_key, lambda: assign_locations_to_stations(cleaned, stations)
    )
    if aux.parent_digest is not None:
        prefix = runner.prefix_value("network", aux.parent_digest)
        if prefix is not MISS:
            merged = merge_selected_network(
                prefix, stations, location_to_station, aux.delta_survivors
            )
            if merged is not None:
                runner.note_incremental("network")
                return merged
    trips = [
        project_trip(row, location_to_station) for row in cleaned.rental_rows()
    ]
    return SelectedNetwork(
        stations=stations,
        location_to_station=location_to_station,
        trips=trips,
    )


def _stage_basic(runner: "PipelineRunner", network):
    return louvain(network.g_basic(), runner.config.community)


def _stage_day(runner: "PipelineRunner", network):
    return detect_temporal_communities_from_aggregates(
        runner.slice_aggregates("day", network), runner.config.temporal
    )


def _stage_hour(runner: "PipelineRunner", network):
    return detect_temporal_communities_from_aggregates(
        runner.slice_aggregates("hour", network), runner.config.temporal
    )


# ---------------------------------------------------------------------------
# Process-pool stage execution (module-level for picklability)
# ---------------------------------------------------------------------------

#: Per-worker runner, built once by the pool initializer so the raw
#: dataset is pickled to each worker exactly once.
_WORKER_RUNNER: "PipelineRunner | None" = None


def _process_worker_init(raw, config, stages, cache_spec, digest, lineage) -> None:
    global _WORKER_RUNNER
    _WORKER_RUNNER = PipelineRunner(
        raw,
        config,
        stages=stages,
        cache=StageCache.from_spec(cache_spec),
        jobs=1,
        raw_digest=digest,
        lineage=lineage,
    )


def _process_worker_stage(name: str) -> tuple[str, int, float]:
    """Compute one stage in the worker; the disk cache carries the value.

    Parent stage values arrive through the same on-disk
    :class:`StageCache` (the scheduler only submits a stage once its
    inputs are persisted), and the computed value is persisted for the
    parent and for sibling workers before the call returns.  The
    returned wall time is measured *inside* the worker, so parent-side
    timings exclude worker-slot queue wait.
    """
    runner = _WORKER_RUNNER
    assert runner is not None, "worker initializer did not run"
    start = time.perf_counter()
    runner.stage(name)
    return name, runner.executions.get(name, 0), time.perf_counter() - start


#: The expansion DAG (paper Section IV), in topological order.
EXPANSION_STAGES: tuple[Stage, ...] = (
    Stage("clean", (), _stage_clean),
    Stage("candidates", ("clean",), _stage_candidates, ("clustering",)),
    Stage("selection", ("candidates",), _stage_selection, ("selection",)),
    Stage("network", ("clean", "candidates", "selection"), _stage_network),
    Stage("basic", ("network",), _stage_basic, ("community",)),
    Stage("day", ("network",), _stage_day, ("temporal",)),
    Stage("hour", ("network",), _stage_hour, ("temporal",)),
)


class PipelineRunner:
    """Executes the expansion DAG with caching and parallel fan-out.

    Parameters
    ----------
    raw:
        The raw dataset the pipeline consumes.
    config:
        Stage configuration bundle (the paper's defaults).
    stages:
        The DAG to run; defaults to :data:`EXPANSION_STAGES`.
    cache:
        A shared :class:`StageCache` (e.g. across a sweep).  When
        omitted, a private cache is created from ``cache_dir``.
    cache_dir:
        Optional on-disk cache directory for cross-process warm runs.
    jobs:
        Worker budget.  ``1`` (default) runs everything serially;
        results are identical either way.
    executor:
        ``"thread"`` or ``"process"`` — backend for the temporal slice
        fan-out.  With ``"process"`` and ``jobs > 1`` the *stage* fan-out
        also moves to worker processes, with the on-disk
        :class:`StageCache` as the cross-process rendezvous (see
        :meth:`_run_dag_process`).
    lineage:
        Optional append-lineage document of the raw dataset (the
        ``lineage`` block of :meth:`repro.service.datasets.DatasetStore.
        meta`): its chain ``digest`` must equal ``raw_digest``, its
        ``history`` names the ancestor snapshots and its ``slices``
        carry the per-slice content digests.  When present and valid,
        stage bodies merge the appended delta onto the previous run's
        cached values instead of recomputing (see
        :mod:`repro.pipeline.incremental`); when absent, stale, or the
        cache no longer holds the previous run, the run is simply cold.
    timer:
        Optional :class:`~repro.perf.StageTimer`; every stage records a
        ``stage:<name>`` section (with a ``cached`` flag) and the run's
        report lands on :attr:`ExpansionResult.timings`.
    cancel:
        Optional zero-argument callable polled at every stage boundary
        (before a stage body runs, and before new stages are scheduled
        on a worker pool).  Returning ``True`` aborts the run with
        :class:`~repro.exceptions.PipelineCancelledError`.  Stage
        bodies are never interrupted mid-flight, so everything already
        computed is cached consistently and a resubmitted run resumes
        from those warm stages.
    stage_observer:
        Optional ``(stage_name, wall_seconds, cached)`` callback fired
        as each stage resolves — the live feed behind the
        ``repro_stage_seconds`` histogram (:mod:`repro.obs`), streaming
        mid-run instead of waiting for the end-of-run report.  Observer
        errors are deliberately not caught: observability hooks are
        wired by the service layer, not user code.
    """

    def __init__(
        self,
        raw: MobyDataset,
        config: PipelineConfig = PAPER_CONFIG,
        *,
        stages: Sequence[Stage] = EXPANSION_STAGES,
        cache: StageCache | None = None,
        cache_dir: str | Path | None = None,
        jobs: int = 1,
        executor: str = "thread",
        raw_digest: str | None = None,
        lineage: Mapping[str, Any] | None = None,
        timer: "StageTimer | None" = None,
        cancel: Callable[[], bool] | None = None,
        stage_observer: Callable[[str, float, bool], None] | None = None,
    ) -> None:
        if jobs < 1:
            raise PipelineError("jobs must be at least 1")
        if executor not in _EXECUTOR_KINDS:
            raise PipelineError(
                f"unknown executor {executor!r}; expected one of {_EXECUTOR_KINDS}"
            )
        self.raw = raw
        self.config = config
        self.stages: dict[str, Stage] = {}
        for stage in stages:
            if stage.name in self.stages:
                raise PipelineError(f"duplicate stage name {stage.name!r}")
            self.stages[stage.name] = stage
        for stage in stages:
            for dep in stage.inputs:
                if dep not in self.stages:
                    raise PipelineError(
                        f"stage {stage.name!r} inputs unknown stage {dep!r}"
                    )
        self.cache = cache if cache is not None else StageCache(cache_dir)
        self.jobs = jobs
        self.executor = executor
        self.timer = timer
        self.cancel = cancel
        self.stage_observer = stage_observer
        self.executions: dict[str, int] = {}
        self.lineage = dict(lineage) if lineage else None
        self._values: dict[str, Any] = {}
        self._keys: dict[tuple[str, str], str] = {}
        self._raw_digest = raw_digest
        self._lineage_parent: tuple[str, int] | None | str = "unresolved"
        self._slice_digests: dict[str, list[str]] | None = None
        self._assign_digest: str | None = None
        self._incremental_mutex = threading.Lock()
        self.incremental_stats: dict[str, Any] = {
            "stages_merged": [],
            "slices_reused": 0,
            "slices_recomputed": 0,
        }
        self._process_pool: ProcessPoolExecutor | None = None
        self._pool_mutex = threading.Lock()

    # ------------------------------------------------------------------
    # Fingerprints
    # ------------------------------------------------------------------

    @property
    def raw_digest(self) -> str:
        """Digest of the raw dataset (computed once, lazily)."""
        if self._raw_digest is None:
            self._raw_digest = dataset_digest(self.raw)
        return self._raw_digest

    def key(self, name: str) -> str:
        """Content-addressed cache key of stage ``name``.

        Root stages are keyed off the dataset digest; every other stage
        chains its parents' keys, so an upstream change invalidates the
        whole downstream cone and nothing else.
        """
        return self.key_for_root(name, self.raw_digest)

    def key_for_root(self, name: str, root_digest: str) -> str:
        """:meth:`key` with the dataset-digest root swapped out.

        An incremental run addresses the *previous* run's stage values
        by rebuilding their keys from the parent dataset's digest — the
        config part is this runner's own, which is exactly the
        constraint: only a previous run under the same config is a
        valid merge prefix.
        """
        memo = (name, root_digest)
        if memo not in self._keys:
            stage = self.stages[name]
            parents = [self.key_for_root(dep, root_digest) for dep in stage.inputs]
            sections = {
                section: getattr(self.config, section)
                for section in stage.config_sections
            }
            self._keys[memo] = fingerprint(
                "stage",
                CACHE_SCHEMA_VERSION,
                stage.name,
                sections,
                parents if parents else root_digest,
            )
        return self._keys[memo]

    # ------------------------------------------------------------------
    # Incremental (append-mode) machinery
    # ------------------------------------------------------------------

    def lineage_parent(self) -> tuple[str, int] | None:
        """(parent digest, parent max rental id) when lineage validates.

        The lineage must describe *this* dataset — its chain digest has
        to equal :attr:`raw_digest` — and carry at least one ancestor.
        Anything else (no lineage, stale lineage, a never-appended
        dataset) returns ``None`` and the runner stays cold.
        """
        if self._lineage_parent == "unresolved":
            self._lineage_parent = self._resolve_lineage_parent()
        return self._lineage_parent  # type: ignore[return-value]

    def _resolve_lineage_parent(self) -> tuple[str, int] | None:
        lineage = self.lineage
        if not lineage:
            return None
        if lineage.get("digest") != self.raw_digest:
            return None
        history = lineage.get("history") or []
        if not history:
            return None
        parent = history[-1]
        digest = parent.get("digest")
        max_rental_id = parent.get("max_rental_id")
        if not isinstance(digest, str) or not isinstance(max_rental_id, int):
            return None
        return digest, max_rental_id

    def prefix_value(self, name: str, parent_digest: str) -> Any:
        """The previous run's value of ``name``, or :data:`MISS`."""
        return self.cache.get(self.key_for_root(name, parent_digest))

    def note_incremental(self, name: str) -> None:
        """Record that stage ``name`` resolved by merging, not recompute."""
        with self._incremental_mutex:
            if name not in self.incremental_stats["stages_merged"]:
                self.incremental_stats["stages_merged"].append(name)

    def incremental_report(self) -> dict[str, Any]:
        """A JSON-safe snapshot of the run's incremental accounting."""
        with self._incremental_mutex:
            stats = {
                "stages_merged": sorted(
                    self.incremental_stats["stages_merged"]
                ),
                "slices_reused": self.incremental_stats["slices_reused"],
                "slices_recomputed": self.incremental_stats["slices_recomputed"],
            }
        stats["mode"] = (
            "incremental" if stats["stages_merged"] else "cold"
        )
        return stats

    def sub_cached(self, key: str, compute: Callable[[], Any]) -> Any:
        """A value-addressed sub-stage entry (HAC, assignment, slices).

        Same get/put discipline as :meth:`stage`, but keyed by the
        *content* the computation consumes rather than by DAG position —
        the entries survive appends that leave that content untouched.
        Serialised through :meth:`StageCache.key_lock` (a dedicated
        per-key lock) because this always runs inside a held — striped —
        stage lock.
        """
        with self.cache.key_lock(key):
            value = self.cache.get(key)
            if value is MISS:
                value = compute()
                self.cache.put(key, value)
        return value

    def slice_digest_rows(self) -> dict[str, list[str]]:
        """Per-slice content digests of the raw rentals, by slice kind.

        Served from the dataset's stored lineage when it matches this
        dataset (appends advance only the touched slices' chains, so
        untouched slices keep their digests — the whole point), computed
        in one pass over the raw rows otherwise.
        """
        with self._incremental_mutex:
            if self._slice_digests is None:
                rows: dict[str, list[str]] | None = None
                lineage = self.lineage
                if lineage and lineage.get("digest") == self.raw_digest:
                    slices = lineage.get("slices") or {}
                    candidate = {
                        kind: list(slices.get(kind) or [])
                        for kind in SLICE_COUNTS
                    }
                    if all(
                        len(candidate[kind]) == count
                        for kind, count in SLICE_COUNTS.items()
                    ):
                        rows = candidate
                if rows is None:
                    rows = dataset_slice_digests(self.raw)
                self._slice_digests = rows
            return self._slice_digests

    def assignment_digest(self, network: SelectedNetwork) -> str:
        """Digest of the nearest-station assignment (cheap, memoised).

        A temporal slice's OD bucket is a pure function of (that
        slice's raw rentals, this assignment): a rental survives
        cleaning iff both its references are assigned, and its bucket
        entry is the two assigned station ids.  Slice digest plus this
        digest therefore address the slice aggregate exactly.
        """
        with self._incremental_mutex:
            if self._assign_digest is None:
                payload = ",".join(
                    f"{location}:{station}"
                    for location, station in sorted(
                        network.location_to_station.items()
                    )
                )
                self._assign_digest = hashlib.sha256(
                    payload.encode("ascii")
                ).hexdigest()
            return self._assign_digest

    def slice_aggregates(self, kind: str, network: SelectedNetwork) -> list:
        """Per-slice aggregates of ``network``, warm slices served cached.

        Each slice's aggregate is cached under (slice content digest,
        assignment digest); an append touches only the slices its new
        trips start in, so an incremental rerun re-aggregates those and
        reads the rest back.  Missing slices are recomputed through
        :meth:`map`, preserving the cold path's fan-out.
        """
        buckets = (
            network.day_slice_buckets()
            if kind == "day"
            else network.hour_slice_buckets()
        )
        digests = self.slice_digest_rows()[kind]
        assign = self.assignment_digest(network)
        keys = [
            fingerprint(
                "slice", CACHE_SCHEMA_VERSION, kind, index, digests[index], assign
            )
            for index in range(len(buckets))
        ]
        aggregates: list[Any] = [None] * len(buckets)
        missing: list[int] = []
        for index, key in enumerate(keys):
            value = self.cache.get(key)
            if value is MISS:
                missing.append(index)
            else:
                aggregates[index] = value
        computed = self.map(
            aggregate_slice, [buckets[index] for index in missing]
        )
        for index, value in zip(missing, computed):
            self.cache.put(keys[index], value)
            aggregates[index] = value
        with self._incremental_mutex:
            self.incremental_stats["slices_reused"] += len(buckets) - len(missing)
            self.incremental_stats["slices_recomputed"] += len(missing)
        return aggregates

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def check_cancel(self) -> None:
        """Raise :class:`PipelineCancelledError` if cancellation was asked.

        Called between stages only — never inside a body — so the stage
        cache always holds complete values when the run unwinds.
        """
        if self.cancel is not None and self.cancel():
            raise PipelineCancelledError("pipeline run cancelled")

    def stage(self, name: str) -> Any:
        """The value of stage ``name`` (memo -> cache -> execute)."""
        if name in self._values:
            return self._values[name]
        self.check_cancel()
        stage = self.stages[name]
        inputs = [self.stage(dep) for dep in stage.inputs]
        key = self.key(name)
        timer = self.timer if self.timer is not None else NULL_TIMER
        start = time.perf_counter()
        with timer.section(f"stage:{name}"):
            with self.cache.lock(key):
                value = self.cache.get(key)
                cached = value is not MISS
                if not cached:
                    value = stage.fn(self, *inputs)
                    self.executions[name] = self.executions.get(name, 0) + 1
                    self.cache.put(key, value)
        timer.add(f"stage:{name}", 0.0, calls=0, cached=cached)
        if self.stage_observer is not None:
            self.stage_observer(name, time.perf_counter() - start, cached)
        self._values[name] = value
        return value

    def values(self) -> dict[str, Any]:
        """Every stage value, computing any that are still pending."""
        try:
            self._run_dag()
        finally:
            self.close()
        return dict(self._values)

    def run(self) -> ExpansionResult:
        """Run the full DAG and bundle the paper's result shape."""
        cleaned, report, _aux = self.stage("clean")
        if cleaned.n_rentals == 0:
            raise PipelineError("cleaning removed every rental — nothing to do")
        try:
            self._run_dag()
        finally:
            self.close()
        return ExpansionResult(
            cleaned=cleaned,
            cleaning_report=report,
            candidates=self._values["candidates"],
            selection=self._values["selection"],
            network=self._values["network"],
            basic=self._values["basic"],
            day=self._values["day"],
            hour=self._values["hour"],
            timings=(
                self.timer.report().to_dict() if self.timer is not None else None
            ),
        )

    def _topological_order(self) -> list[str]:
        order: list[str] = []
        seen: set[str] = set()

        def visit(name: str, trail: tuple[str, ...]) -> None:
            if name in seen:
                return
            if name in trail:
                raise PipelineError(f"stage cycle through {name!r}")
            for dep in self.stages[name].inputs:
                visit(dep, trail + (name,))
            seen.add(name)
            order.append(name)

        for name in self.stages:
            visit(name, ())
        return order

    def _run_dag(self) -> None:
        order = self._topological_order()
        if self.jobs == 1:
            for name in order:
                self.stage(name)
            return
        if self.executor == "process":
            self._run_dag_process(order)
            return
        computed = set(self._values)
        remaining = {
            name: set(self.stages[name].inputs) - computed
            for name in order
            if name not in computed
        }
        # Thread-backed stage fan-out: values are shared in-process and
        # the bodies drop to worker pools themselves.
        with ThreadPoolExecutor(max_workers=self.jobs) as pool:
            futures: dict[Any, str] = {}
            while remaining or futures:
                ready = [name for name, deps in remaining.items() if not deps]
                for name in ready:
                    del remaining[name]
                    futures[pool.submit(self.stage, name)] = name
                if not futures:
                    raise PipelineError("stage cycle in pipeline DAG")
                done, _ = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    finished = futures.pop(future)
                    future.result()  # re-raise stage errors
                    for deps in remaining.values():
                        deps.discard(finished)

    def _run_dag_process(self, order: list[str]) -> None:
        """Stage fan-out over worker processes.

        The on-disk :class:`StageCache` is the cross-process
        rendezvous: workers read their inputs from it and persist their
        outputs to it, and the parent loads every value back when its
        future completes.  When the runner's cache has no disk tier —
        or is size-bounded, where a concurrent run's LRU eviction could
        delete a stage pickle between the worker's write and the
        parent's read — a temporary eviction-exempt directory carries
        the rendezvous for this run only.  Stage bodies and the raw
        dataset must be picklable (the built-in
        :data:`EXPANSION_STAGES` are).
        """
        temp_dir: str | None = None
        if (
            self.cache.spec() is not None
            and self.cache.max_bytes is None
            and self.cache.max_entries is None
        ):
            rendezvous = self.cache
        else:
            temp_dir = tempfile.mkdtemp(prefix="repro-pipeline-cache-")
            rendezvous = StageCache(temp_dir)
        try:
            # Serve warm stages straight from the runner's own cache —
            # workers only ever see the rendezvous, so anything they
            # would otherwise recompute is loaded (and re-published)
            # here first.  This also covers stages already computed
            # in-parent (e.g. ``clean`` via run()'s sanity check).
            for name in order:
                if name not in self._values:
                    value = self.cache.get(self.key(name))
                    if value is not MISS:
                        self._values[name] = value
                        if self.timer is not None:
                            self.timer.add(f"stage:{name}", 0.0, cached=True)
                        if self.stage_observer is not None:
                            self.stage_observer(name, 0.0, True)
            for name, value in self._values.items():
                if name in self.stages:
                    key = self.key(name)
                    if rendezvous.get(key) is MISS:
                        rendezvous.put(key, value)
            computed = set(self._values)
            remaining = {
                name: set(self.stages[name].inputs) - computed
                for name in order
                if name not in computed
            }
            if not remaining:
                return  # fully warm; no worker pool needed
            timer = self.timer
            with ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_process_worker_init,
                initargs=(
                    self.raw,
                    self.config,
                    tuple(self.stages.values()),
                    rendezvous.spec(),
                    self.raw_digest,
                    self.lineage,
                ),
            ) as pool:
                futures: dict[Any, str] = {}
                while remaining or futures:
                    # Workers cannot see the parent's cancel flag, so the
                    # scheduling loop is the process executor's boundary:
                    # in-flight stages drain, no new ones are submitted.
                    self.check_cancel()
                    ready = [name for name, deps in remaining.items() if not deps]
                    for name in ready:
                        del remaining[name]
                        futures[pool.submit(_process_worker_stage, name)] = name
                    if not futures:
                        raise PipelineError("stage cycle in pipeline DAG")
                    done, _ = wait(futures, return_when=FIRST_COMPLETED)
                    for future in done:
                        finished = futures.pop(future)
                        _, executions, stage_wall = future.result()  # re-raise
                        if executions:
                            self.executions[finished] = (
                                self.executions.get(finished, 0) + executions
                            )
                        value = rendezvous.get(self.key(finished))
                        if value is MISS:
                            raise PipelineError(
                                f"stage {finished!r} missing from the "
                                "cross-process rendezvous after the worker "
                                "finished — the rendezvous disk is likely "
                                "full or was cleared externally"
                            )
                        self._values[finished] = value
                        if rendezvous is not self.cache:
                            self.cache.put(self.key(finished), value)
                        if timer is not None:
                            timer.add(
                                f"stage:{finished}",
                                stage_wall,
                                cached=executions == 0,
                            )
                        if self.stage_observer is not None:
                            self.stage_observer(
                                finished, stage_wall, executions == 0
                            )
                        for deps in remaining.values():
                            deps.discard(finished)
        finally:
            if temp_dir is not None:
                shutil.rmtree(temp_dir, ignore_errors=True)

    # ------------------------------------------------------------------
    # Intra-stage fan-out
    # ------------------------------------------------------------------

    def map(self, fn: Callable, items: Iterable) -> list:
        """Map ``fn`` over ``items`` on the configured worker budget.

        Results keep input order, so parallel output is identical to
        the serial path.  Used by the temporal stages to aggregate the
        7 day / 24 hour slices concurrently.  Concurrent process-backed
        fan-outs share one pool (see :meth:`close`); thread pools are
        cheap and made per call.
        """
        items = list(items)
        if self.jobs == 1 or len(items) <= 1:
            return [fn(item) for item in items]
        if self.executor == "process":
            return list(self._shared_process_pool().map(fn, items))
        with ThreadPoolExecutor(max_workers=self.jobs) as pool:
            return list(pool.map(fn, items))

    def _shared_process_pool(self) -> Executor:
        with self._pool_mutex:
            if self._process_pool is None:
                self._process_pool = ProcessPoolExecutor(max_workers=self.jobs)
            return self._process_pool

    def close(self) -> None:
        """Shut down the shared process pool and flush cache stamps."""
        with self._pool_mutex:
            pool, self._process_pool = self._process_pool, None
        if pool is not None:
            pool.shutdown()
        self.cache.close()  # debounced access stamps become durable

    def __enter__(self) -> "PipelineRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Multi-scenario sweeps
# ---------------------------------------------------------------------------


def config_grid(
    base: PipelineConfig, axes: Mapping[str, Sequence[Any]]
) -> list[tuple[dict[str, Any], PipelineConfig]]:
    """Cross product of dotted-path override axes.

    >>> from repro.config import PAPER_CONFIG
    >>> grid = config_grid(PAPER_CONFIG, {"temporal.coupling": [0.1, 0.2]})
    >>> [overrides["temporal.coupling"] for overrides, _ in grid]
    [0.1, 0.2]
    """
    if not axes:
        return [({}, base)]
    keys = list(axes)
    grid: list[tuple[dict[str, Any], PipelineConfig]] = []
    for combo in itertools.product(*(axes[key] for key in keys)):
        overrides = dict(zip(keys, combo))
        grid.append((overrides, base.derive(overrides)))
    return grid


def _sweep_one(args: tuple) -> ExpansionResult:
    raw, config, cache_spec, digest = args
    runner = PipelineRunner(
        raw, config, cache=StageCache.from_spec(cache_spec), raw_digest=digest
    )
    return runner.run()


def run_sweep(
    raw: MobyDataset,
    configs: Sequence[PipelineConfig],
    *,
    cache: StageCache | None = None,
    cache_dir: str | Path | None = None,
    jobs: int = 1,
    executor: str = "thread",
    cancel: Callable[[], bool] | None = None,
    stage_observer: Callable[[str, float, bool], None] | None = None,
) -> list[ExpansionResult]:
    """Run the pipeline once per config, sharing every common stage.

    All configs run over the same dataset and share one cache, so the
    stages a config does not change (typically ``clean`` and often
    ``candidates``/``network``) are computed once for the whole grid.
    Results come back in ``configs`` order.

    With ``executor="process"`` the workers can only share stage
    values through a disk cache; when neither ``cache_dir`` nor a
    disk-backed ``cache`` is given, a temporary directory carries the
    sharing for the duration of the sweep (the caller's in-memory
    cache cannot be warmed across process boundaries).

    ``cancel`` and ``stage_observer`` are threaded into every
    serial/thread-backed runner (the per-stage boundary checks and the
    per-stage metrics feed of :class:`PipelineRunner`); with the
    process executor ``cancel`` is only polled before the fan-out
    starts and stages resolved inside workers are not observed —
    worker processes cannot reach the parent's flag or registry.
    """
    if executor not in _EXECUTOR_KINDS:
        raise PipelineError(
            f"unknown executor {executor!r}; expected one of {_EXECUTOR_KINDS}"
        )
    if not configs:
        return []
    if cancel is not None and cancel():
        raise PipelineCancelledError("sweep cancelled before it started")
    digest = dataset_digest(raw)
    if executor == "process" and jobs > 1:
        cache_spec: tuple[str, str] | None = None
        if cache is not None:
            cache_spec = cache.spec()
        elif cache_dir is not None:
            cache_spec = ("dir", str(cache_dir))
        temp_dir = None
        if cache_spec is None:
            temp_dir = tempfile.mkdtemp(prefix="repro-sweep-cache-")
            cache_spec = ("dir", temp_dir)
        try:
            # Per-key locks don't reach across processes, so a cold
            # fan-out would recompute the shared stage prefix in every
            # worker.  Run the first config in this process to warm the
            # disk cache, then fan the rest out against it.
            first = _sweep_one((raw, configs[0], cache_spec, digest))
            tasks = [(raw, config, cache_spec, digest) for config in configs[1:]]
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                return [first, *pool.map(_sweep_one, tasks)]
        finally:
            if temp_dir is not None:
                shutil.rmtree(temp_dir, ignore_errors=True)

    shared = cache if cache is not None else StageCache(cache_dir)

    def one(config: PipelineConfig) -> ExpansionResult:
        return PipelineRunner(
            raw,
            config,
            cache=shared,
            raw_digest=digest,
            cancel=cancel,
            stage_observer=stage_observer,
        ).run()

    if jobs == 1 or len(configs) <= 1:
        return [one(config) for config in configs]
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(one, configs))
