"""Staged pipeline runner: the expansion DAG with caching + parallelism.

The paper's methodology (Section IV) is a strict stage DAG::

    clean ──> candidates ──> selection ──> network ──┬──> basic
                                                     ├──> day
                                                     └──> hour

:class:`PipelineRunner` executes that DAG with content-addressed
caching — every stage value is keyed by a fingerprint chaining the
dataset digest, the stage's relevant configuration sections, and its
parents' keys — backed by an in-memory LRU and an optional on-disk
cache directory.  Independent stages and the temporal slice
aggregation fan out over ``concurrent.futures`` workers, and
:func:`run_sweep` shares one cache across a whole parameter grid so a
sweep only recomputes the stages a config actually changes.

:class:`~repro.core.NetworkExpansionOptimiser` is a thin facade over
this runner; use the runner directly for sweeps, warm caches and
parallel execution.
"""

from .cache import StageCache
from .fingerprint import config_digest, dataset_digest, fingerprint
from .runner import (
    EXPANSION_STAGES,
    PipelineRunner,
    config_grid,
    run_sweep,
)
from .stage import Stage

__all__ = [
    "EXPANSION_STAGES",
    "PipelineRunner",
    "Stage",
    "StageCache",
    "config_digest",
    "config_grid",
    "dataset_digest",
    "fingerprint",
    "run_sweep",
]
