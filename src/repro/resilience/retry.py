"""Retry with exponential backoff and full jitter.

The storage subsystem's answer to *transient* backend faults: a flaky
NFS mount, a container runtime hiccup, an injected chaos fault.  The
policy is deliberately narrow:

* only errors :func:`is_transient` classifies as retryable are retried
  — quota verdicts (:class:`~repro.exceptions.StoreQuotaError`), key
  validation (:class:`~repro.exceptions.StoreKeyError`) and permanent
  I/O conditions (``ENOSPC``, ``EROFS``, ``EACCES``) re-raise
  immediately: retrying a full disk only heats it;
* delays follow *full jitter* — attempt ``n`` sleeps a uniform random
  amount in ``[0, min(max_delay_s, base_delay_s * 2**n)]`` — so a
  thundering herd of workers hitting the same fault decorrelates
  instead of re-colliding in lockstep (the AWS architecture-blog
  result: full jitter beats equal jitter and plain exponential for
  contended retries);
* total added latency is hard-bounded: :meth:`RetryPolicy.max_total_delay_s`
  is the worst-case sum of every sleep the policy can take, a number
  tests can assert against.

The policy object is immutable and thread-safe; per-call state (the
RNG draw, the attempt counter) lives on the stack.
"""

from __future__ import annotations

import errno
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..exceptions import StoreError

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "RetryPolicy",
    "is_transient",
]

#: Errno values that mark an OSError as worth retrying: interrupted or
#: timed-out I/O, a busy/temporarily-unavailable resource, or a generic
#: EIO flap.  Everything else (ENOSPC, EROFS, EACCES, ENOENT...) is a
#: *state*, not a flap — retrying cannot fix it.
_TRANSIENT_ERRNOS = frozenset(
    {
        errno.EIO,
        errno.EINTR,
        errno.EAGAIN,
        errno.EBUSY,
        errno.ETIMEDOUT,
    }
)


def is_transient(error: BaseException) -> bool:
    """Whether ``error`` is a retryable backend flap.

    Only :class:`OSError` instances with a transient errno qualify.
    Store-layer verdicts (:class:`~repro.exceptions.StoreError` and its
    quota/key subclasses) are never transient — they are *decisions*,
    not faults — which pins the contract that
    :class:`~repro.exceptions.StoreQuotaError` and
    :class:`~repro.exceptions.StoreKeyError` are never retried.
    """
    if isinstance(error, StoreError):
        return False
    if not isinstance(error, OSError):
        return False
    return error.errno in _TRANSIENT_ERRNOS


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full jitter over a bounded attempt budget.

    Parameters
    ----------
    max_attempts:
        Total calls allowed (first try included).  ``1`` disables
        retries entirely.
    base_delay_s / max_delay_s:
        Attempt ``n`` (0-based retry index) sleeps uniform in
        ``[0, min(max_delay_s, base_delay_s * 2**n)]``.
    sleep / rng:
        Injection points for tests: the sleeping function and the
        jitter source (a fresh seeded :class:`random.Random` makes a
        schedule reproducible).
    """

    max_attempts: int = 6
    base_delay_s: float = 0.025
    max_delay_s: float = 0.5
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)
    rng: random.Random = field(default_factory=random.Random, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")

    def delay_cap_s(self, retry_index: int) -> float:
        """The jitter window's upper bound for retry ``retry_index``."""
        return min(self.max_delay_s, self.base_delay_s * (2 ** retry_index))

    def max_total_delay_s(self) -> float:
        """Worst-case sum of every sleep this policy can take."""
        return sum(
            self.delay_cap_s(index) for index in range(self.max_attempts - 1)
        )

    def delays(self) -> Iterator[float]:
        """One full-jitter delay per possible retry, in order."""
        for index in range(self.max_attempts - 1):
            yield self.rng.uniform(0.0, self.delay_cap_s(index))

    def call(
        self,
        fn: Callable[[], Any],
        *,
        classify: Callable[[BaseException], bool] = is_transient,
        on_retry: Callable[[BaseException, int], None] | None = None,
    ) -> Any:
        """Run ``fn``, retrying transient failures per the schedule.

        ``classify`` decides retryability; a non-transient error (and
        the final transient one, once attempts are exhausted) re-raises
        unchanged.  ``on_retry(error, retry_index)`` fires before each
        sleep — the hook the store layer counts retries through.
        """
        retry_index = 0
        for delay in self.delays():
            try:
                return fn()
            except BaseException as error:  # noqa: BLE001 - reclassified below
                if not classify(error):
                    raise
                if on_retry is not None:
                    on_retry(error, retry_index)
                self.sleep(delay)
                retry_index += 1
        return fn()


#: The storage subsystem's default: 6 attempts, <= 0.775s worst-case
#: added latency — deep enough that a 15% per-call fault rate exhausts
#: the budget ~1 time in 10^5 calls, bounded enough that a dead disk
#: fails fast and trips the circuit breaker instead.
DEFAULT_RETRY_POLICY = RetryPolicy()
