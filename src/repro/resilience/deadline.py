"""Watchdog: a periodic scan thread for stale-heartbeat detection.

Deadlines are enforced *cooperatively* — the pipeline's stage-boundary
cancel hook checks them and stamps a heartbeat on every poll.  That
covers every healthy job, but a worker wedged *inside* a stage (a hung
syscall, a deadlocked extension) never reaches the next boundary, so
its deadline is never observed and its pool slot leaks.  The watchdog
is the backstop: a daemon thread that periodically runs a scan callback
supplied by the service, which fails any running job whose heartbeat
has gone stale.

The class owns only the thread lifecycle; the scan policy (what counts
as stale, how to fail a job) lives with the caller, keeping this module
free of job-table knowledge.
"""

from __future__ import annotations

import threading
from typing import Callable

__all__ = ["Watchdog"]


class Watchdog:
    """Run ``scan()`` every ``interval_s`` seconds until stopped.

    The thread is a daemon, so a forgotten watchdog never blocks
    interpreter exit; :meth:`stop` joins it for orderly shutdown.  A
    ``scan`` that raises is logged nowhere and swallowed — the watchdog
    must outlive any single bad scan — but the exception count is kept
    for tests.
    """

    def __init__(self, scan: Callable[[], None], *, interval_s: float = 1.0) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self._scan = scan
        self.interval_s = interval_s
        self.scan_errors = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "Watchdog":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-watchdog", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self._scan()
            except Exception:
                self.scan_errors += 1

    def stop(self) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()
