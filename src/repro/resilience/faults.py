"""Deterministic fault injection at the storage-backend seam.

:class:`FaultInjectingBackend` wraps any :class:`~repro.store.backend.Backend`
and makes it misbehave on a *seeded, reproducible* schedule: transient
``EIO`` flaps, injected latency, ``ENOSPC`` on writes.  Because the
wrapper sits below :class:`~repro.store.namespace.Namespace`, every
resilience mechanism above it — retry/backoff, the circuit breaker,
torn-write detection — is exercised against the same byte-level
contract production runs against.

Determinism without global state: each operation draws its verdict from
``sha256(seed:op:key:n)`` where ``n`` counts prior calls of that op on
that key.  The schedule for any single key is therefore fixed by the
seed alone — independent of thread interleaving across keys — and a
retry of a failed call is a *new* draw, so retries converge instead of
looping on a poisoned key.

Torn multi-part writes need no special machinery: failing ``put``
mid-way through a namespace's ``put_entry`` sequence leaves earlier
parts published and the recency anchor (written last) absent, which is
exactly the torn state readers must treat as "entry not present".

Bookkeeping operations (``delete``/``list``/``stat``/``touch``) pass
through unfaulted: they back LRU accounting, and flapping them would
test the injector, not the store.
"""

from __future__ import annotations

import errno
import hashlib
import os
import threading
import time
from dataclasses import dataclass
from typing import BinaryIO, Iterator

from ..store.backend import Backend, EntryStat

__all__ = ["FaultConfig", "FaultInjectingBackend"]

#: Environment variables :meth:`FaultConfig.from_env` reads — the switch
#: chaos tests flip to fault a real ``repro serve`` subprocess.
ENV_SEED = "REPRO_FAULT_SEED"
ENV_RATE = "REPRO_FAULT_RATE"
ENV_LATENCY_S = "REPRO_FAULT_LATENCY_S"
ENV_LATENCY_RATE = "REPRO_FAULT_LATENCY_RATE"
ENV_ENOSPC_RATE = "REPRO_FAULT_ENOSPC_RATE"


@dataclass(frozen=True)
class FaultConfig:
    """One seeded fault schedule.

    ``failure_rate`` is the per-call probability of a transient ``EIO``
    on reads and writes; ``enospc_rate`` adds a *non*-transient
    ``ENOSPC`` on writes only (the condition retries must not chase and
    the circuit breaker must); ``latency_rate``/``latency_s`` stall a
    fraction of all faultable calls.
    """

    seed: int = 0
    failure_rate: float = 0.0
    latency_s: float = 0.0
    latency_rate: float = 0.0
    enospc_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("failure_rate", "latency_rate", "enospc_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value}")
        if self.latency_s < 0:
            raise ValueError("latency_s must be non-negative")

    @property
    def active(self) -> bool:
        return bool(
            self.failure_rate or self.enospc_rate
            or (self.latency_rate and self.latency_s)
        )

    @classmethod
    def from_env(cls, environ: dict[str, str] | None = None) -> "FaultConfig | None":
        """The schedule the ``REPRO_FAULT_*`` variables describe, if any.

        Returns ``None`` when no fault variable is set, so callers can
        wrap conditionally:

        >>> FaultConfig.from_env({}) is None
        True
        >>> FaultConfig.from_env({"REPRO_FAULT_RATE": "0.15"}).failure_rate
        0.15
        """
        env = os.environ if environ is None else environ
        keys = (ENV_SEED, ENV_RATE, ENV_LATENCY_S, ENV_LATENCY_RATE, ENV_ENOSPC_RATE)
        if not any(key in env for key in keys):
            return None
        return cls(
            seed=int(env.get(ENV_SEED, "0")),
            failure_rate=float(env.get(ENV_RATE, "0")),
            latency_s=float(env.get(ENV_LATENCY_S, "0")),
            latency_rate=float(env.get(ENV_LATENCY_RATE, "0")),
            enospc_rate=float(env.get(ENV_ENOSPC_RATE, "0")),
        )


def _draw(seed: int, op: str, key: str, call_index: int) -> float:
    """Uniform [0, 1) derived from the schedule coordinates alone."""
    digest = hashlib.sha256(
        f"{seed}:{op}:{key}:{call_index}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class FaultInjectingBackend:
    """A :class:`Backend` that misbehaves on a seeded schedule.

    >>> from repro.store.backend import MemoryBackend
    >>> chaotic = FaultInjectingBackend(
    ...     MemoryBackend(), FaultConfig(seed=1, failure_rate=1.0)
    ... )
    >>> chaotic.put("k", b"v")
    Traceback (most recent call last):
        ...
    OSError: [Errno 5] injected transient fault: put 'k' (call 0)
    """

    def __init__(self, inner: Backend, config: FaultConfig) -> None:
        self.inner = inner
        self.config = config
        self.faults_injected = 0
        self._counts: dict[tuple[str, str], int] = {}
        self._mutex = threading.Lock()

    def _decide(self, op: str, key: str) -> None:
        """Latency/failure verdict for this call; raises to inject."""
        config = self.config
        with self._mutex:
            slot = (op, key)
            call_index = self._counts.get(slot, 0)
            self._counts[slot] = call_index + 1
        if config.latency_rate and config.latency_s:
            if _draw(config.seed, f"lat:{op}", key, call_index) < config.latency_rate:
                time.sleep(config.latency_s)
        writing = op in ("put", "open_write")
        if writing and config.enospc_rate:
            if _draw(config.seed, f"nospc:{op}", key, call_index) < config.enospc_rate:
                with self._mutex:
                    self.faults_injected += 1
                raise OSError(
                    errno.ENOSPC,
                    f"injected ENOSPC: {op} {key!r} (call {call_index})",
                )
        if config.failure_rate:
            if _draw(config.seed, op, key, call_index) < config.failure_rate:
                with self._mutex:
                    self.faults_injected += 1
                raise OSError(
                    errno.EIO,
                    f"injected transient fault: {op} {key!r} (call {call_index})",
                )

    # -- faulted operations -------------------------------------------------

    def get(self, key: str) -> bytes | None:
        self._decide("get", key)
        return self.inner.get(key)

    def peek(self, key: str) -> bytes | None:
        self._decide("peek", key)
        return self.inner.peek(key)

    def put(self, key: str, data: bytes) -> None:
        self._decide("put", key)
        self.inner.put(key, data)

    def open_read(self, key: str) -> BinaryIO:
        self._decide("open_read", key)
        return self.inner.open_read(key)

    def open_write(self, key: str):
        # The verdict lands before the inner tmp file exists, so a
        # faulted call publishes nothing — same atomicity as a crash
        # before os.replace.
        self._decide("open_write", key)
        return self.inner.open_write(key)

    # -- pass-through bookkeeping -------------------------------------------

    def delete(self, key: str) -> bool:
        return self.inner.delete(key)

    def list(self) -> Iterator[str]:
        return self.inner.list()

    def stat(self, key: str) -> EntryStat | None:
        return self.inner.stat(key)

    def touch(self, key: str) -> None:
        self.inner.touch(key)
