"""Circuit breaker: turn persistent write failure into graceful degradation.

Retries (``retry.py``) absorb *flaps*; the breaker handles the other
regime — a store that is durably broken (disk full, volume gone
read-only).  Hammering it with retrying writes makes every request pay
the full backoff budget before failing anyway.  The breaker counts
consecutive write failures at the results/journal seam and, past a
threshold, *opens*: the service flips to read-only mode (warm results,
dataset GETs, healthz and metrics still served; mutating requests get
503 + Retry-After) until a half-open probe succeeds.

States follow the classic three-way machine:

``closed``
    Normal operation.  Each failure increments a consecutive counter;
    a success resets it; hitting ``failure_threshold`` opens.
``open``
    All writes refused without touching the store.  After
    ``reset_timeout_s`` the next :meth:`allow` transitions to
    half-open and lets exactly that caller through as the probe.
``half_open``
    Probing.  A success closes the breaker; a failure reopens it and
    restarts the timeout.

All transitions happen under one lock; the clock is injectable so tests
never sleep.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["CircuitBreaker", "BREAKER_STATES"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: State names in gauge-encoding order: the ``repro_circuit_breaker_state``
#: gauge exports the index (0 closed, 1 half-open, 2 open).
BREAKER_STATES = (CLOSED, HALF_OPEN, OPEN)


class CircuitBreaker:
    """Consecutive-failure breaker with timed half-open probing."""

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        reset_timeout_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if reset_timeout_s < 0:
            raise ValueError("reset_timeout_s must be non-negative")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self._mutex = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._trips = 0

    # -- queries ------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._mutex:
            return self._state

    def allow(self) -> bool:
        """Whether a write may proceed right now.

        While open, returns ``False`` until ``reset_timeout_s`` has
        elapsed; the first call after that flips to half-open and
        returns ``True`` — that caller *is* the recovery probe.
        """
        with self._mutex:
            if self._state == OPEN:
                if self._clock() - self._opened_at < self.reset_timeout_s:
                    return False
                self._state = HALF_OPEN
            return True

    def retry_after_s(self) -> float:
        """Seconds until the next probe is admitted (0 when not open)."""
        with self._mutex:
            if self._state != OPEN:
                return 0.0
            remaining = self.reset_timeout_s - (self._clock() - self._opened_at)
            return max(0.0, remaining)

    def snapshot(self) -> dict:
        """State document for healthz and the metrics scrape."""
        with self._mutex:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "trips": self._trips,
                "failure_threshold": self.failure_threshold,
                "reset_timeout_s": self.reset_timeout_s,
            }

    # -- observations -------------------------------------------------------

    def record_success(self) -> None:
        with self._mutex:
            self._consecutive_failures = 0
            if self._state == HALF_OPEN:
                self._state = CLOSED

    def record_failure(self) -> None:
        with self._mutex:
            self._consecutive_failures += 1
            if self._state == HALF_OPEN or (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._open_locked()

    def _open_locked(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._trips += 1

    # -- manual overrides (tests, bench degraded-mode entry) ----------------

    def trip(self) -> None:
        """Force open, as if the threshold had just been crossed."""
        with self._mutex:
            self._open_locked()

    def reset(self) -> None:
        """Force closed and clear the failure streak."""
        with self._mutex:
            self._state = CLOSED
            self._consecutive_failures = 0
