"""Resilience: fault injection, retry, circuit breaking, watchdogs.

The mechanisms that let ``repro serve`` tolerate the faults real
deployments guarantee — flaky or slow storage, full disks, wedged
workers, overload, and mid-job crashes — instead of merely observing
them.  Each piece sits at an existing seam:

* :class:`FaultInjectingBackend` wraps any storage backend with a
  seeded deterministic fault schedule — the chaos harness the rest of
  the layer is tested against;
* :class:`RetryPolicy` (exponential backoff, full jitter) absorbs
  transient backend flaps inside the namespace read/publish paths;
* :class:`CircuitBreaker` converts persistent write failure into
  read-only degradation instead of per-request retry storms;
* :class:`Watchdog` reaps jobs whose stage-boundary heartbeat has gone
  stale, so wedged workers don't leak pool slots.

See ``docs/RESILIENCE.md`` for the failure-modes table mapping each
fault to its detection, response and metric.
"""

from .breaker import BREAKER_STATES, CircuitBreaker
from .deadline import Watchdog
from .faults import FaultConfig, FaultInjectingBackend
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy, is_transient

__all__ = [
    "BREAKER_STATES",
    "CircuitBreaker",
    "DEFAULT_RETRY_POLICY",
    "FaultConfig",
    "FaultInjectingBackend",
    "RetryPolicy",
    "Watchdog",
    "is_transient",
]
