"""The ``repro bench`` workload matrix and the persisted trajectory.

One bench invocation measures, on the current machine:

* **end-to-end** — a cold serial pipeline run per workload scale
  (paper trip volume x1 / x2 / x4 on the calibrated synthetic city),
  with per-stage wall times from :class:`~repro.perf.StageTimer`;
* **baseline end-to-end** — the same paper-scale run on the
  pre-optimisation kernels (:mod:`repro.perf.baseline`), so the
  recorded speedup is measured by this harness, not claimed;
* **kernels** — the rewritten hot kernels head-to-head against their
  reference implementations on the scaled workloads (Louvain on the
  G_Hour multislice graph; the pipeline's geo-query mix of proximity
  components, pre-assignment ``within`` and nearest-station
  reassignment), asserting bit-identical results while timing;
* **parallel** — the first workload scale serial vs ``jobs=4`` under
  both the thread and process executors, with a warm serial reference
  measured in the same block so the recorded ``ratio_vs_serial`` is an
  apples-to-apples comparison (the cold serial run above pays one-off
  generation/OS warmup the parallel runs would not).

Results append to ``BENCH_pipeline.json`` — the benchmark trajectory.
Every entry carries the git revision (and the machine's CPU count:
on a single-CPU host the best a 4-way run can do is parity), so the
file reads as a perf history of the repository; CI uploads it
per-commit.  :func:`check_parallel_gate` turns the parallel block
into a pass/fail signal for nightly CI.
"""

from __future__ import annotations

import json
import os
import platform
import random
import subprocess
import sys
import time
from datetime import datetime, timedelta, timezone
from pathlib import Path
from typing import Any, Callable, Sequence

from ..community.louvain import louvain
from ..community.temporal import build_sliced_graph_from_buckets
from ..config import PAPER_CONFIG
from ..pipeline.runner import PipelineRunner
from ..synth import GeneratorConfig, SyntheticMobyGenerator
from .baseline import (
    BASELINE_STAGES,
    baseline_kernels,
    baseline_louvain,
    baseline_nearest,
    baseline_preassign_to_stations,
    baseline_proximity_components,
)
from .timer import StageTimer

#: Paper-calibrated base counts (GeneratorConfig defaults).
_BASE_RENTALS = 61_872
_BASE_BIKES = 95

DEFAULT_TRAJECTORY = "BENCH_pipeline.json"

#: Parallel-scaling gate: the best jobs-4 configuration may be at most
#: this much slower than the warm serial reference.  On a single-CPU
#: host parity (~1.0) is the physical best case, so the limit is a
#: noise margin over parity rather than a speedup demand; multi-CPU
#: hosts clear it with real speedups.
DEFAULT_PARALLEL_MAX_RATIO = 1.1

#: Incremental-recompute gate: re-running after a ~5% append must be at
#: least this much faster than a cold run over the appended dataset.
#: The delta touches one weekday and four hour slices, so the warm path
#: skips cleaning/candidates/network rebuild and 26 of 31 slice
#: clusterings — 3x is the floor, not the ceiling.
INCREMENTAL_MIN_SPEEDUP = 3.0

#: The appended tail, as a fraction of the stored log (the ISSUE's
#: "≤5% append" scenario).
INCREMENTAL_DELTA_FRACTION = 0.05


def check_parallel_gate(
    entry: dict[str, Any], max_ratio: float = DEFAULT_PARALLEL_MAX_RATIO
) -> tuple[bool, str]:
    """Pass/fail the parallel-scaling gate on one trajectory entry.

    Fails when the entry has no usable parallel measurements, or when
    the *best* jobs-4 configuration is more than ``max_ratio`` times
    the warm serial wall — i.e. when running 4-way makes the pipeline
    slower than not parallelising at all.  Returns ``(ok, message)``;
    the message is printable either way.
    """
    rows = [
        row
        for row in entry.get("parallel") or []
        if isinstance(row.get("ratio_vs_serial"), (int, float))
    ]
    if not rows:
        return False, (
            "parallel gate: entry records no jobs-4 measurements with a "
            "ratio_vs_serial — run `repro bench` (any mode) to produce them"
        )
    best = min(rows, key=lambda row: row["ratio_vs_serial"])
    measured = ", ".join(
        f"{row['executor']} jobs={row['jobs']}: {row['ratio_vs_serial']:.2f}x"
        for row in rows
    )
    scale = best.get("scale", "?")
    if best["ratio_vs_serial"] > max_ratio:
        return False, (
            f"parallel gate FAILED at scale {scale}: best jobs-4 run is "
            f"{best['ratio_vs_serial']:.2f}x the warm serial wall "
            f"(limit {max_ratio:.2f}x) — parallel execution is slower than "
            f"serial. Measured: {measured}. Store contention (namespace "
            f"stamp writes, lock stripes) or executor fan-out overhead are "
            f"the usual suspects."
        )
    return True, (
        f"parallel gate OK at scale {scale}: best jobs-4 run is "
        f"{best['ratio_vs_serial']:.2f}x serial (limit {max_ratio:.2f}x; "
        f"measured: {measured})"
    )


def check_incremental_gate(
    entry: dict[str, Any], min_speedup: float = INCREMENTAL_MIN_SPEEDUP
) -> tuple[bool, str]:
    """Pass/fail the incremental-recompute gate on one trajectory entry.

    Fails when the entry carries no ``incremental`` block or when the
    measured speedup of the delta re-run over the cold run is below
    ``min_speedup``.  Returns ``(ok, message)``.
    """
    block = entry.get("incremental")
    if not block or not isinstance(block.get("speedup"), (int, float)):
        return False, (
            "incremental gate: entry records no incremental measurement — "
            "run `repro bench --incremental` to produce one"
        )
    speedup = block["speedup"]
    detail = (
        f"cold {block.get('cold_wall_s', '?')}s vs incremental "
        f"{block.get('incremental_wall_s', '?')}s after a "
        f"{block.get('delta_rentals', '?')}-trip append "
        f"({block.get('slices_recomputed', '?')} slices recomputed, "
        f"{block.get('slices_reused', '?')} reused)"
    )
    if speedup < min_speedup:
        return False, (
            f"incremental gate FAILED: {speedup:.2f}x < "
            f"{min_speedup:.1f}x ({detail})"
        )
    return True, (
        f"incremental gate OK: {speedup:.2f}x >= {min_speedup:.1f}x "
        f"({detail})"
    )


def workload_config(scale: int) -> GeneratorConfig:
    """The scale-``k`` workload: k-fold trip volume on the paper city.

    Locations and stations stay at paper scale — the synthetic city's
    geometry (station spacing, HAC component sizes) is calibrated and
    does not scale safely — so ``scale`` multiplies demand: rentals and
    fleet size.
    """
    if scale < 1:
        raise ValueError("scale must be at least 1")
    return GeneratorConfig(
        seed=7,
        n_clean_rentals=_BASE_RENTALS * scale,
        n_bikes=_BASE_BIKES * scale,
    )


def _best_of(fn: Callable[[], Any], reps: int) -> tuple[float, Any]:
    """(best wall seconds, last return value) over ``reps`` calls."""
    best = float("inf")
    value = None
    for _ in range(reps):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _stage_walls(timer: StageTimer) -> dict[str, float]:
    return {
        section["name"].removeprefix("stage:"): round(section["wall_s"], 4)
        for section in timer.report().sections
    }


def _git_rev(anchor: Path) -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=anchor if anchor.is_dir() else anchor.parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def _bench_louvain(network, scale: int, reps: int) -> dict[str, Any]:
    graph = build_sliced_graph_from_buckets(
        network.hour_slice_buckets(), PAPER_CONFIG.temporal.coupling
    )
    config = PAPER_CONFIG.temporal
    optimised_s, new = _best_of(lambda: louvain(graph, config), reps)
    baseline_s, old = _best_of(lambda: baseline_louvain(graph, config), 1)
    exact = (
        new.partition == old.partition
        and new.modularity == old.modularity
        and new.levels == old.levels
    )
    if not exact:
        raise RuntimeError(
            "louvain_hour drifted from its reference implementation — "
            "a speedup over wrong results is meaningless; refusing to "
            "record it"
        )
    return {
        "name": "louvain_hour",
        "scale": scale,
        "n_nodes": graph.node_count,
        "n_edges": graph.edge_count,
        "optimised_s": round(optimised_s, 4),
        "baseline_s": round(baseline_s, 4),
        "speedup": round(baseline_s / optimised_s, 2),
        "throughput_edges_per_s": round(graph.edge_count / optimised_s),
        "exact": exact,
    }


def _geo_kernel_bench(cleaned, network, scale: int, reps: int) -> dict[str, Any]:
    """Time the pipeline's geo-query workloads, optimised vs reference.

    Mirrors what the pipeline actually asks of the spatial index on
    this workload: proximity components over the dockless locations
    (the HAC precondition), the 50 m pre-assignment ``within`` sweep,
    and the nearest-station reassignment of every cleaned location
    against the expanded station set.  Results are checked identical
    while timing.
    """
    from ..cluster.hac import preassign_to_stations, proximity_components
    from ..geo import GridIndex

    cfg = PAPER_CONFIG.clustering
    location_points = {
        record.location_id: record.point() for record in cleaned.locations()
    }
    station_points = {
        record.location_id: record.point() for record in cleaned.stations()
    }

    pre_new_s, pre_new = _best_of(
        lambda: preassign_to_stations(
            location_points, station_points, cfg.preassign_radius_m
        ),
        reps,
    )
    pre_old_s, pre_old = _best_of(
        lambda: baseline_preassign_to_stations(
            location_points, station_points, cfg.preassign_radius_m
        ),
        1,
    )
    leftover = pre_new[1]

    prox_new_s, prox_new = _best_of(
        lambda: proximity_components(
            leftover, location_points, cfg.cluster_boundary_m
        ),
        reps,
    )
    prox_old_s, prox_old = _best_of(
        lambda: baseline_proximity_components(
            leftover, location_points, cfg.cluster_boundary_m
        ),
        1,
    )

    station_index: GridIndex[int] = GridIndex(cell_m=250.0)
    for station_id, station in network.stations.items():
        station_index.insert(station_id, station.point)
    queries = list(location_points.values())
    near_new_s, near_new = _best_of(
        lambda: station_index.nearest_many(queries), reps
    )
    near_old_s, near_old = _best_of(
        lambda: [baseline_nearest(station_index, query) for query in queries], 1
    )

    optimised_s = pre_new_s + prox_new_s + near_new_s
    baseline_s = pre_old_s + prox_old_s + near_old_s
    n_queries = 2 * len(location_points) + len(leftover)
    if not (pre_new == pre_old and prox_new == prox_old and near_new == near_old):
        raise RuntimeError(
            "geo_queries drifted from the reference implementations — "
            "refusing to record a speedup over wrong results"
        )
    return {
        "name": "geo_queries",
        "scale": scale,
        "n_locations": len(location_points),
        "n_stations": len(network.stations),
        "n_queries": n_queries,
        "optimised_s": round(optimised_s, 4),
        "baseline_s": round(baseline_s, 4),
        "speedup": round(baseline_s / optimised_s, 2),
        "throughput_queries_per_s": round(n_queries / optimised_s),
        "exact": pre_new == pre_old and prox_new == prox_old and near_new == near_old,
        "parts": {
            "preassign_within": {
                "optimised_s": round(pre_new_s, 4),
                "baseline_s": round(pre_old_s, 4),
                "speedup": round(pre_old_s / pre_new_s, 2),
            },
            "proximity_components": {
                "optimised_s": round(prox_new_s, 4),
                "baseline_s": round(prox_old_s, 4),
                "speedup": round(prox_old_s / prox_new_s, 2),
            },
            "nearest_assign": {
                "optimised_s": round(near_new_s, 4),
                "baseline_s": round(near_old_s, 4),
                "speedup": round(near_old_s / near_new_s, 2),
            },
        },
    }


def _load_trajectory(path: Path) -> dict[str, Any]:
    if path.exists():
        payload = json.loads(path.read_text())
        if payload.get("type") == "BenchTrajectory":
            return payload
    return {"type": "BenchTrajectory", "entries": []}


def entry_header(label: str, *, quick: bool = False, anchor: Path | None = None) -> dict[str, Any]:
    """The provenance block every trajectory entry carries.

    ``anchor`` locates the git checkout the revision is read from
    (defaults to the working directory).
    """
    return {
        "label": label,
        "git_rev": _git_rev(anchor if anchor is not None else Path.cwd()),
        "created_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpus": os.cpu_count(),
    }


def _origin_headline(trajectory: dict[str, Any]) -> dict[str, Any] | None:
    """The first entry's paper-scale end-to-end block, or ``None``.

    >>> _origin_headline({"entries": [
    ...     {"label": "service", "service": {}},
    ...     {"label": "origin", "end_to_end": [{"scale": 1, "wall_s": 6.5}]},
    ... ]})
    {'scale': 1, 'wall_s': 6.5}
    """
    for entry in trajectory.get("entries", ()):
        blocks = entry.get("end_to_end")
        if blocks:
            return blocks[0]
    return None


def _write_trajectory(path: Path, trajectory: dict[str, Any]) -> None:
    path.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")


def append_entry(entry: dict[str, Any], out: str | Path | None = None) -> Path:
    """Append one entry to the persisted trajectory; returns its path.

    The shared sink for every bench surface — ``repro bench``'s
    workload matrix and the service-front-end bench both land in the
    same ``BENCH_pipeline.json`` history instead of printing numbers
    that evaporate with the terminal.
    """
    path = Path(out) if out is not None else Path.cwd() / DEFAULT_TRAJECTORY
    trajectory = _load_trajectory(path)
    trajectory["entries"].append(entry)
    _write_trajectory(path, trajectory)
    return path


def run_bench(
    scales: Sequence[int] = (1, 2, 4),
    *,
    quick: bool = False,
    out: str | Path | None = None,
    label: str | None = None,
    echo: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Run the matrix, append the entry to the trajectory, return it."""
    say = echo or (lambda message: None)
    path = Path(out) if out is not None else Path.cwd() / DEFAULT_TRAJECTORY
    if quick:
        scales = tuple(scales[:1]) or (1,)
    reps = 1 if quick else 2

    end_to_end: list[dict[str, Any]] = []
    kernels: list[dict[str, Any]] = []
    paper_raw = None
    first_raw = None

    for scale in scales:
        say(f"bench: generating scale-{scale} workload ...")
        raw = SyntheticMobyGenerator(seed=7, config=workload_config(scale)).generate()
        if first_raw is None:
            first_raw = raw
        if scale == 1:
            paper_raw = raw
        say(f"bench: cold end-to-end run (scale {scale}) ...")
        timer = StageTimer()
        start = time.perf_counter()
        result = PipelineRunner(raw, timer=timer).run()
        wall = time.perf_counter() - start
        entry: dict[str, Any] = {
            "scale": scale,
            "n_rentals": raw.n_rentals,
            "n_locations": raw.n_locations,
            "jobs": 1,
            "wall_s": round(wall, 3),
            "stages": _stage_walls(timer),
        }
        end_to_end.append(entry)

        say(f"bench: kernels (scale {scale}) ...")
        kernels.append(_bench_louvain(result.network, scale, reps))
        kernels.append(
            _geo_kernel_bench(result.cleaned, result.network, scale, reps)
        )

    if not quick and paper_raw is not None:
        say("bench: baseline end-to-end (pre-optimisation kernels) ...")
        baseline_timer = StageTimer()
        with baseline_kernels():
            start = time.perf_counter()
            PipelineRunner(
                paper_raw, stages=BASELINE_STAGES, timer=baseline_timer
            ).run()
            baseline_wall = time.perf_counter() - start
        # Same-tree rerun on the snapshotted pre-optimisation kernels:
        # isolates the kernel rewrites from the shared-stage wins.
        end_to_end[0]["reference_kernels_wall_s"] = round(baseline_wall, 3)
        end_to_end[0]["reference_kernels_stages"] = _stage_walls(baseline_timer)
        end_to_end[0]["speedup_vs_reference_kernels"] = round(
            baseline_wall / end_to_end[0]["wall_s"], 2
        )

    # Parallel trajectory: always recorded (quick runs included) so
    # every entry carries the gate signal.  The serial reference is
    # re-measured warm, back to back with the parallel runs, so the
    # ratios compare identical conditions — the cold run above paid
    # one-off costs the parallel runs would not.
    parallel: list[dict[str, Any]] = []
    if first_raw is not None:
        parallel_scale = scales[0]
        say(f"bench: warm serial reference (scale {parallel_scale}) ...")
        start = time.perf_counter()
        PipelineRunner(first_raw).run()
        serial_wall = time.perf_counter() - start
        parallel.append(
            {
                "scale": parallel_scale,
                "jobs": 1,
                "executor": "serial",
                "wall_s": round(serial_wall, 3),
            }
        )
        for executor in ("thread", "process"):
            say(f"bench: parallel run (jobs=4, {executor} executor) ...")
            start = time.perf_counter()
            PipelineRunner(first_raw, jobs=4, executor=executor).run()
            wall = time.perf_counter() - start
            parallel.append(
                {
                    "scale": parallel_scale,
                    "jobs": 4,
                    "executor": executor,
                    "wall_s": round(wall, 3),
                    "ratio_vs_serial": round(wall / serial_wall, 3),
                }
            )

    entry = entry_header(
        label or ("quick" if quick else "full"), quick=quick, anchor=path.parent
    )
    entry["end_to_end"] = end_to_end
    entry["kernels"] = kernels
    if parallel:
        entry["parallel"] = parallel

    # The trajectory's origin is its first *end-to-end* entry (the
    # pre-optimisation tree); every later entry records its paper-scale
    # speedup against it so the history reads as a cumulative trend on
    # this machine.  Entries of other shapes (the service bench) are
    # skipped, so one of them landing first cannot break the bench.
    trajectory = _load_trajectory(path)
    origin = _origin_headline(trajectory)
    if origin is not None:
        if origin.get("scale") == 1 and end_to_end and end_to_end[0]["scale"] == 1:
            entry["speedup_vs_origin"] = round(
                origin["wall_s"] / end_to_end[0]["wall_s"], 2
            )
    trajectory["entries"].append(entry)
    _write_trajectory(path, trajectory)
    say(f"bench: trajectory appended to {path}")
    return entry


def _resampled_delta(raw, rng: random.Random, n_delta: int) -> list:
    """A plausible ~5% append: resampled trips on one fresh Monday.

    Endpoints are drawn from the prefix's surviving trips (so the delta
    reuses real locations), ids continue strictly above the stored
    maximum, and every start lands on the first Monday after the stored
    log in the commute hours {7, 8, 17, 18} — the append-mode scenario:
    yesterday's re-run plus one new day of rentals, touching one day
    slice and four hour slices out of 31.
    """
    from ..data.records import RentalRecord

    survivors = [
        rental
        for rental in raw.rentals()
        if rental.rental_location_id is not None
        and rental.return_location_id is not None
        and rental.ended_at > rental.started_at
    ]
    if not survivors:
        raise RuntimeError("prefix dataset has no usable trips to resample")
    last = max(rental.started_at for rental in survivors)
    monday = (last + timedelta(days=(7 - last.weekday()) % 7 or 7)).replace(
        hour=0, minute=0, second=0, microsecond=0
    )
    next_id = (raw.max_rental_id() or 0) + 1
    delta = []
    for offset in range(n_delta):
        template = rng.choice(survivors)
        started = monday + timedelta(
            hours=rng.choice((7, 8, 17, 18)),
            minutes=rng.randrange(60),
            seconds=rng.randrange(60),
        )
        duration = min(
            template.ended_at - template.started_at, timedelta(minutes=45)
        )
        if duration <= timedelta(0):
            duration = timedelta(minutes=9)
        delta.append(
            RentalRecord(
                rental_id=next_id + offset,
                bike_id=template.bike_id,
                started_at=started,
                ended_at=started + duration,
                rental_location_id=template.rental_location_id,
                return_location_id=template.return_location_id,
            )
        )
    return delta


def run_incremental_bench(
    *,
    out: str | Path | None = None,
    label: str | None = None,
    echo: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Measure the incremental-recompute rung; append it, return it.

    The scenario the append-mode storage exists for: a paper-scale
    dataset is stored and fully computed, ~5% more rentals arrive as an
    append (one new weekday of commute trips), and the re-run goes
    through the delta-aware path — stored lineage, chained slice keys,
    warm untouched slices — instead of from scratch.  The cold run it
    is compared against computes the *same appended dataset* on an
    empty stage cache, and the two results are asserted identical
    before any speedup is recorded (a fast wrong answer is refused,
    same policy as the kernel benches).
    """
    from ..pipeline.cache import StageCache
    from ..service.datasets import DatasetStore

    say = echo or (lambda message: None)
    say("bench: generating paper-scale prefix workload ...")
    prefix = SyntheticMobyGenerator(seed=7).generate()
    n_delta = max(1, round(prefix.n_rentals * INCREMENTAL_DELTA_FRACTION))
    delta = _resampled_delta(prefix, random.Random(7), n_delta)

    # The real ingestion path, not a synthetic lineage document: put,
    # append, read back — digesting included, exactly what a service
    # over this store would hand the runner.
    store = DatasetStore()
    name = "bench-incremental"
    meta = store.put(name, prefix)
    say(
        f"bench: appending {n_delta} rentals "
        f"({INCREMENTAL_DELTA_FRACTION:.0%} of {prefix.n_rentals}) ..."
    )
    appended = store.append(name, delta)
    merged_pair = store.get_with_digest(name)
    if appended is None or merged_pair is None:
        raise RuntimeError("dataset store lost the bench dataset")
    merged, merged_digest = merged_pair
    lineage = store.lineage(name)

    say("bench: warm prefix run (seeds the stage cache) ...")
    cache = StageCache()
    PipelineRunner(prefix, cache=cache, raw_digest=meta["digest"]).run()

    say("bench: cold run over the appended dataset ...")
    start = time.perf_counter()
    cold_result = PipelineRunner(
        merged, cache=StageCache(), raw_digest=merged_digest
    ).run()
    cold_wall = time.perf_counter() - start

    say("bench: incremental re-run (delta-aware) ...")
    start = time.perf_counter()
    runner = PipelineRunner(
        merged, cache=cache, raw_digest=merged_digest, lineage=lineage
    )
    incremental_result = runner.run()
    incremental_wall = time.perf_counter() - start
    report = runner.incremental_report()
    if report.get("mode") != "incremental":
        raise RuntimeError(
            "incremental bench fell back to a cold run (lineage did not "
            "validate) — nothing to measure"
        )

    cold_doc = cold_result.to_dict()
    cold_doc.pop("timings", None)
    incremental_doc = incremental_result.to_dict()
    incremental_doc.pop("timings", None)
    exact = json.dumps(cold_doc, sort_keys=True) == json.dumps(
        incremental_doc, sort_keys=True
    )
    if not exact:
        raise RuntimeError(
            "incremental run drifted from the cold run over the same "
            "appended dataset — a speedup over wrong results is "
            "meaningless; refusing to record it"
        )

    entry = entry_header(
        label or "incremental",
        anchor=Path(out) if out is not None else Path.cwd(),
    )
    entry["incremental"] = {
        "scale": 1,
        "n_rentals": prefix.n_rentals,
        "delta_rentals": n_delta,
        "delta_fraction": round(n_delta / prefix.n_rentals, 4),
        "appends": appended["appends"],
        "cold_wall_s": round(cold_wall, 3),
        "incremental_wall_s": round(incremental_wall, 3),
        "speedup": round(cold_wall / incremental_wall, 2),
        "stages_merged": report["stages_merged"],
        "slices_reused": report["slices_reused"],
        "slices_recomputed": report["slices_recomputed"],
        "exact": exact,
    }
    path = append_entry(entry, out)
    say(f"bench: trajectory appended to {path}")
    return entry
