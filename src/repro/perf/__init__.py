"""Performance instrumentation and the benchmark trajectory harness.

* :class:`StageTimer` / :class:`PerfReport` — zero-dependency nestable
  wall-clock instrumentation, threaded through
  :class:`~repro.pipeline.PipelineRunner` (``timer=``) and surfaced as
  the ``timings`` block on :class:`~repro.core.results.ExpansionResult`
  envelopes and job documents.
* :mod:`repro.perf.bench` — the ``repro bench`` workload matrix that
  appends to ``BENCH_pipeline.json`` (the persisted benchmark
  trajectory).
* :mod:`repro.perf.baseline` — pre-optimisation reference kernels the
  benches measure against and the exactness tests compare with.
"""

from .timer import NULL_TIMER, PerfReport, StageTimer

__all__ = ["NULL_TIMER", "PerfReport", "StageTimer"]
