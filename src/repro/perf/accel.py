"""Optional numpy-accelerated kernels, bit-identical by construction.

Every kernel here is an *alternative evaluation order* of an existing
pure-Python kernel — never an alternative algorithm — built only from
numpy operations that are bit-identical to their scalar counterparts
on this platform:

* elementwise ``np.sin``/``np.cos``/``np.sqrt``/``np.radians`` match
  ``math.sin``/``math.cos``/``math.sqrt``/``math.radians`` exactly;
* ``np.add.accumulate`` is an exactly sequential left fold;
* ``np.add.at`` is an exactly sequential scatter-add in argument order.

Primitives that are *not* bit-identical are banned and worked around:

* ``np.add.reduce``/``np.add.reduceat`` use pairwise summation — every
  reduction here goes through ``np.add.accumulate`` or ``np.add.at``;
* ``np.arcsin`` differs from ``math.asin`` in the last ulp for ~4 % of
  inputs — distance *decisions* are made in haversine-``h`` space
  (monotone in distance), and distance *values* are finalised with
  scalar ``math.asin`` on the few survivors;
* ``x ** 2`` via numpy differs from CPython ``float.__pow__`` — the
  per-label modularity tail stays scalar.

:data:`ENABLED` is True only when numpy imports *and* an import-time
self-check proves the identities above on probe values, so a platform
where any identity fails silently falls back to pure Python rather
than corrupting fingerprints.  Set ``REPRO_NO_ACCEL=1`` to force the
pure paths (the parity suite and the no-numpy CI leg use this to pin
both sides byte-identical).
"""

from __future__ import annotations

import math
import os
import struct
from typing import TYPE_CHECKING, Sequence

from ..config import EARTH_RADIUS_M

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..geo import GeoPoint
    from ..geo.index import GridIndex
    from ..geo.polygon import Polygon, Region

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None

#: Engage batch grid kernels only for genuinely batched queries over
#: moderate indexes: below the floor the numpy call overhead loses to
#: the scalar grid walk, above the cap a full scan loses to grid
#: pruning.  Either way the scalar path is the fallback, so these are
#: pure performance knobs — results never depend on them.
MIN_BATCH_CENTERS = 8
MAX_SCAN_POINTS = 4096
#: Centres are processed in chunks to bound the (chunk, n_points)
#: broadcast buffers.
CENTER_CHUNK = 1024

#: Engage the vectorised modularity kernel only above this node count.
MIN_MODULARITY_NODES = 64


def _self_check() -> bool:
    """Prove the bit-identities the kernels rely on, on probe values."""
    if np is None:
        return False
    try:
        probes = [
            (i * 0.7853981633974483 + 0.1234567) * (1 if i % 2 else -1)
            for i in range(64)
        ]
        arr = np.array(probes, dtype=np.float64)
        if not all(
            float(a) == m(p)
            for fn, m in (
                (np.sin, math.sin),
                (np.cos, math.cos),
                (np.radians, math.radians),
            )
            for a, p in zip(fn(arr), probes)
        ):
            return False
        if not all(
            float(a) == math.sqrt(abs(p))
            for a, p in zip(np.sqrt(np.abs(arr)), probes)
        ):
            return False
        # accumulate must be the sequential left fold from zero.
        fold = 0.0
        for p in probes:
            fold += p
        if float(np.add.accumulate(arr)[-1]) != fold:
            return False
        # add.at must scatter-add sequentially in argument order.
        index = np.array([i % 3 for i in range(64)])
        out = np.zeros(3)
        np.add.at(out, index, arr)
        expect = [0.0, 0.0, 0.0]
        for i, p in zip(index, probes):
            expect[int(i)] += p
        if [float(x) for x in out] != expect:
            return False
    except Exception:  # pragma: no cover - defensive: any oddity disables
        return False
    return True


#: True when the accelerated paths may be used at all.
ENABLED = (
    np is not None
    and os.environ.get("REPRO_NO_ACCEL", "") != "1"
    and _self_check()
)


def enabled() -> bool:
    """Whether the accelerated kernels are active in this process."""
    return ENABLED


# ---------------------------------------------------------------------------
# Haversine-h machinery
# ---------------------------------------------------------------------------


def _scalar_distance_from_h(h: float) -> float:
    """The exact scalar finaliser: ``2R * asin(sqrt(min(1, h)))``."""
    return 2.0 * EARTH_RADIUS_M * math.asin(math.sqrt(min(1.0, h)))


def _float_bits(value: float) -> int:
    return struct.unpack("<q", struct.pack("<d", value))[0]


def _bits_float(bits: int) -> float:
    return struct.unpack("<d", struct.pack("<q", bits))[0]


def h_threshold(radius_m: float) -> float:
    """Largest ``h`` whose scalar distance is still ``<= radius_m``.

    The scalar distance is a nondecreasing function of ``h`` (every op
    in :func:`_scalar_distance_from_h` is correctly rounded and
    monotone), so ``distance <= radius_m`` is exactly ``h <= H*`` for
    the ``H*`` this bisection over float bit patterns finds.  One call
    costs ~64 scalar evaluations — amortised over a whole batch.
    """
    if radius_m < 0:
        return -math.inf
    if _scalar_distance_from_h(1.0) <= radius_m:
        return math.inf  # every h passes (min(1, h) saturates)
    lo, hi = _float_bits(0.0), _float_bits(1.0)
    # Invariant: d(lo) <= radius_m < d(hi).
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if _scalar_distance_from_h(_bits_float(mid)) <= radius_m:
            lo = mid
        else:
            hi = mid
    return _bits_float(lo)


# ---------------------------------------------------------------------------
# Grid-index batch queries
# ---------------------------------------------------------------------------


class _GridSnapshot:
    """Immutable array view of a :class:`GridIndex`'s points."""

    __slots__ = ("keys", "lats", "lons", "cos_phis", "index_of")

    def __init__(self, index: "GridIndex") -> None:
        points = index._points
        self.keys = list(points)
        self.lats = np.array(
            [points[key].lat for key in self.keys], dtype=np.float64
        )
        self.lons = np.array(
            [points[key].lon for key in self.keys], dtype=np.float64
        )
        self.cos_phis = np.cos(np.radians(self.lats))
        self.index_of = {key: i for i, key in enumerate(self.keys)}


def _snapshot(index: "GridIndex") -> _GridSnapshot:
    """The index's array snapshot, rebuilt after any mutation."""
    version = index._version
    cached = getattr(index, "_accel_snapshot", None)
    if cached is not None and cached[0] == version:
        return cached[1]
    snapshot = _GridSnapshot(index)
    index._accel_snapshot = (version, snapshot)
    return snapshot


def use_grid_batch(index: "GridIndex", centers: Sequence) -> bool:
    """Whether the batch kernels should serve this query."""
    return (
        ENABLED
        and len(centers) >= MIN_BATCH_CENTERS
        and 0 < len(index._points) <= MAX_SCAN_POINTS
    )


def _h_matrix(
    snapshot: _GridSnapshot, centers: Sequence["GeoPoint"]
) -> "np.ndarray":
    """(len(centers), n_points) haversine-``h`` values, bit-identical
    to the scalar inlined haversine in :meth:`GridIndex.within`."""
    qlats = np.array([center.lat for center in centers], dtype=np.float64)
    qlons = np.array([center.lon for center in centers], dtype=np.float64)
    cos_q = np.cos(np.radians(qlats))
    # Scalar order: sin(radians(plat - qlat) / 2.0) etc.; every step
    # below applies the same correctly-rounded op elementwise.
    sin_dphi = np.sin(np.radians(snapshot.lats[None, :] - qlats[:, None]) / 2.0)
    sin_dlam = np.sin(np.radians(snapshot.lons[None, :] - qlons[:, None]) / 2.0)
    # Same association as the scalar expression
    # ``cos_phi1 * cos_phi2 * sin_dlam * sin_dlam`` (left to right).
    return sin_dphi * sin_dphi + (
        (cos_q[:, None] * snapshot.cos_phis[None, :]) * sin_dlam
    ) * sin_dlam


def within_batch(
    index: "GridIndex", centers: Sequence["GeoPoint"], radius_m: float
) -> list:
    """Bit-identical batch :meth:`GridIndex.within`.

    Inclusion is decided entirely in ``h`` space against the exact
    :func:`h_threshold`; hit distances are finalised with the scalar
    ``math.asin`` so returned values match the scalar path bit for
    bit, ordering included.
    """
    if radius_m < 0:
        raise ValueError("radius_m must be non-negative")
    snapshot = _snapshot(index)
    threshold = h_threshold(radius_m)
    results: list = []
    for start in range(0, len(centers), CENTER_CHUNK):
        chunk = centers[start : start + CENTER_CHUNK]
        h = _h_matrix(snapshot, chunk)
        inside = h <= threshold
        for row in range(len(chunk)):
            hits = [
                (snapshot.keys[col], _scalar_distance_from_h(float(h[row, col])))
                for col in np.flatnonzero(inside[row])
            ]
            hits.sort(key=lambda pair: (pair[1], str(pair[0])))
            results.append(hits)
    return results


#: Candidates within this *relative* h margin of the minimum are
#: treated as potential distance ties.  Rounding through sqrt/asin can
#: only collapse h values within a few ulps (~1e-15 relative) onto one
#: distance; 1e-9 is conservative by six orders of magnitude.
_NEAR_TIE_RELATIVE_H = 1e-9


def nearest_batch(
    index: "GridIndex", centers: Sequence["GeoPoint"], exclude=None
) -> list:
    """Bit-identical batch :meth:`GridIndex.nearest`.

    The minimum is found in ``h`` space.  When a single candidate sits
    in the near-tie band the winner is certain and its distance is
    finalised scalar; an exact distance tie falls back to the scalar
    ring walk for that centre, which owns the tie-break order.
    """
    snapshot = _snapshot(index)
    exclude_column = snapshot.index_of.get(exclude)
    if len(snapshot.keys) - (0 if exclude_column is None else 1) <= 0:
        # Delegate the error path (EmptyRegionError) to the scalar walk.
        return [index.nearest(center, exclude) for center in centers]
    results: list = []
    for start in range(0, len(centers), CENTER_CHUNK):
        chunk = centers[start : start + CENTER_CHUNK]
        h = _h_matrix(snapshot, chunk)
        if exclude_column is not None:
            h[:, exclude_column] = math.inf
        h_min = h.min(axis=1)
        for row in range(len(chunk)):
            row_min = float(h_min[row])
            band = row_min + _NEAR_TIE_RELATIVE_H * row_min + 5e-324
            candidates = np.flatnonzero(h[row] <= band)
            if len(candidates) == 1:
                col = int(candidates[0])
                results.append(
                    (
                        snapshot.keys[col],
                        _scalar_distance_from_h(float(h[row, col])),
                    )
                )
                continue
            distances = [
                _scalar_distance_from_h(float(h[row, col]))
                for col in candidates
            ]
            best = min(distances)
            winners = [i for i, d in enumerate(distances) if d == best]
            if len(winners) == 1:
                col = int(candidates[winners[0]])
                results.append((snapshot.keys[col], best))
            else:
                # Exact distance tie: the scalar ring walk owns the
                # first-encountered tie-break.
                results.append(index.nearest(chunk[row], exclude))
    return results


# ---------------------------------------------------------------------------
# Polygon / region containment
# ---------------------------------------------------------------------------


def polygon_contains_batch(
    polygon: "Polygon", lats: "np.ndarray", lons: "np.ndarray"
) -> "np.ndarray":
    """Vectorised even-odd ray cast, bit-identical decisions.

    Every comparison and arithmetic op in the scalar
    :meth:`Polygon.contains` is pure IEEE arithmetic, replicated here
    elementwise in the same association order.
    """
    box = polygon.bounding_box
    in_box = (
        (box.south <= lats)
        & (lats <= box.north)
        & (box.west <= lons)
        & (lons <= box.east)
    )
    inside = np.zeros(len(lats), dtype=bool)
    vertices = polygon.vertices
    count = len(vertices)
    with np.errstate(divide="ignore", invalid="ignore"):
        for i in range(count):
            a = vertices[i]
            b = vertices[(i + 1) % count]
            ay, ax = a.lat, a.lon
            by, bx = b.lat, b.lon
            crosses = (ay > lats) != (by > lats)
            if by == ay:  # horizontal edge never crosses; skip the 0-div
                continue
            x_at_y = ax + (lats - ay) * (bx - ax) / (by - ay)
            inside ^= crosses & (lons < x_at_y)
    return in_box & inside


def region_contains_batch(
    region: "Region", lats: "np.ndarray", lons: "np.ndarray"
) -> "np.ndarray":
    """Vectorised :meth:`Region.contains` (shell minus holes)."""
    mask = polygon_contains_batch(region.shell, lats, lons)
    for hole in region.holes:
        mask &= ~polygon_contains_batch(hole, lats, lons)
    return mask


def in_dublin_batch(
    lats: Sequence[float], lons: Sequence[float]
) -> "np.ndarray":
    """Vectorised :func:`repro.geo.in_dublin` decision array."""
    from ..geo.dublin import DUBLIN_BBOX

    lat_arr = np.array(lats, dtype=np.float64)
    lon_arr = np.array(lons, dtype=np.float64)
    return (
        (DUBLIN_BBOX.south <= lat_arr)
        & (lat_arr <= DUBLIN_BBOX.north)
        & (DUBLIN_BBOX.west <= lon_arr)
        & (lon_arr <= DUBLIN_BBOX.east)
    )


def on_land_batch(
    lats: Sequence[float], lons: Sequence[float]
) -> "np.ndarray":
    """Vectorised :func:`repro.geo.on_land` decision array."""
    from ..geo.dublin import DUBLIN_LAND

    return region_contains_batch(
        DUBLIN_LAND,
        np.array(lats, dtype=np.float64),
        np.array(lons, dtype=np.float64),
    )


# ---------------------------------------------------------------------------
# Community kernels
# ---------------------------------------------------------------------------


def modularity(graph, partition, resolution: float = 1.0) -> float:
    """Bit-identical vectorised Newman modularity.

    The O(E) accumulations (node strengths, per-label strengths,
    intra-community weight) run through ``np.add.at`` in exactly the
    historical iteration order; the O(k) per-label tail stays scalar
    because CPython's ``** 2`` is not bit-identical to numpy's.

    Louvain's local-moving sweep is deliberately *not* vectorised: its
    sequential gain fold with eps-hysteresis tie handling is the spec
    the property tests pin, and a vectorised argmax cannot replay it.
    Louvain still benefits here through its final modularity call.
    """
    from ..exceptions import CommunityError

    assignment = partition.assignment
    nodes = list(graph.nodes())
    n = len(nodes)
    position = {node: i for i, node in enumerate(nodes)}
    owners: list[int] = []
    neighbour_pos: list[int] = []
    weights: list[float] = []
    loops = [0.0] * n
    for i, node in enumerate(nodes):
        neighbours = graph.neighbours(node)
        for other, weight in neighbours.items():
            owners.append(i)
            neighbour_pos.append(position[other])
            weights.append(weight)
        loops[i] = neighbours.get(node, 0.0)
    owner_arr = np.array(owners, dtype=np.intp)
    neighbour_arr = np.array(neighbour_pos, dtype=np.intp)
    weight_arr = np.array(weights, dtype=np.float64)

    # strength[i] = (left fold of i's adjacency weights) + loop weight,
    # exactly as ``sum(neighbours.values()) + neighbours.get(node, 0)``.
    strength = np.zeros(n, dtype=np.float64)
    np.add.at(strength, owner_arr, weight_arr)
    strength = strength + np.array(loops, dtype=np.float64)
    if n == 0:
        return 0.0
    total = float(np.add.accumulate(strength)[-1]) / 2.0
    if total <= 0:
        return 0.0

    compact: dict = {}
    label_ids = np.empty(n, dtype=np.intp)
    for i, node in enumerate(nodes):
        if node not in assignment:
            raise CommunityError(f"node {node!r} is not assigned to a community")
        label = assignment[node]
        if label not in compact:
            compact[label] = len(compact)  # first-appearance order
        label_ids[i] = compact[label]
    k = len(compact)
    label_strength = np.zeros(k, dtype=np.float64)
    np.add.at(label_strength, label_ids, strength)

    # Intra-community weight: the scalar double loop visits the flat
    # (owner, neighbour, weight) triples in exactly this order, so the
    # masked sequential scatter-add reproduces its folds.
    mask = (neighbour_arr >= owner_arr) & (
        label_ids[neighbour_arr] == label_ids[owner_arr]
    )
    intra = np.zeros(k, dtype=np.float64)
    np.add.at(intra, label_ids[owner_arr][mask], weight_arr[mask])

    two_m = 2.0 * total
    score = 0.0
    for label_id in range(k):  # scalar tail: CPython ** 2 semantics
        score += (
            float(intra[label_id]) / total
            - resolution * (float(label_strength[label_id]) / two_m) ** 2
        )
    return score


def use_modularity(graph) -> bool:
    """Whether the vectorised modularity kernel should serve a graph."""
    if not ENABLED:
        return False
    try:
        return len(graph._adj) >= MIN_MODULARITY_NODES
    except AttributeError:
        return False
