"""Reference (pre-optimisation) kernel implementations.

These are verbatim snapshots of the hot kernels as they stood before
the :mod:`repro.perf` optimisation pass:

* :func:`baseline_louvain` — Louvain with the per-move ``sorted()``
  neighbour-community scan and uncached strengths;
* :func:`baseline_within` / :func:`baseline_nearest` — grid queries
  that run exact haversine on every candidate and rescan all occupied
  cells per ``nearest`` call;
* :data:`BASELINE_STAGES` — the expansion DAG with the per-location
  ``nearest`` loop in network assembly and per-stage trip-triple
  materialisation for G_Day/G_Hour.

They exist for two reasons.  The benchmark harness
(:mod:`repro.perf.bench`) measures every optimised kernel *against*
its reference on the same workload, so the speedups recorded in
``BENCH_pipeline.json`` stay reproducible on any machine.  And the
exactness tests assert the optimised kernels return bit-identical
results to these references — the optimisations are rewrites, not
approximations.

The :func:`baseline_kernels` context manager patches the references
into the live modules, letting the full pipeline run end-to-end on
pre-optimisation kernels for the baseline trajectory entry.
"""

from __future__ import annotations

import math
import random
from contextlib import contextmanager
from typing import Iterator

from ..community.louvain import LouvainResult
from ..community.partition import Partition
from ..community.temporal import detect_temporal_communities
from ..config import CommunityConfig
from ..core.graphs import SelectedNetwork, Station, TripOD, KIND_FIXED, KIND_SELECTED
from ..core.selection import select_stations
from ..exceptions import CommunityError, EmptyRegionError
from ..geo.distance import haversine_m
from ..geo.index import GridIndex
from ..graphdb import NodeKey, WeightedGraph
from ..pipeline.stage import Stage

#: Louvain's strict-improvement threshold (identical to the live kernel).
_GAIN_EPS = 1e-12


# ---------------------------------------------------------------------------
# Louvain (pre-rewrite local-moving state + modularity)
# ---------------------------------------------------------------------------


def baseline_modularity(
    graph: WeightedGraph, partition: Partition, resolution: float = 1.0
) -> float:
    """The pre-rewrite modularity: ``edges()`` + per-edge partition
    lookups + per-node ``strength()`` recomputation."""
    total = graph.total_weight
    if total <= 0:
        return 0.0
    intra: dict[int, float] = {}
    strength: dict[int, float] = {}
    for node in graph.nodes():
        if node not in partition:
            raise CommunityError(f"node {node!r} is not assigned to a community")
        label = partition[node]
        strength[label] = strength.get(label, 0.0) + graph.strength(node)
    for u, v, weight in graph.edges():
        if partition[u] == partition[v]:
            label = partition[u]
            intra[label] = intra.get(label, 0.0) + weight
    two_m = 2.0 * total
    score = 0.0
    for label, deg in strength.items():
        score += intra.get(label, 0.0) / total - resolution * (deg / two_m) ** 2
    return score


class BaselineLocalState:
    """The original dict-keyed local-moving pass with ``sorted()`` scans."""

    def __init__(self, graph: WeightedGraph, resolution: float) -> None:
        self.graph = graph
        self.resolution = resolution
        self.m = graph.total_weight
        if self.m <= 0:
            raise CommunityError("Louvain needs a graph with positive weight")
        self.community: dict[NodeKey, int] = {}
        self.comm_strength: dict[int, float] = {}
        for index, node in enumerate(graph.nodes()):
            self.community[node] = index
            self.comm_strength[index] = graph.strength(node)

    def neighbour_community_weights(self, node: NodeKey) -> dict[int, float]:
        weights: dict[int, float] = {}
        for neighbour, weight in self.graph.neighbours(node).items():
            if neighbour == node:
                continue
            label = self.community[neighbour]
            weights[label] = weights.get(label, 0.0) + weight
        return weights

    def move_node(self, node: NodeKey) -> bool:
        current = self.community[node]
        strength = self.graph.strength(node)
        neighbour_weights = self.neighbour_community_weights(node)

        self.comm_strength[current] -= strength
        weight_to_current = neighbour_weights.get(current, 0.0)

        best_label = current
        best_gain = weight_to_current - (
            self.resolution * strength * self.comm_strength[current] / (2.0 * self.m)
        )
        for label, weight in sorted(
            neighbour_weights.items(), key=lambda item: item[0]
        ):
            if label == current:
                continue
            gain = weight - (
                self.resolution * strength * self.comm_strength[label] / (2.0 * self.m)
            )
            if gain > best_gain + _GAIN_EPS:
                best_gain = gain
                best_label = label

        self.community[node] = best_label
        self.comm_strength[best_label] = (
            self.comm_strength.get(best_label, 0.0) + strength
        )
        return best_label != current

    def one_pass(self, rng: random.Random) -> bool:
        nodes = list(self.graph.nodes())
        rng.shuffle(nodes)
        moved = False
        for node in nodes:
            if self.move_node(node):
                moved = True
        return moved


def _baseline_aggregate(
    graph: WeightedGraph, community: dict[NodeKey, int]
) -> WeightedGraph:
    meta = WeightedGraph()
    for node in graph.nodes():
        meta.add_node(community[node])
    for u, v, weight in graph.edges():
        meta.add_edge(community[u], community[v], weight)
    return meta


def baseline_louvain(
    graph: WeightedGraph, config: CommunityConfig | None = None
) -> LouvainResult:
    """The pre-rewrite Louvain, kept bit-for-bit."""
    cfg = config or CommunityConfig()
    rng = random.Random(cfg.seed)

    mapping: dict[NodeKey, NodeKey] = {node: node for node in graph.nodes()}
    working = graph
    levels: list[Partition] = []

    for _ in range(cfg.max_passes):
        state = BaselineLocalState(working, cfg.resolution)
        improved_any = False
        for _ in range(cfg.max_passes):
            if not state.one_pass(rng):
                break
            improved_any = True
        if not improved_any:
            break
        labels = sorted(set(state.community.values()))
        compact = {label: index for index, label in enumerate(labels)}
        community = {node: compact[label] for node, label in state.community.items()}
        mapping = {node: community[mapping[node]] for node in mapping}
        levels.append(Partition.from_assignment(mapping))
        if len(labels) == len(state.community):
            break
        working = _baseline_aggregate(working, community)

    if not levels:
        levels.append(
            Partition.from_assignment(
                {node: index for index, node in enumerate(graph.nodes())}
            )
        )
        mapping = dict(levels[-1].assignment)

    final = levels[-1]
    return LouvainResult(
        partition=final,
        modularity=baseline_modularity(graph, final, cfg.resolution),
        levels=tuple(levels),
    )


# ---------------------------------------------------------------------------
# Grid queries (pre-prefilter)
# ---------------------------------------------------------------------------


def baseline_within(index: GridIndex, center, radius_m: float):
    """``GridIndex.within`` running exact haversine on every candidate."""
    if radius_m < 0:
        raise ValueError("radius_m must be non-negative")
    lat_span = math.ceil(radius_m / index._cell_m)
    lon_span = lat_span
    row0, col0 = index._cell_of(center)
    hits = []
    for row in range(row0 - lat_span, row0 + lat_span + 1):
        for col in range(col0 - lon_span, col0 + lon_span + 1):
            bucket = index._cells.get((row, col))
            if not bucket:
                continue
            for key, entry in bucket.items():
                distance = haversine_m(center, entry[0])
                if distance <= radius_m:
                    hits.append((key, distance))
    hits.sort(key=lambda pair: (pair[1], str(pair[0])))
    return hits


def _baseline_extent_rings(index: GridIndex, row0: int, col0: int) -> int:
    """Pre-rewrite extent scan: walks every occupied cell per query."""
    spread = 0
    for row, col in index._cells:
        spread = max(spread, abs(row - row0), abs(col - col0))
    return spread + 1


def _baseline_ring_cells(row0: int, col0: int, ring: int):
    if ring == 0:
        yield (row0, col0)
        return
    for col in range(col0 - ring, col0 + ring + 1):
        yield (row0 - ring, col)
        yield (row0 + ring, col)
    for row in range(row0 - ring + 1, row0 + ring):
        yield (row, col0 - ring)
        yield (row, col0 + ring)


def baseline_nearest(index: GridIndex, center, exclude=None):
    """``GridIndex.nearest`` with the per-query full-extent scan."""
    eligible = len(index._points) - (1 if exclude in index._points else 0)
    if eligible <= 0:
        raise EmptyRegionError("nearest() on an empty index")
    row0, col0 = index._cell_of(center)
    best_key = None
    best_distance = math.inf
    last_ring = _baseline_extent_rings(index, row0, col0)
    ring = 0
    while ring <= last_ring:
        for row, col in _baseline_ring_cells(row0, col0, ring):
            bucket = index._cells.get((row, col))
            if not bucket:
                continue
            for key, entry in bucket.items():
                if key == exclude:
                    continue
                distance = haversine_m(center, entry[0])
                if distance < best_distance:
                    best_key = key
                    best_distance = distance
        if best_key is not None:
            safe_rings = math.ceil(best_distance / index._cell_m) + 1
            if ring >= safe_rings:
                break
        ring += 1
    if best_key is None:
        raise EmptyRegionError("nearest() found no eligible key")
    return best_key, best_distance


def baseline_proximity_components(
    ids: list[int], points: dict, threshold_m: float
) -> list[list[int]]:
    """Pre-rewrite proximity components: BFS with a sorted ``within``
    query per visited point (the rewrite unions grid pairs instead)."""
    index: GridIndex[int] = GridIndex(cell_m=max(25.0, threshold_m))
    for location_id in ids:
        index.insert(location_id, points[location_id])
    remaining = set(ids)
    components: list[list[int]] = []
    for seed in ids:
        if seed not in remaining:
            continue
        remaining.discard(seed)
        component = [seed]
        frontier = [seed]
        while frontier:
            current = frontier.pop()
            for neighbour_id, _ in baseline_within(
                index, points[current], threshold_m
            ):
                if neighbour_id in remaining:
                    remaining.discard(neighbour_id)
                    component.append(neighbour_id)
                    frontier.append(neighbour_id)
        components.append(sorted(component))
    components.sort(key=lambda component: component[0])
    return components


def baseline_preassign_to_stations(
    location_points: dict, station_points: dict, radius_m: float
) -> tuple[dict, list]:
    """Pre-rewrite pre-assignment: one sorted ``within`` per location."""
    index: GridIndex[int] = GridIndex(cell_m=max(50.0, radius_m))
    for station_id, point in station_points.items():
        index.insert(station_id, point)
    station_members: dict[int, list[int]] = {
        station_id: [] for station_id in station_points
    }
    leftover: list[int] = []
    for location_id in sorted(location_points):
        if location_id in station_points:
            station_members[location_id].append(location_id)
            continue
        hits = baseline_within(index, location_points[location_id], radius_m)
        if hits:
            nearest_station, _ = hits[0]
            station_members[nearest_station].append(location_id)
        else:
            leftover.append(location_id)
    return station_members, leftover


def baseline_pairwise_haversine_matrix(points) -> "np.ndarray":
    """The pre-rewrite textbook broadcast formula (fresh temporaries)."""
    import numpy as np

    from ..config import EARTH_RADIUS_M

    lats = np.radians(np.array([point.lat for point in points], dtype=np.float64))
    lons = np.radians(np.array([point.lon for point in points], dtype=np.float64))
    dlat = lats[:, None] - lats[None, :]
    dlon = lons[:, None] - lons[None, :]
    sin_dlat = np.sin(dlat / 2.0)
    sin_dlon = np.sin(dlon / 2.0)
    h = sin_dlat**2 + np.cos(lats)[:, None] * np.cos(lats)[None, :] * sin_dlon**2
    np.clip(h, 0.0, 1.0, out=h)
    return 2.0 * EARTH_RADIUS_M * np.arcsin(np.sqrt(h))


# ---------------------------------------------------------------------------
# Cleaning + candidate build (pre trusted-copy / raw-row scans)
# ---------------------------------------------------------------------------


def baseline_clean_dataset(raw):
    """The pre-rewrite cleaning: validated record-by-record copy and
    record-materialising rule scans."""
    from ..data.cleaning import (
        ALL_RULES,
        CleaningReport,
        RuleOutcome,
        _drop_locations,
        _location_admissible,
    )
    from ..data.dataset import MobyDataset
    from ..geo import in_dublin, on_land

    dataset = MobyDataset.from_records(raw.locations(), raw.rentals())
    report = CleaningReport(before=raw.summary(), after=raw.summary())

    for rule, oracle in ((ALL_RULES[0], in_dublin), (ALL_RULES[1], on_land)):
        outcome = RuleOutcome(rule)
        doomed = {
            record.location_id
            for record in dataset.locations()
            if not _location_admissible(record, oracle)
        }
        _drop_locations(dataset, doomed, outcome)
        report.outcomes.append(outcome)

    outcome = RuleOutcome(ALL_RULES[2])
    doomed = {
        record.location_id
        for record in dataset.locations()
        if not record.has_coordinates
    }
    _drop_locations(dataset, doomed, outcome)
    report.outcomes.append(outcome)

    outcome = RuleOutcome(ALL_RULES[3])
    doomed_rentals = [
        rental.rental_id
        for rental in dataset.rentals()
        if not rental.has_location_ids
    ]
    for rental_id in doomed_rentals:
        dataset.remove_rental(rental_id)
    outcome.rentals_removed = len(doomed_rentals)
    report.outcomes.append(outcome)

    outcome = RuleOutcome(ALL_RULES[4])
    doomed_rentals = [
        rental.rental_id
        for rental in dataset.rentals()
        if not (
            dataset.has_location(rental.rental_location_id)
            and dataset.has_location(rental.return_location_id)
        )
    ]
    for rental_id in doomed_rentals:
        dataset.remove_rental(rental_id)
    outcome.rentals_removed = len(doomed_rentals)
    report.outcomes.append(outcome)

    outcome = RuleOutcome(ALL_RULES[5])
    referenced: set[int] = set()
    for rental in dataset.rentals():
        if rental.rental_location_id is not None:
            referenced.add(rental.rental_location_id)
        if rental.return_location_id is not None:
            referenced.add(rental.return_location_id)
    doomed_locations = [
        record.location_id
        for record in dataset.locations()
        if record.location_id not in referenced
    ]
    for location_id in doomed_locations:
        dataset.remove_location(location_id)
    outcome.locations_removed = len(doomed_locations)
    report.outcomes.append(outcome)

    dataset.db.check_integrity()
    report.after = dataset.summary()
    return dataset, report


def baseline_build_candidate_network(cleaned, config=None):
    """The pre-rewrite candidate build: a RentalRecord per trip.

    Delegates clustering to ``hac.cluster_locations`` — run inside
    :func:`baseline_kernels` so the HAC internals it reaches are the
    reference ones too.
    """
    from ..cluster import hac as hac_mod
    from ..core.candidates import CandidateNetwork
    from ..graphdb import DirectedGraph

    cfg = config if config is not None else hac_mod.ClusteringConfig()
    location_points = {
        record.location_id: record.point() for record in cleaned.locations()
    }
    station_points = {
        record.location_id: record.point() for record in cleaned.stations()
    }
    clustering = hac_mod.cluster_locations(location_points, station_points, cfg)
    location_to_group = clustering.assignment()

    flow = DirectedGraph()
    for station_id in station_points:
        flow.add_node(("station", station_id))
    cluster_centroids = {}
    for cluster in clustering.clusters:
        cluster_centroids[cluster.cluster_id] = cluster.centroid
        flow.add_node(("cluster", cluster.cluster_id))

    n_trips = 0
    for rental in cleaned.rentals():
        origin = location_to_group[rental.rental_location_id]
        destination = location_to_group[rental.return_location_id]
        flow.add_edge(origin, destination, 1.0)
        n_trips += 1

    return CandidateNetwork(
        clustering=clustering,
        flow=flow,
        location_to_group=location_to_group,
        station_points=station_points,
        cluster_centroids=cluster_centroids,
        n_trips=n_trips,
    )


# ---------------------------------------------------------------------------
# Network assembly + temporal stage bodies (pre one-pass slicing)
# ---------------------------------------------------------------------------


def baseline_build_selected_network(cleaned, candidates, selection) -> SelectedNetwork:
    """Pre-rewrite assembly: one ``nearest`` query per cleaned location."""
    stations: dict[int, Station] = {}
    for station_id, point in candidates.station_points.items():
        name = cleaned.location(station_id).name
        stations[station_id] = Station(
            station_id=station_id,
            point=point,
            kind=KIND_FIXED,
            name=name or f"Station {station_id}",
        )
    next_id = max(stations) + 1 if stations else 0
    for cluster_id in selection.selected_cluster_ids:
        stations[next_id] = Station(
            station_id=next_id,
            point=candidates.cluster_centroids[cluster_id],
            kind=KIND_SELECTED,
            name=f"New station {next_id} (cluster {cluster_id})",
            source_cluster_id=cluster_id,
        )
        next_id += 1

    station_index: GridIndex[int] = GridIndex(cell_m=250.0)
    for station_id, station in stations.items():
        station_index.insert(station_id, station.point)
    location_to_station: dict[int, int] = {}
    for record in cleaned.locations():
        location_to_station[record.location_id], _ = baseline_nearest(
            station_index, record.point()
        )

    trips: list[TripOD] = []
    for rental in cleaned.rentals():
        trips.append(
            TripOD(
                origin=location_to_station[rental.rental_location_id],
                destination=location_to_station[rental.return_location_id],
                day_of_week=rental.day_of_week,
                hour_of_day=rental.hour_of_day,
            )
        )
    return SelectedNetwork(
        stations=stations,
        location_to_station=location_to_station,
        trips=trips,
    )


def _baseline_stage_clean(runner) -> tuple:
    return baseline_clean_dataset(runner.raw)


def _baseline_stage_candidates(runner, clean):
    cleaned = clean[0]
    return baseline_build_candidate_network(cleaned, runner.config.clustering)


def _baseline_stage_selection(runner, candidates):
    return select_stations(candidates, runner.config.selection)


def _baseline_stage_network(runner, clean, candidates, selection):
    cleaned = clean[0]
    return baseline_build_selected_network(cleaned, candidates, selection)


def _baseline_stage_basic(runner, network):
    return baseline_louvain(network.g_basic(), runner.config.community)


def _baseline_stage_day(runner, network):
    return detect_temporal_communities(
        network.day_sliced_trips(), 7, runner.config.temporal, mapper=runner.map
    )


def _baseline_stage_hour(runner, network):
    return detect_temporal_communities(
        network.hour_sliced_trips(), 24, runner.config.temporal, mapper=runner.map
    )


#: The expansion DAG over reference kernels (feed ``PipelineRunner(stages=...)``
#: inside :func:`baseline_kernels`; serial use only — bodies are not picklable
#: promises, and measurements want one core anyway).
BASELINE_STAGES: tuple[Stage, ...] = (
    Stage("clean", (), _baseline_stage_clean),
    Stage("candidates", ("clean",), _baseline_stage_candidates, ("clustering",)),
    Stage("selection", ("candidates",), _baseline_stage_selection, ("selection",)),
    Stage("network", ("clean", "candidates", "selection"), _baseline_stage_network),
    Stage("basic", ("network",), _baseline_stage_basic, ("community",)),
    Stage("day", ("network",), _baseline_stage_day, ("temporal",)),
    Stage("hour", ("network",), _baseline_stage_hour, ("temporal",)),
)


@contextmanager
def baseline_kernels() -> Iterator[None]:
    """Patch the reference kernels into the live modules.

    Inside the context every ``GridIndex`` query, every Louvain call
    (direct or through the temporal stages) and every HAC internal
    (pre-assignment, proximity components, the pairwise matrix,
    validated linkage) runs the pre-optimisation code path; combined
    with :data:`BASELINE_STAGES` (reference cleaning, candidate build
    and network assembly), a full pipeline run measures the pre-PR
    baseline on today's machine.  Not thread-safe; bench-harness use
    only.
    """
    from ..cluster import hac as hac_mod
    from ..cluster.linkage import linkage_cluster
    from ..community import temporal as temporal_mod
    from ..pipeline import runner as runner_mod

    def within(self, center, radius_m):
        return baseline_within(self, center, radius_m)

    def nearest(self, center, exclude=None):
        return baseline_nearest(self, center, exclude)

    def within_many(self, centers, radius_m):
        return [baseline_within(self, center, radius_m) for center in centers]

    def nearest_many(self, centers, exclude=None):
        return [baseline_nearest(self, center, exclude) for center in centers]

    def validated_linkage(distances, linkage="complete", *, validate=True):
        # The pre-rewrite call always validated the matrix.
        return linkage_cluster(distances, linkage)

    patches = [
        (GridIndex, "within", within),
        (GridIndex, "nearest", nearest),
        (GridIndex, "within_many", within_many),
        (GridIndex, "nearest_many", nearest_many),
        (temporal_mod, "louvain", baseline_louvain),
        (runner_mod, "louvain", baseline_louvain),
        (hac_mod, "proximity_components", baseline_proximity_components),
        (hac_mod, "preassign_to_stations", baseline_preassign_to_stations),
        (hac_mod, "pairwise_haversine_matrix", baseline_pairwise_haversine_matrix),
        (hac_mod, "linkage_cluster", validated_linkage),
    ]
    saved = [(target, name, getattr(target, name)) for target, name, _ in patches]
    for target, name, replacement in patches:
        setattr(target, name, replacement)
    try:
        yield
    finally:
        for target, name, original in saved:
            setattr(target, name, original)
