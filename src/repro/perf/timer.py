"""Zero-dependency pipeline instrumentation.

:class:`StageTimer` measures named sections on the monotonic clock
(``time.perf_counter``).  Sections nest — each thread keeps its own
stack, so a stage timed on a worker thread attributes its children
correctly — and repeated sections aggregate (wall time summed, calls
counted).  A disabled timer is a no-op whose ``section`` context
costs two attribute reads, so instrumentation can stay threaded
through the hot path permanently.

:class:`PerfReport` is the immutable result: a tree of
``(name, wall_s, calls, meta)`` nodes, JSON-safe via :meth:`to_dict`
and printable via :meth:`render`.  The benchmark harness
(:mod:`repro.perf.bench`) persists these blocks into
``BENCH_pipeline.json``.
"""

from __future__ import annotations

import copy
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator, Mapping


class _Node:
    """One mutable aggregation node of the timing tree."""

    __slots__ = ("name", "wall_s", "calls", "meta", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.wall_s = 0.0
        self.calls = 0
        self.meta: dict[str, Any] = {}
        self.children: dict[str, _Node] = {}

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "name": self.name,
            "wall_s": self.wall_s,
            "calls": self.calls,
        }
        if self.meta:
            # Deep copy: meta values can be containers that aggregating
            # paths keep mutating after the snapshot is handed out; a
            # report must be a frozen record, not a live view.
            payload["meta"] = copy.deepcopy(self.meta)
        if self.children:
            payload["children"] = [
                child.to_dict() for child in self.children.values()
            ]
        return payload


class PerfReport:
    """A frozen snapshot of a :class:`StageTimer`'s tree."""

    def __init__(self, sections: list[dict[str, Any]]) -> None:
        self.sections = sections

    @property
    def total_s(self) -> float:
        """Summed wall time of the top-level sections."""
        return sum(section["wall_s"] for section in self.sections)

    def section(self, name: str) -> dict[str, Any] | None:
        """A top-level section by name, or None."""
        for section in self.sections:
            if section["name"] == name:
                return section
        return None

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe envelope (the ``timings`` block)."""
        return {
            "type": "PerfReport",
            "total_s": self.total_s,
            "sections": self.sections,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PerfReport":
        """Rebuild from :meth:`to_dict` output."""
        return cls(sections=list(payload.get("sections", [])))

    def render(self, indent: int = 0) -> str:
        """A readable fixed-width tree of the recorded sections."""
        lines: list[str] = []

        def walk(node: dict[str, Any], depth: int) -> None:
            label = "  " * depth + node["name"]
            calls = node["calls"]
            suffix = f" x{calls}" if calls > 1 else ""
            meta = node.get("meta") or {}
            tags = "".join(f" [{key}={value}]" for key, value in meta.items())
            lines.append(
                f"{' ' * indent}{label:<40} {node['wall_s']:>9.3f}s{suffix}{tags}"
            )
            for child in node.get("children", ()):
                walk(child, depth + 1)

        for section in self.sections:
            walk(section, 0)
        lines.append(f"{' ' * indent}{'total':<40} {self.total_s:>9.3f}s")
        return "\n".join(lines)


class StageTimer:
    """Aggregating, nestable, thread-aware wall-clock timer."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._mutex = threading.Lock()
        self._top: dict[str, _Node] = {}
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def _stack(self) -> list[_Node]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _child(self, name: str) -> _Node:
        stack = self._stack()
        with self._mutex:
            siblings = stack[-1].children if stack else self._top
            node = siblings.get(name)
            if node is None:
                node = siblings[name] = _Node(name)
        return node

    @contextmanager
    def section(self, name: str, **meta: Any) -> Iterator[None]:
        """Time a section; nested sections become children of it."""
        if not self.enabled:
            yield
            return
        node = self._child(name)
        stack = self._stack()
        stack.append(node)
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            stack.pop()
            with self._mutex:
                node.wall_s += elapsed
                node.calls += 1
                if meta:
                    node.meta.update(meta)

    def add(self, name: str, wall_s: float, calls: int = 1, **meta: Any) -> None:
        """Record an externally measured duration under ``name``."""
        if not self.enabled:
            return
        node = self._child(name)
        with self._mutex:
            node.wall_s += wall_s
            node.calls += calls
            if meta:
                node.meta.update(meta)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def report(self) -> PerfReport:
        """Snapshot the tree (safe to call while sections still run)."""
        with self._mutex:
            return PerfReport([node.to_dict() for node in self._top.values()])


#: A shared disabled timer for call sites that always pass one.
NULL_TIMER = StageTimer(enabled=False)
