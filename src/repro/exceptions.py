"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  Sub-hierarchies mirror the
package layout: data-layer errors, graph errors, clustering errors and
pipeline (core) errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A configuration object holds an invalid or inconsistent value."""


# ---------------------------------------------------------------------------
# Geospatial layer
# ---------------------------------------------------------------------------


class GeoError(ReproError):
    """Base class for geospatial errors."""


class InvalidCoordinateError(GeoError):
    """A latitude/longitude pair is outside the valid WGS-84 ranges."""


class EmptyRegionError(GeoError):
    """A spatial query or construction received an empty region."""


# ---------------------------------------------------------------------------
# Data layer
# ---------------------------------------------------------------------------


class DataError(ReproError):
    """Base class for relational-layer errors."""


class SchemaError(DataError):
    """A row does not match the table schema."""


class DuplicateKeyError(DataError):
    """An insert would violate a unique (primary-key) constraint."""


class MissingRowError(DataError):
    """A lookup referenced a primary key that is not present."""


class ReferentialIntegrityError(DataError):
    """A foreign-key reference points at a non-existent row."""


# ---------------------------------------------------------------------------
# Graph layer
# ---------------------------------------------------------------------------


class GraphError(ReproError):
    """Base class for property-graph errors."""


class MissingNodeError(GraphError):
    """An operation referenced a node id that is not in the graph."""


class MissingRelationshipError(GraphError):
    """An operation referenced a relationship id that is not in the graph."""


# ---------------------------------------------------------------------------
# Clustering / community layers
# ---------------------------------------------------------------------------


class ClusteringError(ReproError):
    """Base class for clustering errors."""


class CommunityError(ReproError):
    """Base class for community-detection errors."""


# ---------------------------------------------------------------------------
# Pipeline layer
# ---------------------------------------------------------------------------


class PipelineError(ReproError):
    """A stage of the expansion pipeline was invoked out of order."""


class PipelineCancelledError(PipelineError):
    """A pipeline run observed its cancellation check at a stage boundary.

    Raised *between* stages, never inside a stage body, so every value
    already computed was stored atomically and the stage cache stays
    consistent.
    """


# ---------------------------------------------------------------------------
# Storage layer
# ---------------------------------------------------------------------------


class StoreError(ReproError):
    """Base class for errors raised by the :mod:`repro.store` subsystem."""


class StoreKeyError(StoreError, ValueError):
    """A storage key does not match its namespace's canonical encoding.

    Also a :class:`ValueError`, so surfaces that validated keys before
    the storage subsystem existed (HTTP 400 on a malformed result
    fingerprint) keep working unchanged.
    """


class StoreQuotaError(StoreError):
    """An entry cannot be stored within the namespace's byte/entry quotas.

    Only raised by namespaces configured to *reject* oversized entries;
    quota-bounded caches silently evict instead.
    """


# ---------------------------------------------------------------------------
# Service layer
# ---------------------------------------------------------------------------


class ServiceError(ReproError):
    """A scenario/job request to the service layer was invalid or failed."""


class JobFailedError(ServiceError):
    """A submitted job finished with an error; the message carries it."""


class JobTimeoutError(JobFailedError):
    """A submitted job exceeded its deadline or went stale (HTTP sees
    the ``timeout`` terminal state)."""


class JobCancelledError(ServiceError):
    """A submitted job was cancelled before it produced an envelope."""


class ServiceOverloadedError(ServiceError):
    """The service's admission queue is full (HTTP 429 + Retry-After).

    ``retry_after_s`` is the back-off hint clients receive.
    """

    def __init__(self, message: str, *, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class DatasetTooLargeError(ServiceError):
    """A dataset upload exceeds the store's size caps (HTTP 413)."""


class DatasetConflictError(ServiceError):
    """An append violates the dataset's id-monotonicity contract (HTTP 409).

    Appended rental ids must strictly exceed every stored id: that is
    what makes the appended log iterate identically to the same rows
    ingested in one shot, which the incremental recompute path relies
    on.  Out-of-range ids must be re-pushed as a full ``PUT``.
    """
