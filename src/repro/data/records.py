"""Typed records mirroring Moby's two SQL tables (paper Section III).

The operator's database has a *Rental* table (one row per logged rental,
62,324 rows in the paper) and a *Location* table (one row per distinct
pick-up or drop-off location, 14,239 rows).  Fixed charging stations are
locations flagged ``is_station``.

Raw records may be dirty — missing coordinates, dangling foreign keys —
because exercising the cleaning rules requires representing the mess.
``lat``/``lon`` are therefore optional on :class:`LocationRecord` and
the id references on :class:`RentalRecord` are optional too.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime

from ..geo import GeoPoint


@dataclass(frozen=True)
class LocationRecord:
    """One row of the Location table.

    Attributes
    ----------
    location_id:
        Primary key.
    lat, lon:
        WGS-84 coordinates; ``None`` models the paper's "missing
        latitude or longitude" dirty rows.
    is_station:
        True for Moby's fixed charging stations.
    name:
        Human-readable label (stations are named; ad-hoc locations
        carry an empty string).
    """

    location_id: int
    lat: float | None
    lon: float | None
    is_station: bool = False
    name: str = ""

    @property
    def has_coordinates(self) -> bool:
        """True when both coordinates are present."""
        return self.lat is not None and self.lon is not None

    def point(self) -> GeoPoint:
        """The record's position; raises TypeError when coordinates are missing."""
        if not self.has_coordinates:
            raise TypeError(
                f"location {self.location_id} has no coordinates"
            )
        return GeoPoint(float(self.lat), float(self.lon))  # type: ignore[arg-type]


@dataclass(frozen=True)
class RentalRecord:
    """One row of the Rental table.

    Attributes
    ----------
    rental_id:
        Primary key.
    bike_id:
        Identifier of the e-bike used.
    started_at, ended_at:
        Rental start / end timestamps.
    rental_location_id, return_location_id:
        Foreign keys into the Location table; ``None`` models the
        paper's "does not report a Rental/Return Location ID" dirty rows.
    """

    rental_id: int
    bike_id: int
    started_at: datetime
    ended_at: datetime
    rental_location_id: int | None
    return_location_id: int | None

    @property
    def has_location_ids(self) -> bool:
        """True when both foreign keys are present."""
        return (
            self.rental_location_id is not None
            and self.return_location_id is not None
        )

    @property
    def duration_minutes(self) -> float:
        """Rental duration in minutes (may be zero for bad rows)."""
        return (self.ended_at - self.started_at).total_seconds() / 60.0

    @property
    def day_of_week(self) -> int:
        """ISO day of week of the start time: Monday=0 .. Sunday=6."""
        return self.started_at.weekday()

    @property
    def hour_of_day(self) -> int:
        """Hour of day (0-23) when the rental started."""
        return self.started_at.hour
