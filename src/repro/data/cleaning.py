"""The six-rule cleaning pipeline from the paper (Section III).

The paper removes, in order:

1. Locations outside Dublin, and rentals that started or ended there.
2. Locations that are not on land, and associated rentals.
3. Locations missing latitude or longitude, and associated rentals.
4. Rentals that do not report a Rental or Return Location ID.
5. Rentals whose Rental/Return Location ID is not in the Location table.
6. Locations never referenced by any remaining rental.

Cleaning is non-destructive: :func:`clean_dataset` builds a fresh
:class:`~repro.data.dataset.MobyDataset` and returns it together with a
:class:`CleaningReport` recording exactly what each rule removed, so a
Table-I style before/after comparison falls straight out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..geo import GeoPoint, in_dublin, on_land
from ..serialize import check_envelope
from .dataset import DatasetSummary, MobyDataset
from .records import LocationRecord, RentalRecord

#: Rule identifiers, in application order.
RULE_OUTSIDE_DUBLIN = "outside_dublin"
RULE_NOT_ON_LAND = "not_on_land"
RULE_MISSING_COORDINATES = "missing_coordinates"
RULE_MISSING_LOCATION_ID = "missing_location_id"
RULE_DANGLING_LOCATION_ID = "dangling_location_id"
RULE_UNREFERENCED_LOCATION = "unreferenced_location"

ALL_RULES = (
    RULE_OUTSIDE_DUBLIN,
    RULE_NOT_ON_LAND,
    RULE_MISSING_COORDINATES,
    RULE_MISSING_LOCATION_ID,
    RULE_DANGLING_LOCATION_ID,
    RULE_UNREFERENCED_LOCATION,
)


@dataclass
class RuleOutcome:
    """What one rule removed."""

    rule: str
    locations_removed: int = 0
    rentals_removed: int = 0


@dataclass
class CleaningReport:
    """Audit trail of a cleaning run, including Table-I counts."""

    before: DatasetSummary
    after: DatasetSummary
    outcomes: list[RuleOutcome] = field(default_factory=list)

    @property
    def total_locations_removed(self) -> int:
        """Locations removed across all rules."""
        return sum(outcome.locations_removed for outcome in self.outcomes)

    @property
    def total_rentals_removed(self) -> int:
        """Rentals removed across all rules."""
        return sum(outcome.rentals_removed for outcome in self.outcomes)

    def outcome(self, rule: str) -> RuleOutcome:
        """Fetch the outcome of one named rule."""
        for outcome in self.outcomes:
            if outcome.rule == rule:
                return outcome
        raise KeyError(f"no outcome recorded for rule {rule!r}")

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe envelope (Table-I counts + per-rule removals)."""
        return {
            "type": "CleaningReport",
            "before": self.before.to_dict(),
            "after": self.after.to_dict(),
            "outcomes": [
                {
                    "rule": outcome.rule,
                    "locations_removed": outcome.locations_removed,
                    "rentals_removed": outcome.rentals_removed,
                }
                for outcome in self.outcomes
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CleaningReport":
        """Exact inverse of :meth:`to_dict`."""
        check_envelope(payload, "CleaningReport")
        return cls(
            before=DatasetSummary.from_dict(payload["before"]),
            after=DatasetSummary.from_dict(payload["after"]),
            outcomes=[
                RuleOutcome(
                    rule=outcome["rule"],
                    locations_removed=outcome["locations_removed"],
                    rentals_removed=outcome["rentals_removed"],
                )
                for outcome in payload["outcomes"]
            ],
        )


def _location_admissible(record: LocationRecord, oracle: Callable[[GeoPoint], bool]) -> bool:
    """Apply a geographic oracle; coordinate-less rows pass (handled later)."""
    if not record.has_coordinates:
        return True
    return oracle(record.point())


#: Below this many coordinate rows the scalar oracle loop wins; the
#: decisions are boolean-identical either way (the batch kernels are
#: exact elementwise replays of the scalar comparisons).
_BATCH_ORACLE_MIN_RECORDS = 256


def _geo_doomed_ids(
    dataset: MobyDataset,
    oracle: Callable[[GeoPoint], bool],
    batch_oracle_name: str,
) -> set[int]:
    """Location ids failing a geographic oracle; coordinate-less pass."""
    from ..perf import accel

    records = list(dataset.locations())
    with_coords = [record for record in records if record.has_coordinates]
    if accel.ENABLED and len(with_coords) >= _BATCH_ORACLE_MIN_RECORDS:
        points = [record.point() for record in with_coords]
        batch = getattr(accel, batch_oracle_name)
        admissible = batch(
            [point.lat for point in points], [point.lon for point in points]
        )
        return {
            record.location_id
            for record, ok in zip(with_coords, admissible)
            if not ok
        }
    return {
        record.location_id
        for record in with_coords
        if not oracle(record.point())
    }


def _drop_locations(
    dataset: MobyDataset,
    doomed_location_ids: set[int],
    outcome: RuleOutcome,
) -> None:
    """Remove locations and every rental touching them, updating the outcome."""
    doomed_rentals: set[int] = set()
    for location_id in doomed_location_ids:
        doomed_rentals.update(dataset.rentals_touching_location(location_id))
    for rental_id in sorted(doomed_rentals):
        dataset.remove_rental(rental_id)
    for location_id in sorted(doomed_location_ids):
        dataset.remove_location(location_id)
    outcome.locations_removed += len(doomed_location_ids)
    outcome.rentals_removed += len(doomed_rentals)


@dataclass(frozen=True)
class CleaningRuleSets:
    """The location-level decisions of rules 1–3, as reusable sets.

    Every rule-1/2/3 judgement depends on one location row alone, so
    the sets are a pure function of the location table — which appends
    never touch.  An incremental clean therefore classifies *only* the
    appended rentals against these sets instead of re-running the
    geographic oracles over the whole table.

    ``surviving`` is the location-id domain left after rules 1–3 — the
    set rule 5 (dangling references) checks rentals against.
    """

    outside_dublin: frozenset[int]
    not_on_land: frozenset[int]
    missing_coordinates: frozenset[int]
    surviving: frozenset[int]


def location_rule_sets(dataset: MobyDataset) -> CleaningRuleSets:
    """Compute :class:`CleaningRuleSets` for ``dataset``'s locations.

    Matches :func:`clean_dataset` exactly: rule 2 judges only what
    rule 1 left, rule 3 only what rules 1–2 left (the per-location
    oracles are row-independent, so set subtraction reproduces the
    sequential removals).
    """
    doomed_dublin = frozenset(
        _geo_doomed_ids(dataset, in_dublin, "in_dublin_batch")
    )
    doomed_land = frozenset(
        _geo_doomed_ids(dataset, on_land, "on_land_batch") - doomed_dublin
    )
    removed = doomed_dublin | doomed_land
    doomed_coords = frozenset(
        record.location_id
        for record in dataset.locations()
        if not record.has_coordinates and record.location_id not in removed
    )
    removed = removed | doomed_coords
    surviving = frozenset(
        record.location_id
        for record in dataset.locations()
        if record.location_id not in removed
    )
    return CleaningRuleSets(
        outside_dublin=doomed_dublin,
        not_on_land=doomed_land,
        missing_coordinates=doomed_coords,
        surviving=surviving,
    )


def classify_rentals(
    rentals: Sequence[RentalRecord], rules: CleaningRuleSets
) -> tuple[list[RentalRecord], dict[str, int]]:
    """Split rentals into survivors and per-rule removal counts.

    Applies rules 1–5 to each rental in :func:`clean_dataset`'s order —
    the first matching rule claims the removal, exactly as the
    sequential tables-based passes would have.  Rule 6 removes only
    locations, so rentals are fully classified here.
    """
    counts = {
        RULE_OUTSIDE_DUBLIN: 0,
        RULE_NOT_ON_LAND: 0,
        RULE_MISSING_COORDINATES: 0,
        RULE_MISSING_LOCATION_ID: 0,
        RULE_DANGLING_LOCATION_ID: 0,
    }
    survivors: list[RentalRecord] = []
    for rental in rentals:
        refs = [
            ref
            for ref in (rental.rental_location_id, rental.return_location_id)
            if ref is not None
        ]
        if any(ref in rules.outside_dublin for ref in refs):
            counts[RULE_OUTSIDE_DUBLIN] += 1
        elif any(ref in rules.not_on_land for ref in refs):
            counts[RULE_NOT_ON_LAND] += 1
        elif any(ref in rules.missing_coordinates for ref in refs):
            counts[RULE_MISSING_COORDINATES] += 1
        elif (
            rental.rental_location_id is None
            or rental.return_location_id is None
        ):
            counts[RULE_MISSING_LOCATION_ID] += 1
        elif not (
            rental.rental_location_id in rules.surviving
            and rental.return_location_id in rules.surviving
        ):
            counts[RULE_DANGLING_LOCATION_ID] += 1
        else:
            survivors.append(rental)
    return survivors, counts


def clean_dataset(raw: MobyDataset) -> tuple[MobyDataset, CleaningReport]:
    """Apply the six rules to a copy of ``raw``.

    Returns the cleaned dataset and the per-rule audit report.  The
    input dataset is left untouched.
    """
    dataset, report, _ = clean_dataset_with_rules(raw)
    return dataset, report


def clean_dataset_with_rules(
    raw: MobyDataset,
) -> tuple[MobyDataset, CleaningReport, CleaningRuleSets]:
    """:func:`clean_dataset`, also returning the location rule sets.

    The geographic oracles run exactly once (over the raw location
    table) instead of once per rule over the shrinking copy; because
    every rule-1/2/3 judgement is row-independent, applying the
    precomputed sets reproduces the sequential removals bit for bit.
    The sets come back so an incremental rerun can classify appended
    rentals without touching the oracles at all.
    """
    rules = location_rule_sets(raw)
    dataset = raw.copy()
    report = CleaningReport(before=raw.summary(), after=raw.summary())

    for rule, doomed in (
        (RULE_OUTSIDE_DUBLIN, rules.outside_dublin),
        (RULE_NOT_ON_LAND, rules.not_on_land),
        (RULE_MISSING_COORDINATES, rules.missing_coordinates),
    ):
        outcome = RuleOutcome(rule)
        _drop_locations(dataset, set(doomed), outcome)
        report.outcomes.append(outcome)

    # Rule 4: rentals without both location ids.  (Rules 4 and 5 scan
    # raw rows — same predicates, no per-rental record objects.)
    outcome = RuleOutcome(RULE_MISSING_LOCATION_ID)
    doomed_rentals = [
        row["rental_id"]
        for row in dataset.rental_rows()
        if row["rental_location_id"] is None or row["return_location_id"] is None
    ]
    for rental_id in doomed_rentals:
        dataset.remove_rental(rental_id)
    outcome.rentals_removed = len(doomed_rentals)
    report.outcomes.append(outcome)

    # Rule 5: rentals referencing unknown locations.
    outcome = RuleOutcome(RULE_DANGLING_LOCATION_ID)
    doomed_rentals = [
        row["rental_id"]
        for row in dataset.rental_rows()
        if not (
            dataset.has_location(row["rental_location_id"])
            and dataset.has_location(row["return_location_id"])
        )
    ]
    for rental_id in doomed_rentals:
        dataset.remove_rental(rental_id)
    outcome.rentals_removed = len(doomed_rentals)
    report.outcomes.append(outcome)

    # Rule 6: locations no remaining rental references.
    outcome = RuleOutcome(RULE_UNREFERENCED_LOCATION)
    referenced = dataset.referenced_location_ids()
    doomed_locations = [
        record.location_id
        for record in dataset.locations()
        if record.location_id not in referenced
    ]
    for location_id in doomed_locations:
        dataset.remove_location(location_id)
    outcome.locations_removed = len(doomed_locations)
    report.outcomes.append(outcome)

    dataset.db.check_integrity()
    report.after = dataset.summary()
    return dataset, report, rules
