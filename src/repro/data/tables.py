"""A small in-memory relational engine.

The paper stores the Moby data in two SQL tables and cleans them with
referential rules ("Rental Location ID not in the Location table", ...).
This module provides the minimum relational machinery those rules need:
typed tables with a primary key, optional secondary indexes, filtered
scans, and a :class:`Database` that registers foreign keys and can
enumerate or enforce violations.

It is intentionally not a query language — every consumer in this
package needs only key lookup, index lookup and predicate scans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Mapping

from ..exceptions import (
    DuplicateKeyError,
    MissingRowError,
    ReferentialIntegrityError,
    SchemaError,
)
from .schema import TableSchema

Row = dict[str, Any]


class Table:
    """One table: schema-validated rows keyed by primary key."""

    def __init__(self, name: str, schema: TableSchema) -> None:
        self.name = name
        self.schema = schema
        self._rows: dict[Any, Row] = {}
        self._indexes: dict[str, dict[Any, set[Any]]] = {}

    # ------------------------------------------------------------------
    # Index management
    # ------------------------------------------------------------------

    def create_index(self, column: str) -> None:
        """Create a secondary index on ``column`` (idempotent)."""
        self.schema.column(column)  # validates the name
        if column in self._indexes:
            return
        index: dict[Any, set[Any]] = {}
        for pk, row in self._rows.items():
            index.setdefault(row[column], set()).add(pk)
        self._indexes[column] = index

    def _index_add(self, row: Row) -> None:
        pk = row[self.schema.primary_key]
        for column, index in self._indexes.items():
            index.setdefault(row[column], set()).add(pk)

    def _index_remove(self, row: Row) -> None:
        pk = row[self.schema.primary_key]
        for column, index in self._indexes.items():
            bucket = index.get(row[column])
            if bucket is not None:
                bucket.discard(pk)
                if not bucket:
                    del index[row[column]]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, row: Mapping[str, Any]) -> Row:
        """Validate and insert a row; returns the stored dict."""
        clean = self.schema.validate_row(row)
        pk = clean[self.schema.primary_key]
        if pk in self._rows:
            raise DuplicateKeyError(f"{self.name}: duplicate key {pk!r}")
        self._rows[pk] = clean
        self._index_add(clean)
        return clean

    def insert_many(self, rows: Iterable[Mapping[str, Any]]) -> int:
        """Insert many rows; returns the number inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def copy_rows_from(self, other: "Table") -> int:
        """Trusted bulk copy of another table's rows, in pk order.

        The source rows were validated when ``other`` ingested them, so
        schema validation is skipped; rows are copied, never aliased.
        Returns the number of rows copied.
        """
        count = 0
        source = other._rows
        for pk in sorted(source):
            if pk in self._rows:
                raise DuplicateKeyError(f"{self.name}: duplicate key {pk!r}")
            row = dict(source[pk])
            self._rows[pk] = row
            self._index_add(row)
            count += 1
        return count

    def delete(self, pk: Any) -> Row:
        """Delete by primary key, returning the removed row."""
        row = self._rows.pop(pk, None)
        if row is None:
            raise MissingRowError(f"{self.name}: no row with key {pk!r}")
        self._index_remove(row)
        return row

    def delete_where(self, predicate: Callable[[Row], bool]) -> int:
        """Delete every row matching ``predicate``; returns the count."""
        doomed = [pk for pk, row in self._rows.items() if predicate(row)]
        for pk in doomed:
            self.delete(pk)
        return len(doomed)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def get(self, pk: Any) -> Row:
        """Fetch by primary key; raises MissingRowError when absent."""
        row = self._rows.get(pk)
        if row is None:
            raise MissingRowError(f"{self.name}: no row with key {pk!r}")
        return dict(row)

    def maybe_get(self, pk: Any) -> Row | None:
        """Fetch by primary key or return None."""
        row = self._rows.get(pk)
        return dict(row) if row is not None else None

    def __contains__(self, pk: Any) -> bool:
        return pk in self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def keys(self) -> Iterator[Any]:
        """Iterate over primary keys."""
        return iter(self._rows.keys())

    def scan(self, predicate: Callable[[Row], bool] | None = None) -> Iterator[Row]:
        """Iterate over (copies of) rows, optionally filtered."""
        for row in self._rows.values():
            if predicate is None or predicate(row):
                yield dict(row)

    def sorted_rows(self) -> Iterator[Row]:
        """Iterate the *live* stored rows in primary-key order.

        No defensive copies — this is the zero-overhead path for the
        pipeline's read-only full-table scans.  Callers must not mutate
        the yielded dicts (use :meth:`scan` for copies) and must not
        insert or delete while iterating.
        """
        rows = self._rows
        for pk in sorted(rows):
            yield rows[pk]

    def lookup(self, column: str, value: Any) -> list[Row]:
        """Rows with ``row[column] == value``, via index when available."""
        index = self._indexes.get(column)
        if index is not None:
            return [dict(self._rows[pk]) for pk in sorted(index.get(value, ()), key=repr)]
        self.schema.column(column)
        return [dict(row) for row in self._rows.values() if row[column] == value]

    def distinct(self, column: str) -> set[Any]:
        """Distinct values of ``column`` over all rows."""
        index = self._indexes.get(column)
        if index is not None:
            return set(index.keys())
        self.schema.column(column)
        return {row[column] for row in self._rows.values()}


@dataclass(frozen=True)
class ForeignKey:
    """Declares ``child.column`` references ``parent``'s primary key.

    Null references are permitted (they model the paper's missing-id
    dirty rows); only non-null dangling references are violations.
    """

    child: str
    column: str
    parent: str


class Database:
    """A named collection of tables plus foreign-key metadata."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._foreign_keys: list[ForeignKey] = []

    def create_table(self, name: str, schema: TableSchema) -> Table:
        """Create and register a table; name must be fresh."""
        if name in self._tables:
            raise SchemaError(f"table {name!r} already exists")
        table = Table(name, schema)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        """Fetch a table by name."""
        table = self._tables.get(name)
        if table is None:
            raise SchemaError(f"no such table: {name!r}")
        return table

    def table_names(self) -> list[str]:
        """Registered table names, sorted."""
        return sorted(self._tables)

    def add_foreign_key(self, child: str, column: str, parent: str) -> None:
        """Register a foreign key for later violation checks."""
        self.table(child).schema.column(column)
        self.table(parent)
        self._foreign_keys.append(ForeignKey(child, column, parent))

    def foreign_key_violations(self) -> list[tuple[ForeignKey, Any]]:
        """Enumerate ``(fk, child_pk)`` pairs with dangling references."""
        violations: list[tuple[ForeignKey, Any]] = []
        for fk in self._foreign_keys:
            child = self.table(fk.child)
            parent = self.table(fk.parent)
            for row in child.scan():
                ref = row[fk.column]
                if ref is not None and ref not in parent:
                    violations.append((fk, row[child.schema.primary_key]))
        return violations

    def check_integrity(self) -> None:
        """Raise :class:`ReferentialIntegrityError` on any violation."""
        violations = self.foreign_key_violations()
        if violations:
            fk, pk = violations[0]
            raise ReferentialIntegrityError(
                f"{len(violations)} violation(s); first: "
                f"{fk.child}.{fk.column} row {pk!r} -> missing {fk.parent} row"
            )
