"""The MobyDataset: both tables plus convenient typed access."""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping

from .csvio import read_locations, read_rentals, write_locations, write_rentals
from .records import LocationRecord, RentalRecord
from .schema import LOCATION_SCHEMA, RENTAL_SCHEMA
from .tables import Database, Table


def rental_records_from_rows(rows: Any) -> list[RentalRecord]:
    """Parse compact positional rental rows into records.

    The row shape of :meth:`MobyDataset.to_dict` — ``[id, bike_id,
    started_at, ended_at, rental_location_id, return_location_id]``
    with ISO-8601 timestamps — shared by the full-dataset ``PUT`` body
    and the append-mode ``PATCH`` body.  Raises :class:`ValueError` /
    :class:`TypeError` on malformed rows so the HTTP layer can answer
    ``400``.
    """
    if not isinstance(rows, (list, tuple)):
        raise ValueError("rentals must be a list of rows")
    rentals = []
    for row in rows:
        if not isinstance(row, (list, tuple)) or len(row) != 6:
            raise ValueError(
                f"bad rental row {row!r}; expected [id, bike_id, "
                "started_at, ended_at, rental_location_id, "
                "return_location_id]"
            )
        rental_id, bike_id, started, ended, pickup, dropoff = row
        rentals.append(
            RentalRecord(
                rental_id=int(rental_id),
                bike_id=int(bike_id),
                started_at=datetime.fromisoformat(started),
                ended_at=datetime.fromisoformat(ended),
                rental_location_id=None if pickup is None else int(pickup),
                return_location_id=None if dropoff is None else int(dropoff),
            )
        )
    return rentals


@dataclass(frozen=True)
class DatasetSummary:
    """The counts reported in the paper's Table I."""

    n_stations: int
    n_rentals: int
    n_locations: int

    def as_row(self) -> dict[str, int]:
        """Dict form used by the reporting layer."""
        return {
            "#stations": self.n_stations,
            "#rental": self.n_rentals,
            "#location": self.n_locations,
        }

    def to_dict(self) -> dict[str, int]:
        """JSON-safe envelope."""
        return {
            "n_stations": self.n_stations,
            "n_rentals": self.n_rentals,
            "n_locations": self.n_locations,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DatasetSummary":
        """Exact inverse of :meth:`to_dict`."""
        return cls(
            n_stations=payload["n_stations"],
            n_rentals=payload["n_rentals"],
            n_locations=payload["n_locations"],
        )


class MobyDataset:
    """Rental + Location tables with typed record access.

    The underlying :class:`~repro.data.tables.Database` carries the
    referential metadata (both rental foreign keys point at the
    Location table) so the cleaning stage can enumerate violations.
    """

    def __init__(self) -> None:
        self.db = Database()
        self._locations: Table = self.db.create_table("locations", LOCATION_SCHEMA)
        self._rentals: Table = self.db.create_table("rentals", RENTAL_SCHEMA)
        self._locations.create_index("is_station")
        self._rentals.create_index("rental_location_id")
        self._rentals.create_index("return_location_id")
        self.db.add_foreign_key("rentals", "rental_location_id", "locations")
        self.db.add_foreign_key("rentals", "return_location_id", "locations")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_records(
        cls,
        locations: Iterable[LocationRecord],
        rentals: Iterable[RentalRecord],
    ) -> "MobyDataset":
        """Build a dataset from record iterables (no integrity checks)."""
        dataset = cls()
        for location in locations:
            dataset.add_location(location)
        for rental in rentals:
            dataset.add_rental(rental)
        return dataset

    def copy(self) -> "MobyDataset":
        """A deep copy of both tables (trusted row copy, pk order).

        Identical to ``from_records(self.locations(), self.rentals())``
        but without re-materialising records or re-validating rows —
        the cleaning stage's non-destructive copy runs through here.
        """
        clone = MobyDataset()
        clone._locations.copy_rows_from(self._locations)
        clone._rentals.copy_rows_from(self._rentals)
        return clone

    @classmethod
    def from_csv(cls, directory: str | Path) -> "MobyDataset":
        """Load ``locations.csv`` and ``rentals.csv`` from a directory."""
        directory = Path(directory)
        return cls.from_records(
            read_locations(directory / "locations.csv"),
            read_rentals(directory / "rentals.csv"),
        )

    def to_csv(self, directory: str | Path) -> None:
        """Write both tables into ``directory`` (created if needed)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        write_locations(directory / "locations.csv", self.locations())
        write_rentals(directory / "rentals.csv", self.rentals())

    # ------------------------------------------------------------------
    # JSON round trip (dataset uploads over HTTP)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe envelope with compact list rows (see :meth:`from_dict`).

        Rows are positional lists in column order — half the bytes of
        per-field objects, which matters because this is the body of a
        ``PUT /v1/datasets/<name>`` upload.  Timestamps are ISO-8601
        strings; ``None`` cells stay ``null``.
        """
        return {
            "type": "MobyDataset",
            "locations": [
                [loc.location_id, loc.lat, loc.lon, loc.is_station, loc.name]
                for loc in self.locations()
            ],
            "rentals": [
                [
                    rental.rental_id,
                    rental.bike_id,
                    rental.started_at.isoformat(),
                    rental.ended_at.isoformat(),
                    rental.rental_location_id,
                    rental.return_location_id,
                ]
                for rental in self.rentals()
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MobyDataset":
        """Exact inverse of :meth:`to_dict`.

        Raises :class:`ValueError`/:class:`TypeError` on malformed rows
        so the HTTP layer can turn a bad upload into a ``400``.
        """
        if not isinstance(payload, Mapping):
            raise TypeError("a dataset payload must be a JSON object")
        if payload.get("type", "MobyDataset") != "MobyDataset":
            raise ValueError(
                f"expected a 'MobyDataset' envelope, got {payload['type']!r}"
            )
        locations = []
        for row in payload.get("locations", []):
            if not isinstance(row, (list, tuple)) or len(row) != 5:
                raise ValueError(f"bad location row {row!r}; expected "
                                 "[id, lat, lon, is_station, name]")
            location_id, lat, lon, is_station, name = row
            locations.append(
                LocationRecord(
                    location_id=int(location_id),
                    lat=None if lat is None else float(lat),
                    lon=None if lon is None else float(lon),
                    is_station=bool(is_station),
                    name=str(name),
                )
            )
        rentals = rental_records_from_rows(payload.get("rentals", []))
        return cls.from_records(locations, rentals)

    def add_location(self, record: LocationRecord) -> None:
        """Insert one location row."""
        self._locations.insert(
            {
                "location_id": record.location_id,
                "lat": record.lat,
                "lon": record.lon,
                "is_station": record.is_station,
                "name": record.name,
            }
        )

    def add_rental(self, record: RentalRecord) -> None:
        """Insert one rental row."""
        self._rentals.insert(
            {
                "rental_id": record.rental_id,
                "bike_id": record.bike_id,
                "started_at": record.started_at,
                "ended_at": record.ended_at,
                "rental_location_id": record.rental_location_id,
                "return_location_id": record.return_location_id,
            }
        )

    # ------------------------------------------------------------------
    # Typed reads
    # ------------------------------------------------------------------

    @staticmethod
    def _location_from_row(row: dict) -> LocationRecord:
        return LocationRecord(
            location_id=row["location_id"],
            lat=row["lat"],
            lon=row["lon"],
            is_station=row["is_station"],
            name=row["name"],
        )

    @staticmethod
    def _rental_from_row(row: dict) -> RentalRecord:
        return RentalRecord(
            rental_id=row["rental_id"],
            bike_id=row["bike_id"],
            started_at=row["started_at"],
            ended_at=row["ended_at"],
            rental_location_id=row["rental_location_id"],
            return_location_id=row["return_location_id"],
        )

    def locations(self) -> Iterator[LocationRecord]:
        """Iterate over all location records (id order)."""
        for pk in sorted(self._locations.keys()):
            yield self._location_from_row(self._locations.get(pk))

    def rentals(self) -> Iterator[RentalRecord]:
        """Iterate over all rental records (id order)."""
        for pk in sorted(self._rentals.keys()):
            yield self._rental_from_row(self._rentals.get(pk))

    def rental_rows(self) -> Iterator[dict]:
        """Raw rental rows in id order (live dicts — read-only!).

        The hot full-table scans (cleaning rules, trip projection)
        read columns straight off the stored rows instead of
        materialising a :class:`RentalRecord` per rental per pass.
        """
        return self._rentals.sorted_rows()

    def location_rows(self) -> Iterator[dict]:
        """Raw location rows in id order (live dicts — read-only!)."""
        return self._locations.sorted_rows()

    def stations(self) -> Iterator[LocationRecord]:
        """Iterate over fixed-station location records."""
        for row in self._locations.lookup("is_station", True):
            yield self._location_from_row(row)

    def location(self, location_id: int) -> LocationRecord:
        """Fetch one location by id."""
        return self._location_from_row(self._locations.get(location_id))

    def has_location(self, location_id: int) -> bool:
        """True when a location id exists."""
        return location_id in self._locations

    def rental(self, rental_id: int) -> RentalRecord:
        """Fetch one rental by id."""
        return self._rental_from_row(self._rentals.get(rental_id))

    def max_rental_id(self) -> int | None:
        """The highest rental id stored, or ``None`` when empty.

        Append-mode datasets require every appended rental id to exceed
        this, so an appended dataset iterates identically to the same
        rows ingested in one shot (id order == prefix-then-delta order).
        """
        keys = list(self._rentals.keys())
        return max(keys) if keys else None

    def rentals_after(self, rental_id: int) -> list[RentalRecord]:
        """Rental records with ids strictly above ``rental_id``, id order.

        The delta extractor of an incremental run: only matching rows
        materialise records, so pulling a 5% tail out of a large log
        costs O(log) id comparisons but only O(delta) record builds.
        """
        picked = sorted(pk for pk in self._rentals.keys() if pk > rental_id)
        return [
            self._rental_from_row(self._rentals.get(pk)) for pk in picked
        ]

    # ------------------------------------------------------------------
    # Mutation used by cleaning
    # ------------------------------------------------------------------

    def remove_location(self, location_id: int) -> None:
        """Delete one location row."""
        self._locations.delete(location_id)

    def remove_rental(self, rental_id: int) -> None:
        """Delete one rental row."""
        self._rentals.delete(rental_id)

    def rentals_touching_location(self, location_id: int) -> set[int]:
        """Ids of rentals that start or end at ``location_id``."""
        ids = {
            row["rental_id"]
            for row in self._rentals.lookup("rental_location_id", location_id)
        }
        ids.update(
            row["rental_id"]
            for row in self._rentals.lookup("return_location_id", location_id)
        )
        return ids

    def referenced_location_ids(self) -> set[int]:
        """Location ids referenced by at least one rental."""
        referenced: set[int] = set()
        for row in self._rentals.sorted_rows():
            if row["rental_location_id"] is not None:
                referenced.add(row["rental_location_id"])
            if row["return_location_id"] is not None:
                referenced.add(row["return_location_id"])
        return referenced

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    @property
    def n_locations(self) -> int:
        """Number of location rows."""
        return len(self._locations)

    @property
    def n_rentals(self) -> int:
        """Number of rental rows."""
        return len(self._rentals)

    @property
    def n_stations(self) -> int:
        """Number of fixed stations."""
        return len(self._locations.lookup("is_station", True))

    def summary(self) -> DatasetSummary:
        """The Table-I counts for this dataset."""
        return DatasetSummary(
            n_stations=self.n_stations,
            n_rentals=self.n_rentals,
            n_locations=self.n_locations,
        )
