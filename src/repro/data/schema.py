"""Column specifications and row validation for the table engine."""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Any, Mapping, Sequence

from ..exceptions import SchemaError

#: Types the engine understands.  ``float`` accepts ints (auto-widened);
#: everything else is checked exactly.
_ALLOWED_TYPES = (int, float, str, bool, datetime)


@dataclass(frozen=True)
class ColumnSpec:
    """Declares one column: its name, Python type and nullability."""

    name: str
    py_type: type
    nullable: bool = False

    def __post_init__(self) -> None:
        if self.py_type not in _ALLOWED_TYPES:
            raise SchemaError(
                f"column {self.name!r}: unsupported type {self.py_type!r}"
            )

    def validate(self, value: Any) -> Any:
        """Return the (possibly coerced) value or raise SchemaError."""
        if value is None:
            if self.nullable:
                return None
            raise SchemaError(f"column {self.name!r} is not nullable")
        # bool is a subclass of int; keep the two distinct.
        if self.py_type is float and isinstance(value, int) and not isinstance(value, bool):
            return float(value)
        if self.py_type is int and isinstance(value, bool):
            raise SchemaError(f"column {self.name!r}: bool is not an int")
        if not isinstance(value, self.py_type):
            raise SchemaError(
                f"column {self.name!r}: expected {self.py_type.__name__}, "
                f"got {type(value).__name__}"
            )
        return value


@dataclass(frozen=True)
class TableSchema:
    """An ordered set of columns plus the primary-key column name."""

    columns: tuple[ColumnSpec, ...]
    primary_key: str

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError("duplicate column names in schema")
        if self.primary_key not in names:
            raise SchemaError(
                f"primary key {self.primary_key!r} is not a declared column"
            )
        pk = self.column(self.primary_key)
        if pk.nullable:
            raise SchemaError("primary-key column cannot be nullable")

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names in declaration order."""
        return tuple(column.name for column in self.columns)

    def column(self, name: str) -> ColumnSpec:
        """Look up one column spec by name."""
        for column in self.columns:
            if column.name == name:
                return column
        raise SchemaError(f"no such column: {name!r}")

    def validate_row(self, row: Mapping[str, Any]) -> dict[str, Any]:
        """Validate a mapping against the schema, returning a clean dict.

        Extra keys are rejected; missing keys are rejected unless the
        column is nullable (they become None).
        """
        extras = set(row) - set(self.column_names)
        if extras:
            raise SchemaError(f"unknown columns: {sorted(extras)}")
        clean: dict[str, Any] = {}
        for column in self.columns:
            clean[column.name] = column.validate(row.get(column.name))
        return clean


def schema_from_columns(
    columns: Sequence[tuple[str, type, bool]], primary_key: str
) -> TableSchema:
    """Convenience builder from ``(name, type, nullable)`` triples."""
    return TableSchema(
        columns=tuple(ColumnSpec(name, py_type, nullable) for name, py_type, nullable in columns),
        primary_key=primary_key,
    )


#: Schema of the Location table (paper Section III).
LOCATION_SCHEMA = schema_from_columns(
    [
        ("location_id", int, False),
        ("lat", float, True),
        ("lon", float, True),
        ("is_station", bool, False),
        ("name", str, False),
    ],
    primary_key="location_id",
)

#: Schema of the Rental table (paper Section III).
RENTAL_SCHEMA = schema_from_columns(
    [
        ("rental_id", int, False),
        ("bike_id", int, False),
        ("started_at", datetime, False),
        ("ended_at", datetime, False),
        ("rental_location_id", int, True),
        ("return_location_id", int, True),
    ],
    primary_key="rental_id",
)
