"""CSV persistence for the Moby tables.

Datasets round-trip through two plain CSV files (``locations.csv`` and
``rentals.csv``) so that experiments are inspectable and re-runnable
outside Python.  Timestamps are written as ISO-8601; empty cells encode
NULLs.
"""

from __future__ import annotations

import csv
from contextlib import nullcontext
from datetime import datetime
from pathlib import Path
from typing import IO, ContextManager, Iterable

from .records import LocationRecord, RentalRecord

_LOCATION_FIELDS = ("location_id", "lat", "lon", "is_station", "name")
_RENTAL_FIELDS = (
    "rental_id",
    "bike_id",
    "started_at",
    "ended_at",
    "rental_location_id",
    "return_location_id",
)


def _cell(value: object) -> str:
    """Encode one value for CSV; None becomes an empty cell."""
    if value is None:
        return ""
    if isinstance(value, datetime):
        return value.isoformat()
    if isinstance(value, bool):
        return "1" if value else "0"
    return str(value)


def _open_for_write(target: str | Path | IO[str]) -> ContextManager[IO[str]]:
    """``target`` as a writable handle — paths opened, handles passed through.

    Accepting an open text handle lets callers serialise to memory
    (the dataset store sizes uploads before persisting anything).
    """
    if hasattr(target, "write"):
        return nullcontext(target)  # caller owns the handle's lifetime
    return open(target, "w", newline="")


def write_locations(
    path: str | Path | IO[str], locations: Iterable[LocationRecord]
) -> int:
    """Write location records to ``path``; returns the row count."""
    count = 0
    with _open_for_write(path) as handle:
        writer = csv.writer(handle)
        writer.writerow(_LOCATION_FIELDS)
        for record in locations:
            writer.writerow(
                [
                    _cell(record.location_id),
                    _cell(record.lat),
                    _cell(record.lon),
                    _cell(record.is_station),
                    _cell(record.name),
                ]
            )
            count += 1
    return count


def write_rentals(
    path: str | Path | IO[str], rentals: Iterable[RentalRecord]
) -> int:
    """Write rental records to ``path``; returns the row count."""
    count = 0
    with _open_for_write(path) as handle:
        writer = csv.writer(handle)
        writer.writerow(_RENTAL_FIELDS)
        for record in rentals:
            writer.writerow(
                [
                    _cell(record.rental_id),
                    _cell(record.bike_id),
                    _cell(record.started_at),
                    _cell(record.ended_at),
                    _cell(record.rental_location_id),
                    _cell(record.return_location_id),
                ]
            )
            count += 1
    return count


def _open_for_read(source: str | Path | IO[str]) -> ContextManager[IO[str]]:
    """``source`` as a readable handle — paths opened, handles passed through.

    The handle form lets the dataset store parse entries straight from
    backend bytes without materialising files.
    """
    if hasattr(source, "read"):
        return nullcontext(source)  # caller owns the handle's lifetime
    return open(source, newline="")


def read_locations(path: str | Path | IO[str]) -> list[LocationRecord]:
    """Read location records written by :func:`write_locations`."""
    records: list[LocationRecord] = []
    with _open_for_read(path) as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            records.append(
                LocationRecord(
                    location_id=int(row["location_id"]),
                    lat=float(row["lat"]) if row["lat"] else None,
                    lon=float(row["lon"]) if row["lon"] else None,
                    is_station=row["is_station"] == "1",
                    name=row["name"],
                )
            )
    return records


def read_rentals(path: str | Path | IO[str]) -> list[RentalRecord]:
    """Read rental records written by :func:`write_rentals`."""
    records: list[RentalRecord] = []
    with _open_for_read(path) as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            records.append(
                RentalRecord(
                    rental_id=int(row["rental_id"]),
                    bike_id=int(row["bike_id"]),
                    started_at=datetime.fromisoformat(row["started_at"]),
                    ended_at=datetime.fromisoformat(row["ended_at"]),
                    rental_location_id=(
                        int(row["rental_location_id"])
                        if row["rental_location_id"]
                        else None
                    ),
                    return_location_id=(
                        int(row["return_location_id"])
                        if row["return_location_id"]
                        else None
                    ),
                )
            )
    return records
