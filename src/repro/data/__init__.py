"""Relational substrate: typed tables, CSV IO and the cleaning pipeline."""

from .cleaning import (
    ALL_RULES,
    CleaningReport,
    CleaningRuleSets,
    RULE_DANGLING_LOCATION_ID,
    RULE_MISSING_COORDINATES,
    RULE_MISSING_LOCATION_ID,
    RULE_NOT_ON_LAND,
    RULE_OUTSIDE_DUBLIN,
    RULE_UNREFERENCED_LOCATION,
    RuleOutcome,
    classify_rentals,
    clean_dataset,
    clean_dataset_with_rules,
    location_rule_sets,
)
from .csvio import read_locations, read_rentals, write_locations, write_rentals
from .dataset import DatasetSummary, MobyDataset, rental_records_from_rows
from .records import LocationRecord, RentalRecord
from .schema import (
    ColumnSpec,
    LOCATION_SCHEMA,
    RENTAL_SCHEMA,
    TableSchema,
    schema_from_columns,
)
from .tables import Database, ForeignKey, Table

__all__ = [
    "ALL_RULES",
    "CleaningReport",
    "CleaningRuleSets",
    "ColumnSpec",
    "Database",
    "DatasetSummary",
    "ForeignKey",
    "LOCATION_SCHEMA",
    "LocationRecord",
    "MobyDataset",
    "rental_records_from_rows",
    "RENTAL_SCHEMA",
    "RULE_DANGLING_LOCATION_ID",
    "RULE_MISSING_COORDINATES",
    "RULE_MISSING_LOCATION_ID",
    "RULE_NOT_ON_LAND",
    "RULE_OUTSIDE_DUBLIN",
    "RULE_UNREFERENCED_LOCATION",
    "RentalRecord",
    "RuleOutcome",
    "Table",
    "TableSchema",
    "classify_rentals",
    "clean_dataset",
    "clean_dataset_with_rules",
    "location_rule_sets",
    "read_locations",
    "read_rentals",
    "schema_from_columns",
    "write_locations",
    "write_rentals",
]
