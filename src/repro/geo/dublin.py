"""A coarse geographic model of Dublin.

The cleaning rules in the paper remove locations "outside Dublin" and
locations "not on land" (Dublin Bay).  This module provides the fixed
geography those rules need: a city bounding box, a simplified coastline
polygon with the bay carved out, and the landmarks the paper's
discussion keeps returning to (the city centre, Phoenix Park,
Blackrock / Dún Laoghaire).

The polygon is deliberately coarse — a dozen vertices — because the
pipeline only needs a land/water oracle at ~100 m fidelity, and the
synthetic generator uses the same oracle, keeping the two consistent.
"""

from __future__ import annotations

from .point import BoundingBox, GeoPoint
from .polygon import Polygon, Region

#: O'Connell Bridge — the conventional centre of Dublin.
CITY_CENTER = GeoPoint(53.3473, -6.2591)

#: Named places used by the synthetic city model and the discussion of
#: community geography in the paper (Section V).
LANDMARKS: dict[str, GeoPoint] = {
    "city_center": CITY_CENTER,
    "phoenix_park": GeoPoint(53.3558, -6.3298),
    "dun_laoghaire": GeoPoint(53.2949, -6.1339),
    "blackrock": GeoPoint(53.3015, -6.1778),
    "heuston": GeoPoint(53.3464, -6.2941),
    "connolly": GeoPoint(53.3531, -6.2489),
    "dcu_glasnevin": GeoPoint(53.3860, -6.2570),
    "ucd_belfield": GeoPoint(53.3067, -6.2210),
    "grand_canal_dock": GeoPoint(53.3395, -6.2372),
    "rathmines": GeoPoint(53.3210, -6.2655),
    "drumcondra": GeoPoint(53.3680, -6.2530),
    "smithfield": GeoPoint(53.3474, -6.2783),
    "ballsbridge": GeoPoint(53.3284, -6.2294),
    "clontarf": GeoPoint(53.3636, -6.1932),
}

#: Administrative extent used by the "outside Dublin" cleaning rule.
DUBLIN_BBOX = BoundingBox(south=53.20, west=-6.45, north=53.45, east=-6.05)

#: Simplified coastline: the shell covers the Dublin area with Dublin
#: Bay indented between Howth (NE) and Dún Laoghaire (SE), so points in
#: the bay fall outside the region and are flagged "not on land".
_COAST_VERTICES: tuple[tuple[float, float], ...] = (
    (53.45, -6.45),  # NW inland corner
    (53.45, -6.10),  # north coast near Portmarnock
    (53.40, -6.06),  # Howth peninsula
    (53.37, -6.06),  # bay mouth, north arm
    (53.36, -6.12),  # bay shore towards the port
    (53.348, -6.19),  # Dublin Port, north wall
    (53.345, -6.20),  # Liffey mouth
    (53.340, -6.18),  # south wall
    (53.320, -6.12),  # Booterstown shore
    (53.300, -6.12),  # Dún Laoghaire harbour
    (53.270, -6.09),  # Killiney
    (53.20, -6.09),  # SE corner
    (53.20, -6.45),  # SW inland corner
)

DUBLIN_LAND = Region(shell=Polygon.from_coords(_COAST_VERTICES))


def in_dublin(point: GeoPoint) -> bool:
    """True when the point lies inside the Dublin administrative box."""
    return DUBLIN_BBOX.contains(point)


def on_land(point: GeoPoint) -> bool:
    """True when the point is on land (outside Dublin Bay)."""
    return DUBLIN_LAND.contains(point)


def is_admissible(point: GeoPoint) -> bool:
    """Combined cleaning-rule oracle: inside Dublin *and* on land."""
    return in_dublin(point) and on_land(point)
