"""Great-circle distance functions.

The paper (eq. 1) uses the haversine formula because it stays accurate at
the very small distances that matter here (50-250 m thresholds), unlike
the spherical law of cosines.  :func:`haversine_m` is the exact formula;
:func:`equirectangular_m` is the fast approximation used internally by the
spatial index, and :func:`local_projector` produces a metres-based planar
projection for HAC and rendering.
"""

from __future__ import annotations

import math
from typing import Callable

from ..config import EARTH_RADIUS_M
from .point import GeoPoint


def haversine_m(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points in metres (paper eq. 1)."""
    phi1 = math.radians(a.lat)
    phi2 = math.radians(b.lat)
    dphi = math.radians(b.lat - a.lat)
    dlam = math.radians(b.lon - a.lon)
    sin_dphi = math.sin(dphi / 2.0)
    sin_dlam = math.sin(dlam / 2.0)
    h = sin_dphi * sin_dphi + math.cos(phi1) * math.cos(phi2) * sin_dlam * sin_dlam
    # Guard against rounding pushing h a hair above 1 for antipodal points.
    h = min(1.0, h)
    return 2.0 * EARTH_RADIUS_M * math.asin(math.sqrt(h))


def equirectangular_m(a: GeoPoint, b: GeoPoint) -> float:
    """Fast planar approximation of the distance in metres.

    Accurate to well under 0.1 % at city scale; used only where many
    distance evaluations dominate (spatial-index pruning).
    """
    mean_phi = math.radians((a.lat + b.lat) / 2.0)
    x = math.radians(b.lon - a.lon) * math.cos(mean_phi)
    y = math.radians(b.lat - a.lat)
    return EARTH_RADIUS_M * math.hypot(x, y)


def bearing_deg(a: GeoPoint, b: GeoPoint) -> float:
    """Initial great-circle bearing from ``a`` to ``b`` in [0, 360)."""
    phi1 = math.radians(a.lat)
    phi2 = math.radians(b.lat)
    dlam = math.radians(b.lon - a.lon)
    y = math.sin(dlam) * math.cos(phi2)
    x = math.cos(phi1) * math.sin(phi2) - math.sin(phi1) * math.cos(phi2) * math.cos(dlam)
    return math.degrees(math.atan2(y, x)) % 360.0


def destination_point(origin: GeoPoint, bearing: float, distance_m: float) -> GeoPoint:
    """The point ``distance_m`` metres from ``origin`` along ``bearing``."""
    delta = distance_m / EARTH_RADIUS_M
    theta = math.radians(bearing)
    phi1 = math.radians(origin.lat)
    lam1 = math.radians(origin.lon)
    sin_phi2 = math.sin(phi1) * math.cos(delta) + math.cos(phi1) * math.sin(delta) * math.cos(theta)
    phi2 = math.asin(max(-1.0, min(1.0, sin_phi2)))
    y = math.sin(theta) * math.sin(delta) * math.cos(phi1)
    x = math.cos(delta) - math.sin(phi1) * math.sin(phi2)
    lam2 = lam1 + math.atan2(y, x)
    lon = math.degrees(lam2)
    # Normalise to [-180, 180].
    lon = (lon + 540.0) % 360.0 - 180.0
    return GeoPoint(math.degrees(phi2), lon)


def meters_per_degree(lat: float) -> tuple[float, float]:
    """Local metres per degree of (latitude, longitude) at ``lat``."""
    per_lat = math.pi * EARTH_RADIUS_M / 180.0
    per_lon = per_lat * math.cos(math.radians(lat))
    return per_lat, per_lon


def local_projector(origin: GeoPoint) -> Callable[[GeoPoint], tuple[float, float]]:
    """Return a function projecting points to planar (x, y) metres.

    The projection is an equirectangular chart centred on ``origin``:
    exact enough over a single city that Euclidean distance between
    projected points matches haversine to a fraction of a percent.
    """
    per_lat, per_lon = meters_per_degree(origin.lat)

    def project(point: GeoPoint) -> tuple[float, float]:
        return (
            (point.lon - origin.lon) * per_lon,
            (point.lat - origin.lat) * per_lat,
        )

    return project
