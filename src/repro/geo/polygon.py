"""Simple polygons on the lat/lon plane with point-in-polygon tests.

The cleaning stage must decide whether a location is "on land" and
"inside Dublin".  Over a single city the lat/lon plane is close enough
to planar that the classic even-odd ray-casting test is exact for our
purposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..exceptions import GeoError
from .point import BoundingBox, GeoPoint


@dataclass(frozen=True)
class Polygon:
    """A simple (non-self-intersecting) polygon in lat/lon degrees.

    Vertices are given in order (either winding); the closing edge back
    to the first vertex is implicit.
    """

    vertices: tuple[GeoPoint, ...]

    def __post_init__(self) -> None:
        if len(self.vertices) < 3:
            raise GeoError("a polygon needs at least three vertices")

    @classmethod
    def from_coords(cls, coords: Sequence[tuple[float, float]]) -> "Polygon":
        """Build from ``(lat, lon)`` tuples."""
        return cls(tuple(GeoPoint(lat, lon) for lat, lon in coords))

    @property
    def bounding_box(self) -> BoundingBox:
        """Tightest axis-aligned box containing the polygon."""
        return BoundingBox.around(self.vertices)

    def contains(self, point: GeoPoint) -> bool:
        """Even-odd ray-casting point-in-polygon test.

        A point exactly on an edge may land on either side; the data
        pipeline never depends on boundary behaviour.
        """
        if not self.bounding_box.contains(point):
            return False
        x, y = point.lon, point.lat
        inside = False
        count = len(self.vertices)
        for i in range(count):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % count]
            ay, ax = a.lat, a.lon
            by, bx = b.lat, b.lon
            crosses = (ay > y) != (by > y)
            if not crosses:
                continue
            x_at_y = ax + (y - ay) * (bx - ax) / (by - ay)
            if x < x_at_y:
                inside = not inside
        return inside

    def area_deg2(self) -> float:
        """Unsigned shoelace area in square degrees (diagnostics only)."""
        total = 0.0
        count = len(self.vertices)
        for i in range(count):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % count]
            total += a.lon * b.lat - b.lon * a.lat
        return abs(total) / 2.0


@dataclass(frozen=True)
class Region:
    """A polygon with holes: contained = in shell and in no hole."""

    shell: Polygon
    holes: tuple[Polygon, ...] = ()

    def contains(self, point: GeoPoint) -> bool:
        """True when the point is in the shell but outside every hole."""
        if not self.shell.contains(point):
            return False
        return not any(hole.contains(point) for hole in self.holes)
