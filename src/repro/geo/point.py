"""Geographic points and bounding boxes (WGS-84 degrees)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..exceptions import EmptyRegionError, InvalidCoordinateError

LAT_MIN, LAT_MAX = -90.0, 90.0
LON_MIN, LON_MAX = -180.0, 180.0


def validate_coordinates(lat: float, lon: float) -> None:
    """Raise :class:`InvalidCoordinateError` unless (lat, lon) is valid.

    NaN values, infinities and out-of-range degrees are all rejected.
    """
    if not (math.isfinite(lat) and math.isfinite(lon)):
        raise InvalidCoordinateError(f"non-finite coordinate: ({lat}, {lon})")
    if not (LAT_MIN <= lat <= LAT_MAX):
        raise InvalidCoordinateError(f"latitude {lat} outside [-90, 90]")
    if not (LON_MIN <= lon <= LON_MAX):
        raise InvalidCoordinateError(f"longitude {lon} outside [-180, 180]")


@dataclass(frozen=True, order=True)
class GeoPoint:
    """An immutable latitude/longitude pair in decimal degrees."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        validate_coordinates(self.lat, self.lon)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(lat, lon)``."""
        return (self.lat, self.lon)

    def __iter__(self) -> Iterator[float]:
        return iter((self.lat, self.lon))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.lat:.6f}, {self.lon:.6f})"


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned lat/lon rectangle.

    The box is inclusive on all edges.  Boxes crossing the antimeridian
    are not supported (Dublin is comfortably far from it).
    """

    south: float
    west: float
    north: float
    east: float

    def __post_init__(self) -> None:
        validate_coordinates(self.south, self.west)
        validate_coordinates(self.north, self.east)
        if self.south > self.north:
            raise InvalidCoordinateError(
                f"south ({self.south}) exceeds north ({self.north})"
            )
        if self.west > self.east:
            raise InvalidCoordinateError(
                f"west ({self.west}) exceeds east ({self.east})"
            )

    @classmethod
    def around(cls, points: Iterable[GeoPoint]) -> "BoundingBox":
        """Return the tightest box containing every point.

        Raises :class:`EmptyRegionError` when ``points`` is empty.
        """
        lats: list[float] = []
        lons: list[float] = []
        for point in points:
            lats.append(point.lat)
            lons.append(point.lon)
        if not lats:
            raise EmptyRegionError("cannot bound an empty set of points")
        return cls(min(lats), min(lons), max(lats), max(lons))

    def contains(self, point: GeoPoint) -> bool:
        """Return True when the point lies inside the box (inclusive)."""
        inside_lat = self.south <= point.lat <= self.north
        inside_lon = self.west <= point.lon <= self.east
        return inside_lat and inside_lon

    def expand(self, margin_deg: float) -> "BoundingBox":
        """Return a copy grown by ``margin_deg`` on every side (clamped)."""
        return BoundingBox(
            max(LAT_MIN, self.south - margin_deg),
            max(LON_MIN, self.west - margin_deg),
            min(LAT_MAX, self.north + margin_deg),
            min(LON_MAX, self.east + margin_deg),
        )

    @property
    def center(self) -> GeoPoint:
        """The box's midpoint."""
        return GeoPoint(
            (self.south + self.north) / 2.0, (self.west + self.east) / 2.0
        )

    @property
    def height_deg(self) -> float:
        """North-south extent in degrees."""
        return self.north - self.south

    @property
    def width_deg(self) -> float:
        """East-west extent in degrees."""
        return self.east - self.west


def centroid(points: Iterable[GeoPoint]) -> GeoPoint:
    """Arithmetic centroid of a set of points.

    For the sub-kilometre clusters this package works with, the planar
    average of degrees is indistinguishable from a true spherical
    centroid.  Raises :class:`EmptyRegionError` on empty input.
    """
    total_lat = 0.0
    total_lon = 0.0
    count = 0
    for point in points:
        total_lat += point.lat
        total_lon += point.lon
        count += 1
    if count == 0:
        raise EmptyRegionError("cannot take the centroid of no points")
    return GeoPoint(total_lat / count, total_lon / count)
