"""Geospatial substrate: points, distances, indexes and Dublin geography."""

from .distance import (
    bearing_deg,
    destination_point,
    equirectangular_m,
    haversine_m,
    local_projector,
    meters_per_degree,
)
from .dublin import (
    CITY_CENTER,
    DUBLIN_BBOX,
    DUBLIN_LAND,
    LANDMARKS,
    in_dublin,
    is_admissible,
    on_land,
)
from .index import GridIndex
from .point import BoundingBox, GeoPoint, centroid, validate_coordinates
from .polygon import Polygon, Region

__all__ = [
    "BoundingBox",
    "CITY_CENTER",
    "DUBLIN_BBOX",
    "DUBLIN_LAND",
    "GeoPoint",
    "GridIndex",
    "LANDMARKS",
    "Polygon",
    "Region",
    "bearing_deg",
    "centroid",
    "destination_point",
    "equirectangular_m",
    "haversine_m",
    "in_dublin",
    "is_admissible",
    "local_projector",
    "meters_per_degree",
    "on_land",
    "validate_coordinates",
]
