"""A uniform-grid spatial index over geographic points.

The cleaning, pre-assignment and selection stages repeatedly ask two
questions about tens of thousands of points: "what is the nearest station
to X?" and "which locations lie within r metres of X?".  A uniform grid
keyed on quantised lat/lon answers both in expected O(1) per query at
city scale, with the exact haversine distance used for the final checks.
"""

from __future__ import annotations

import math
from typing import Generic, Hashable, Iterable, Iterator, TypeVar

from ..exceptions import EmptyRegionError
from .distance import haversine_m, meters_per_degree
from .point import GeoPoint

K = TypeVar("K", bound=Hashable)


class GridIndex(Generic[K]):
    """Maps hashable keys to points and answers proximity queries.

    Parameters
    ----------
    cell_m:
        Edge length of a grid cell in metres.  Queries with radii near
        ``cell_m`` touch at most a 3x3 block of cells.
    reference_lat:
        Latitude used to fix the metres-per-degree scale.  Defaults to
        Dublin; any latitude within the data's extent works.
    """

    def __init__(self, cell_m: float = 100.0, reference_lat: float = 53.35) -> None:
        if cell_m <= 0:
            raise ValueError("cell_m must be positive")
        self._cell_m = cell_m
        per_lat, per_lon = meters_per_degree(reference_lat)
        self._lat_step = cell_m / per_lat
        self._lon_step = cell_m / per_lon
        self._cells: dict[tuple[int, int], dict[K, GeoPoint]] = {}
        self._points: dict[K, GeoPoint] = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def _cell_of(self, point: GeoPoint) -> tuple[int, int]:
        return (
            math.floor(point.lat / self._lat_step),
            math.floor(point.lon / self._lon_step),
        )

    def insert(self, key: K, point: GeoPoint) -> None:
        """Insert or move ``key`` to ``point``."""
        if key in self._points:
            self.remove(key)
        self._points[key] = point
        self._cells.setdefault(self._cell_of(point), {})[key] = point

    def remove(self, key: K) -> None:
        """Remove ``key``; raises KeyError when absent."""
        point = self._points.pop(key)
        cell = self._cell_of(point)
        bucket = self._cells[cell]
        del bucket[key]
        if not bucket:
            del self._cells[cell]

    def extend(self, items: Iterable[tuple[K, GeoPoint]]) -> None:
        """Bulk-insert ``(key, point)`` pairs."""
        for key, point in items:
            self.insert(key, point)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, key: K) -> bool:
        return key in self._points

    def __iter__(self) -> Iterator[K]:
        return iter(self._points)

    def position(self, key: K) -> GeoPoint:
        """Return the stored point for ``key``."""
        return self._points[key]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def within(self, center: GeoPoint, radius_m: float) -> list[tuple[K, float]]:
        """All keys within ``radius_m`` metres of ``center``.

        Returns ``(key, distance_m)`` pairs sorted by distance.  The
        grid prunes candidates; haversine makes the final decision.
        """
        if radius_m < 0:
            raise ValueError("radius_m must be non-negative")
        lat_span = math.ceil(radius_m / self._cell_m)
        lon_span = lat_span
        row0, col0 = self._cell_of(center)
        hits: list[tuple[K, float]] = []
        for row in range(row0 - lat_span, row0 + lat_span + 1):
            for col in range(col0 - lon_span, col0 + lon_span + 1):
                bucket = self._cells.get((row, col))
                if not bucket:
                    continue
                for key, point in bucket.items():
                    distance = haversine_m(center, point)
                    if distance <= radius_m:
                        hits.append((key, distance))
        hits.sort(key=lambda pair: (pair[1], str(pair[0])))
        return hits

    def nearest(self, center: GeoPoint, exclude: K | None = None) -> tuple[K, float]:
        """Nearest key to ``center`` and its distance in metres.

        ``exclude`` skips one key (e.g. the query point itself).  The
        search widens ring by ring until a hit is confirmed closer than
        the next unexplored ring could be.  Raises
        :class:`EmptyRegionError` when the index has no eligible keys.
        """
        eligible = len(self._points) - (1 if exclude in self._points else 0)
        if eligible <= 0:
            raise EmptyRegionError("nearest() on an empty index")
        row0, col0 = self._cell_of(center)
        best_key: K | None = None
        best_distance = math.inf
        # Enough rings to cover every occupied cell, whatever happens.
        last_ring = self._extent_rings(row0, col0)
        ring = 0
        while ring <= last_ring:
            for row, col in self._ring_cells(row0, col0, ring):
                bucket = self._cells.get((row, col))
                if not bucket:
                    continue
                for key, point in bucket.items():
                    if key == exclude:
                        continue
                    distance = haversine_m(center, point)
                    if distance < best_distance:
                        best_key = key
                        best_distance = distance
            if best_key is not None:
                # A hit at ring r is guaranteed minimal once every ring
                # whose nearest possible point could still beat it has
                # been searched.
                safe_rings = math.ceil(best_distance / self._cell_m) + 1
                if ring >= safe_rings:
                    break
            ring += 1
        if best_key is None:
            raise EmptyRegionError("nearest() found no eligible key")
        return best_key, best_distance

    def _extent_rings(self, row0: int, col0: int) -> int:
        """How many rings are needed to cover every occupied cell."""
        spread = 0
        for row, col in self._cells:
            spread = max(spread, abs(row - row0), abs(col - col0))
        return spread + 1

    @staticmethod
    def _ring_cells(row0: int, col0: int, ring: int) -> Iterator[tuple[int, int]]:
        """Cells at Chebyshev distance ``ring`` from (row0, col0)."""
        if ring == 0:
            yield (row0, col0)
            return
        for col in range(col0 - ring, col0 + ring + 1):
            yield (row0 - ring, col)
            yield (row0 + ring, col)
        for row in range(row0 - ring + 1, row0 + ring):
            yield (row, col0 - ring)
            yield (row, col0 + ring)
