"""A uniform-grid spatial index over geographic points.

The cleaning, pre-assignment and selection stages repeatedly ask two
questions about tens of thousands of points: "what is the nearest station
to X?" and "which locations lie within r metres of X?".  A uniform grid
keyed on quantised lat/lon answers both in expected O(1) per query at
city scale, with the exact haversine distance used for the final checks.

Two layers keep the exact check off the hot path without changing any
result:

* every stored point carries its planar (x, y) metres at the reference
  latitude, and candidates are discarded on squared planar distance
  before haversine runs — the planar cutoff carries a conservative
  slack (:data:`PREFILTER_SLACK`/:data:`PREFILTER_PAD_M`, valid while
  every point sits within :data:`PREFILTER_LAT_BAND_DEG` degrees of the
  reference latitude; the prefilter disables itself otherwise), so no
  candidate inside the exact radius is ever skipped;
* the occupied-cell bounding box is maintained incrementally, so
  ``nearest``'s ring bound costs O(1) per query instead of a scan over
  every occupied cell.

``tests/test_geo_index.py`` pins query results against brute-force
haversine over every key.
"""

from __future__ import annotations

import math
from typing import Generic, Hashable, Iterable, Iterator, Sequence, TypeVar

from ..config import EARTH_RADIUS_M
from ..exceptions import EmptyRegionError
from .distance import meters_per_degree
from .point import GeoPoint

_radians = math.radians
_sin = math.sin
_cos = math.cos
_asin = math.asin
_sqrt = math.sqrt

K = TypeVar("K", bound=Hashable)

#: Relative + absolute slack of the planar prefilter.  Within the
#: latitude band (and below the max reference latitude, where the
#: worst-case longitude-scale drift cos(ref)/cos(ref+band) stays under
#: ~8 %) the planar distance overestimates haversine by at most that
#: drift plus sub-metre curvature terms, so a 10 % + 25 m cutoff can
#: never discard a point the exact check would keep.  Indexes centred
#: closer to a pole than the max simply run without the prefilter.
PREFILTER_SLACK = 1.10
PREFILTER_PAD_M = 25.0
PREFILTER_LAT_BAND_DEG = 2.0
PREFILTER_MAX_REFERENCE_LAT_DEG = 66.0


class GridIndex(Generic[K]):
    """Maps hashable keys to points and answers proximity queries.

    Parameters
    ----------
    cell_m:
        Edge length of a grid cell in metres.  Queries with radii near
        ``cell_m`` touch at most a 3x3 block of cells.
    reference_lat:
        Latitude used to fix the metres-per-degree scale.  Defaults to
        Dublin; any latitude within the data's extent works.
    """

    def __init__(self, cell_m: float = 100.0, reference_lat: float = 53.35) -> None:
        if cell_m <= 0:
            raise ValueError("cell_m must be positive")
        self._cell_m = cell_m
        self._reference_lat = reference_lat
        per_lat, per_lon = meters_per_degree(reference_lat)
        self._per_lat = per_lat
        self._per_lon = per_lon
        self._lat_step = cell_m / per_lat
        self._lon_step = cell_m / per_lon
        #: cell -> {key: (point, x, y, cos_phi)} with (x, y) planar
        #: metres and cos_phi the precomputed haversine latitude term.
        self._cells: dict[
            tuple[int, int], dict[K, tuple[GeoPoint, float, float, float]]
        ] = {}
        self._points: dict[K, GeoPoint] = {}
        #: Occupied-cell bounding box; None means "recompute lazily"
        #: (set after a removal on the boundary), False means empty.
        self._extent: tuple[int, int, int, int] | None | bool = False
        #: True while every indexed point is close enough to the
        #: reference latitude for the planar prefilter to be safe (and
        #: the reference itself is far enough from the poles for the
        #: slack to cover the longitude-scale drift).
        self._prefilter_ok = (
            abs(reference_lat) <= PREFILTER_MAX_REFERENCE_LAT_DEG
        )
        #: Mutation counter; the accel batch kernels key their cached
        #: array snapshot on it so any insert/remove invalidates it.
        self._version = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def _cell_of(self, point: GeoPoint) -> tuple[int, int]:
        return (
            math.floor(point.lat / self._lat_step),
            math.floor(point.lon / self._lon_step),
        )

    def insert(self, key: K, point: GeoPoint) -> None:
        """Insert or move ``key`` to ``point``."""
        if key in self._points:
            self.remove(key)
        self._version += 1
        self._points[key] = point
        cell = self._cell_of(point)
        self._cells.setdefault(cell, {})[key] = (
            point,
            point.lon * self._per_lon,
            point.lat * self._per_lat,
            _cos(_radians(point.lat)),
        )
        if abs(point.lat - self._reference_lat) > PREFILTER_LAT_BAND_DEG:
            self._prefilter_ok = False
        extent = self._extent
        if extent is False:
            self._extent = (cell[0], cell[0], cell[1], cell[1])
        elif extent is not None:
            row_min, row_max, col_min, col_max = extent
            self._extent = (
                min(row_min, cell[0]),
                max(row_max, cell[0]),
                min(col_min, cell[1]),
                max(col_max, cell[1]),
            )

    def remove(self, key: K) -> None:
        """Remove ``key``; raises KeyError when absent."""
        point = self._points.pop(key)
        self._version += 1
        cell = self._cell_of(point)
        bucket = self._cells[cell]
        del bucket[key]
        if not bucket:
            del self._cells[cell]
            if not self._cells:
                self._extent = False
            elif self._extent is not None and self._extent is not False:
                row_min, row_max, col_min, col_max = self._extent
                if cell[0] in (row_min, row_max) or cell[1] in (col_min, col_max):
                    self._extent = None  # boundary shrank; recompute lazily

    def extend(self, items: Iterable[tuple[K, GeoPoint]]) -> None:
        """Bulk-insert ``(key, point)`` pairs."""
        for key, point in items:
            self.insert(key, point)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, key: K) -> bool:
        return key in self._points

    def __iter__(self) -> Iterator[K]:
        return iter(self._points)

    def position(self, key: K) -> GeoPoint:
        """Return the stored point for ``key``."""
        return self._points[key]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _planar(self, point: GeoPoint) -> tuple[float, float]:
        return (point.lon * self._per_lon, point.lat * self._per_lat)

    def _cutoff_sq(self, center: GeoPoint, radius_m: float) -> float:
        """Squared planar cutoff for an exact radius, or +inf when the
        prefilter cannot be trusted for this centre/index."""
        if not self._prefilter_ok or abs(
            center.lat - self._reference_lat
        ) > PREFILTER_LAT_BAND_DEG:
            return math.inf
        cutoff = radius_m * PREFILTER_SLACK + PREFILTER_PAD_M
        return cutoff * cutoff

    def within(self, center: GeoPoint, radius_m: float) -> list[tuple[K, float]]:
        """All keys within ``radius_m`` metres of ``center``.

        Returns ``(key, distance_m)`` pairs sorted by distance.  The
        grid prunes candidates, the planar prefilter discards the bulk
        of the remainder; haversine makes the final decision.
        """
        if radius_m < 0:
            raise ValueError("radius_m must be non-negative")
        lat_span = math.ceil(radius_m / self._cell_m)
        lon_span = lat_span
        row0, col0 = self._cell_of(center)
        qx, qy = self._planar(center)
        cutoff_sq = self._cutoff_sq(center, radius_m)
        cells = self._cells
        # Inlined haversine (bit-identical to distance.haversine_m):
        # the query-side radian/cosine terms hoist out of the loop and
        # the point-side ones were precomputed at insert.
        qlat = center.lat
        qlon = center.lon
        cos_phi1 = _cos(_radians(qlat))
        hits: list[tuple[K, float]] = []
        append = hits.append
        for row in range(row0 - lat_span, row0 + lat_span + 1):
            for col in range(col0 - lon_span, col0 + lon_span + 1):
                bucket = cells.get((row, col))
                if not bucket:
                    continue
                for key, (point, x, y, cos_phi2) in bucket.items():
                    dx = x - qx
                    dy = y - qy
                    if dx * dx + dy * dy > cutoff_sq:
                        continue
                    sin_dphi = _sin(_radians(point.lat - qlat) / 2.0)
                    sin_dlam = _sin(_radians(point.lon - qlon) / 2.0)
                    h = sin_dphi * sin_dphi + cos_phi1 * cos_phi2 * sin_dlam * sin_dlam
                    distance = 2.0 * EARTH_RADIUS_M * _asin(_sqrt(min(1.0, h)))
                    if distance <= radius_m:
                        append((key, distance))
        hits.sort(key=lambda pair: (pair[1], str(pair[0])))
        return hits

    def within_many(
        self, centers: Sequence[GeoPoint], radius_m: float
    ) -> list[list[tuple[K, float]]]:
        """:meth:`within` for a batch of centres, in input order.

        Large batches over moderate indexes are served by the
        bit-identical numpy kernel in :mod:`repro.perf.accel` when it
        is available; results never depend on which path ran.
        """
        from ..perf import accel

        if accel.use_grid_batch(self, centers):
            return accel.within_batch(self, centers, radius_m)
        return [self.within(center, radius_m) for center in centers]

    def nearest(self, center: GeoPoint, exclude: K | None = None) -> tuple[K, float]:
        """Nearest key to ``center`` and its distance in metres.

        ``exclude`` skips one key (e.g. the query point itself).  The
        search widens ring by ring until a hit is confirmed closer than
        the next unexplored ring could be.  Raises
        :class:`EmptyRegionError` when the index has no eligible keys.
        """
        eligible = len(self._points) - (1 if exclude in self._points else 0)
        if eligible <= 0:
            raise EmptyRegionError("nearest() on an empty index")
        row0, col0 = self._cell_of(center)
        qx, qy = self._planar(center)
        prefilter = self._prefilter_ok and abs(
            center.lat - self._reference_lat
        ) <= PREFILTER_LAT_BAND_DEG
        cutoff_sq = math.inf
        cells = self._cells
        qlat = center.lat
        qlon = center.lon
        cos_phi1 = _cos(_radians(qlat))
        best_key: K | None = None
        best_distance = math.inf
        # Enough rings to cover every occupied cell, whatever happens.
        last_ring = self._extent_rings(row0, col0)
        ring = 0
        while ring <= last_ring:
            for row, col in self._ring_cells(row0, col0, ring):
                bucket = cells.get((row, col))
                if not bucket:
                    continue
                for key, (point, x, y, cos_phi2) in bucket.items():
                    if key == exclude:
                        continue
                    dx = x - qx
                    dy = y - qy
                    if dx * dx + dy * dy > cutoff_sq:
                        continue
                    sin_dphi = _sin(_radians(point.lat - qlat) / 2.0)
                    sin_dlam = _sin(_radians(point.lon - qlon) / 2.0)
                    h = (
                        sin_dphi * sin_dphi
                        + cos_phi1 * cos_phi2 * sin_dlam * sin_dlam
                    )
                    distance = 2.0 * EARTH_RADIUS_M * _asin(_sqrt(min(1.0, h)))
                    if distance < best_distance:
                        best_key = key
                        best_distance = distance
                        if prefilter:
                            cutoff = (
                                best_distance * PREFILTER_SLACK + PREFILTER_PAD_M
                            )
                            cutoff_sq = cutoff * cutoff
            if best_key is not None:
                # A hit at ring r is guaranteed minimal once every ring
                # whose nearest possible point could still beat it has
                # been searched.
                safe_rings = math.ceil(best_distance / self._cell_m) + 1
                if ring >= safe_rings:
                    break
            ring += 1
        if best_key is None:
            raise EmptyRegionError("nearest() found no eligible key")
        return best_key, best_distance

    def nearest_many(
        self, centers: Sequence[GeoPoint], exclude: K | None = None
    ) -> list[tuple[K, float]]:
        """:meth:`nearest` for a batch of centres, in input order.

        Dispatches to the bit-identical batch kernel exactly like
        :meth:`within_many`.
        """
        from ..perf import accel

        if accel.use_grid_batch(self, centers):
            return accel.nearest_batch(self, centers, exclude)
        return [self.nearest(center, exclude) for center in centers]

    def neighbour_pairs(self, radius_m: float) -> Iterator[tuple[K, K]]:
        """Every unordered key pair within ``radius_m``, yielded once.

        Pair order is arbitrary — the consumer (proximity-graph
        union-find) is order-independent.  Cells are matched with their
        "forward" neighbours so each candidate pair is examined exactly
        once; the planar prefilter and exact haversine then decide.
        """
        if radius_m < 0:
            raise ValueError("radius_m must be non-negative")
        span = math.ceil(radius_m / self._cell_m)
        offsets = [(0, dc) for dc in range(1, span + 1)] + [
            (dr, dc)
            for dr in range(1, span + 1)
            for dc in range(-span, span + 1)
        ]
        use_prefilter = self._prefilter_ok
        cutoff = radius_m * PREFILTER_SLACK + PREFILTER_PAD_M
        cutoff_sq = cutoff * cutoff if use_prefilter else math.inf
        cells = self._cells
        two_r = 2.0 * EARTH_RADIUS_M
        for (row, col), bucket in cells.items():
            entries = list(bucket.items())
            # Pairs inside the cell.
            for i, (key_a, (point_a, xa, ya, cos_a)) in enumerate(entries):
                lat_a = point_a.lat
                lon_a = point_a.lon
                for key_b, (point_b, xb, yb, cos_b) in entries[i + 1 :]:
                    dx = xb - xa
                    dy = yb - ya
                    if dx * dx + dy * dy > cutoff_sq:
                        continue
                    sin_dphi = _sin(_radians(point_b.lat - lat_a) / 2.0)
                    sin_dlam = _sin(_radians(point_b.lon - lon_a) / 2.0)
                    h = sin_dphi * sin_dphi + cos_a * cos_b * sin_dlam * sin_dlam
                    if two_r * _asin(_sqrt(min(1.0, h))) <= radius_m:
                        yield (key_a, key_b)
            # Pairs against forward neighbour cells.
            for d_row, d_col in offsets:
                other = cells.get((row + d_row, col + d_col))
                if not other:
                    continue
                for key_a, (point_a, xa, ya, cos_a) in entries:
                    lat_a = point_a.lat
                    lon_a = point_a.lon
                    for key_b, (point_b, xb, yb, cos_b) in other.items():
                        dx = xb - xa
                        dy = yb - ya
                        if dx * dx + dy * dy > cutoff_sq:
                            continue
                        sin_dphi = _sin(_radians(point_b.lat - lat_a) / 2.0)
                        sin_dlam = _sin(_radians(point_b.lon - lon_a) / 2.0)
                        h = (
                            sin_dphi * sin_dphi
                            + cos_a * cos_b * sin_dlam * sin_dlam
                        )
                        if two_r * _asin(_sqrt(min(1.0, h))) <= radius_m:
                            yield (key_a, key_b)

    def _extent_rings(self, row0: int, col0: int) -> int:
        """How many rings are needed to cover every occupied cell.

        Served from the incrementally maintained bounding box; after a
        boundary removal the box is rebuilt once, here.  A box corner
        may overshoot the true occupied spread — the extra rings are
        empty, so results are unaffected.
        """
        extent = self._extent
        if extent is False:
            return 1
        if extent is None:
            row_min = col_min = math.inf
            row_max = col_max = -math.inf
            for row, col in self._cells:
                if row < row_min:
                    row_min = row
                if row > row_max:
                    row_max = row
                if col < col_min:
                    col_min = col
                if col > col_max:
                    col_max = col
            extent = self._extent = (row_min, row_max, col_min, col_max)
        row_min, row_max, col_min, col_max = extent
        spread = max(
            abs(row_min - row0),
            abs(row_max - row0),
            abs(col_min - col0),
            abs(col_max - col0),
        )
        return spread + 1

    @staticmethod
    def _ring_cells(row0: int, col0: int, ring: int) -> Iterator[tuple[int, int]]:
        """Cells at Chebyshev distance ``ring`` from (row0, col0)."""
        if ring == 0:
            yield (row0, col0)
            return
        for col in range(col0 - ring, col0 + ring + 1):
            yield (row0 - ring, col)
            yield (row0 + ring, col)
        for row in range(row0 - ring + 1, row0 + ring):
            yield (row, col0 - ring)
            yield (row, col0 + ring)
