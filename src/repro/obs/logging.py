"""Structured JSON event logs: one line per request, one per transition.

:class:`JsonEventLog` writes newline-delimited JSON objects to a file
or stream.  Every line is a single compact-JSON object (no embedded
newlines — multi-line payloads are escaped by the JSON encoder), so a
log can be consumed by ``jq``, shipped line-by-line, or validated by
CI without a parser state machine.

Two event shapes are emitted by the service stack:

* ``{"event": "http_request", ...}`` — written by the HTTP front-end
  when a response finishes: trace id, method, matched route template,
  raw path, status, duration, and the results/stage-cache counter
  deltas the request caused (how many store hits/misses this one
  request took, not cumulative totals);
* ``{"event": "job", ...}`` — written by the service on every job
  lifecycle transition it journals: job id, trace id, status,
  fingerprint, and timestamps.

Both carry ``ts`` (Unix seconds) and are enabled together by
``repro serve --access-log [PATH]`` (``-`` for stderr).  Writes are
serialised by a lock and never raise — a full disk degrades to
dropped lines, not a failed request.  After
:data:`JsonEventLog.TRIP_AFTER` *consecutive* write failures the sink
trips: further emits return before even serialising, so a dead disk
costs one flag check per event instead of a doomed syscall.  One
successful write (e.g. the disk came back before the trip) resets the
streak.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from pathlib import Path
from typing import Any, IO

__all__ = ["JsonEventLog", "REQUIRED_KEYS"]

#: Keys every emitted line carries, whatever the event type — the
#: contract the CI log-format leg asserts.
REQUIRED_KEYS = ("event", "ts", "trace_id")


class JsonEventLog:
    """A thread-safe newline-delimited JSON event sink.

    Parameters
    ----------
    target:
        A path (opened in append mode), an open text stream, or the
        string ``"-"`` for stderr.
    """

    #: Consecutive write failures after which the sink stops trying.
    TRIP_AFTER = 8

    def __init__(self, target: str | Path | IO[str]) -> None:
        self._lock = threading.Lock()
        self._owns_stream = False
        if hasattr(target, "write"):
            self._stream: IO[str] = target  # type: ignore[assignment]
        elif str(target) == "-":
            self._stream = sys.stderr
        else:
            path = Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = path.open("a", encoding="utf-8")
            self._owns_stream = True
        #: Lines successfully written (observability of the log itself).
        self.lines_written = 0
        #: Lines dropped by write failures or a tripped sink.
        self.lines_dropped = 0
        self._consecutive_failures = 0
        #: True once :data:`TRIP_AFTER` consecutive writes failed; the
        #: sink is permanently quiet from then on (the stream is gone —
        #: a rotated-away file or revoked stderr does not come back).
        self.tripped = False

    def emit(self, event: str, **fields: Any) -> None:
        """Write one event line; never raises.

        ``event`` and a wall-clock ``ts`` are added to ``fields``;
        compact separators and ``sort_keys`` keep lines canonical and
        diffable.  Values must be JSON-safe (the emitting call sites
        only pass strings and numbers); anything else is stringified
        rather than allowed to break the serving path.
        """
        if self.tripped:
            self.lines_dropped += 1
            return
        payload = {"event": event, "ts": round(time.time(), 6), **fields}
        try:
            line = json.dumps(
                payload, sort_keys=True, separators=(",", ":"), default=str
            )
        except (TypeError, ValueError):
            return
        with self._lock:
            try:
                self._stream.write(line + "\n")
                self._stream.flush()
            except (OSError, ValueError):
                # A full disk / closed stream drops lines, not requests.
                self.lines_dropped += 1
                self._consecutive_failures += 1
                if self._consecutive_failures >= self.TRIP_AFTER:
                    self.tripped = True
            else:
                self.lines_written += 1
                self._consecutive_failures = 0

    def close(self) -> None:
        """Close the underlying stream if this log opened it."""
        with self._lock:
            if self._owns_stream:
                try:
                    self._stream.close()
                except OSError:
                    pass
