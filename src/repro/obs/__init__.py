"""repro.obs — the unified observability plane.

One zero-dependency subsystem threaded through every layer of the
service stack, answering "what is the system doing under load" with
three joined signals:

* **metrics** (:mod:`repro.obs.metrics`) — a thread-safe registry of
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` instruments
  rendered in Prometheus text format by ``GET /v1/metrics`` and the
  ``repro metrics`` CLI.  The service stack's instrument set lives in
  :class:`~repro.obs.instruments.ServiceMetrics`; store namespaces are
  exposed through scrape-time callbacks reading the same live counters
  ``/v1/healthz`` reports;
* **trace ids** (:mod:`repro.obs.trace`) — every HTTP request and job
  carries an opaque hex token, echoed as ``X-Repro-Trace-Id`` on every
  response and journalled with the job, so one slow request joins to
  its access-log line, job document and per-stage timings;
* **structured logs** (:mod:`repro.obs.logging`) — one single-line
  JSON object per HTTP request and per job transition, behind
  ``repro serve --access-log``.

See ``docs/OBSERVABILITY.md`` for the operator-facing walkthrough.
"""

from .instruments import ServiceMetrics, namespace_samples, observe_stage_report
from .logging import JsonEventLog, REQUIRED_KEYS
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sample,
)
from .trace import TRACE_HEADER, is_trace_id, new_trace_id

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonEventLog",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "REQUIRED_KEYS",
    "Sample",
    "ServiceMetrics",
    "TRACE_HEADER",
    "is_trace_id",
    "namespace_samples",
    "new_trace_id",
    "observe_stage_report",
]
