"""The service stack's instrument set, defined in one place.

:class:`ServiceMetrics` owns every metric the service layers record —
the HTTP front-end, :class:`~repro.service.service.ExpansionService`,
and the pipeline-stage bridge — so metric names, label sets and help
strings live here instead of being scattered through the layers that
increment them.  A disabled registry makes every instrument a no-op;
the call sites stay unconditional.

Store namespaces are exposed through scrape-time callbacks
(:func:`namespace_samples`): the registry reads the *same* live
counters ``/v1/healthz`` reports, so the two exposition surfaces can
never disagree and the hot store paths carry zero extra bookkeeping.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, Mapping

from .metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry, Sample

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..perf.timer import PerfReport

__all__ = ["ServiceMetrics", "namespace_samples", "observe_stage_report"]

#: Stage wall-clock buckets: stages run from sub-millisecond (warm,
#: cached) to tens of seconds (cold Louvain at scale).
STAGE_BUCKETS = DEFAULT_LATENCY_BUCKETS


class ServiceMetrics:
    """Every instrument of one service process, bound to a registry."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        # HTTP front-end ------------------------------------------------
        self.http_requests = registry.counter(
            "repro_http_requests_total",
            "HTTP requests served, by method, route template and status.",
            labels=("method", "route", "status"),
        )
        self.http_request_seconds = registry.histogram(
            "repro_http_request_seconds",
            "Wall-clock request latency by route template.",
            labels=("route",),
        )
        # Jobs ----------------------------------------------------------
        self.job_transitions = registry.counter(
            "repro_job_transitions_total",
            "Job lifecycle transitions, by resulting state.",
            labels=("state",),
        )
        self.dedup_hits = registry.counter(
            "repro_job_dedup_hits_total",
            "Submissions that joined an identical in-flight job.",
        )
        self.store_served = registry.counter(
            "repro_job_store_served_total",
            "Submissions answered from the results store without compute.",
        )
        self.pipeline_executions = registry.counter(
            "repro_pipeline_executions_total",
            "Pipeline executions actually run (not deduplicated/stored).",
        )
        # Resilience ----------------------------------------------------
        self.jobs_shed = registry.counter(
            "repro_jobs_shed_total",
            "Submissions refused because the admission queue was full.",
        )
        self.watchdog_failures = registry.counter(
            "repro_watchdog_failures_total",
            "Running jobs the watchdog timed out on a stale heartbeat.",
        )
        # Pipeline stages ----------------------------------------------
        self.stage_seconds = registry.histogram(
            "repro_stage_seconds",
            "Per-stage pipeline wall clock (cached lookups included).",
            labels=("stage", "cached"),
            buckets=STAGE_BUCKETS,
        )
        # Incremental recompute -----------------------------------------
        self.incremental_runs = registry.counter(
            "repro_incremental_runs_total",
            "Pipeline executions that merged a parent lineage delta "
            "instead of recomputing from scratch.",
        )
        self.incremental_slices = registry.counter(
            "repro_incremental_slices_total",
            "Temporal slices touched by incremental runs, by outcome "
            "(reused = served warm, recomputed = delta invalidated).",
            labels=("outcome",),
        )

    # ------------------------------------------------------------------
    # Recording helpers (the layers call these)
    # ------------------------------------------------------------------

    def observe_http(
        self, method: str, route: str, status: int, seconds: float
    ) -> None:
        self.http_requests.labels(method, route, status).inc()
        self.http_request_seconds.labels(route).observe(seconds)

    def observe_transition(self, state: str) -> None:
        self.job_transitions.labels(state).inc()

    def observe_stage(self, stage: str, seconds: float, cached: bool) -> None:
        self.stage_seconds.labels(
            stage, "true" if cached else "false"
        ).observe(seconds)

    def observe_incremental(self, report: Mapping[str, Any]) -> None:
        """Record one incremental pipeline execution.

        ``report`` is
        :meth:`~repro.pipeline.runner.PipelineRunner.incremental_report`;
        cold runs (``mode != "incremental"``) record nothing.
        """
        if report.get("mode") != "incremental":
            return
        self.incremental_runs.inc()
        self.incremental_slices.labels("reused").inc(
            report.get("slices_reused", 0)
        )
        self.incremental_slices.labels("recomputed").inc(
            report.get("slices_recomputed", 0)
        )

    # ------------------------------------------------------------------
    # Scrape-time views
    # ------------------------------------------------------------------

    def bind_job_table(self, jobs_by_state: Any) -> None:
        """Register a live job-table view.

        ``jobs_by_state`` is a zero-argument callable returning
        ``{state: count}`` — read under the service mutex at scrape
        time, so the gauge is exact, not an increment shadow.
        """

        def collect() -> Iterator[Sample]:
            for state, count in sorted(jobs_by_state().items()):
                yield Sample(
                    "repro_jobs_current",
                    "gauge",
                    "Jobs currently retained in the job table, by state.",
                    (("state", state),),
                    count,
                )

        self.registry.register_callback(collect)

    def bind_namespaces(self, namespaces: Mapping[str, Any]) -> None:
        """Expose store namespaces (``{label: Namespace}``) at scrape time."""

        def collect() -> Iterator[Sample]:
            for label in sorted(namespaces):
                yield from namespace_samples(label, namespaces[label])

        self.registry.register_callback(collect)

    def bind_worker(self, worker: int) -> None:
        """Expose this process's pre-fork worker index.

        One constant-1 gauge with a ``worker`` label — the idiom that
        lets an aggregator count live workers behind one
        ``SO_REUSEPORT`` port and tells their scrapes apart.
        """

        def collect() -> Iterator[Sample]:
            yield Sample(
                "repro_service_worker",
                "gauge",
                "Constant 1, labelled by pre-fork worker index.",
                (("worker", str(worker)),),
                1,
            )

        self.registry.register_callback(collect)

    def bind_bytes_cache(self, stats: Any) -> None:
        """Expose the results byte cache's live counters at scrape time.

        ``stats`` is :meth:`repro.service.bytescache.BytesLRU.stats` —
        the same dict ``/v1/healthz`` embeds.  The hit/miss counters
        are the load-test regression gate for "zero JSON parses after
        warm-up": a warm request that misses the byte tier re-parses.
        """

        def collect() -> Iterator[Sample]:
            doc = stats()
            for key, kind, help_text in (
                ("hits", "counter", "Warm requests served as cached bytes."),
                ("misses", "counter",
                 "Requests that re-rendered their payload."),
                ("stores", "counter", "Rendered payloads cached."),
                ("evictions", "counter", "Payloads evicted by budget."),
                ("invalidations", "counter",
                 "Payloads dropped because their entry changed."),
                ("entries", "gauge", "Rendered payloads currently cached."),
                ("bytes", "gauge", "Payload bytes currently cached."),
            ):
                suffix = f"{key}_total" if kind == "counter" else key
                yield Sample(
                    f"repro_results_bytes_cache_{suffix}",
                    kind,
                    help_text,
                    (),
                    doc[key],
                )

        self.registry.register_callback(collect)

    def bind_ingestion(self, stats: Any) -> None:
        """Expose the dataset store's append counters at scrape time.

        ``stats`` is
        :meth:`repro.service.datasets.DatasetStore.ingestion_stats` —
        the same dict the ``/v1/healthz`` ``ingestion`` block embeds,
        so the two surfaces can never disagree.
        """

        def collect() -> Iterator[Sample]:
            doc = stats()
            for key, help_text in (
                ("appends", "Dataset appends accepted (PATCH or CLI)."),
                ("bytes_appended",
                 "Delta bytes appended onto stored rental logs."),
                ("slices_invalidated",
                 "Temporal slice digests re-chained by appends."),
            ):
                yield Sample(
                    f"repro_ingest_{key}_total",
                    "counter",
                    help_text,
                    (),
                    doc[key],
                )

        self.registry.register_callback(collect)

    def bind_breaker(self, snapshot: Any) -> None:
        """Expose a circuit breaker's state at scrape time.

        ``snapshot`` is the breaker's zero-argument ``snapshot()`` —
        the same document ``/v1/healthz`` embeds, so the gauge and
        healthz can never disagree.  The state gauge encodes
        closed=0, half_open=1, open=2 (the
        :data:`~repro.resilience.breaker.BREAKER_STATES` order).
        """
        from ..resilience.breaker import BREAKER_STATES

        def collect() -> Iterator[Sample]:
            doc = snapshot()
            yield Sample(
                "repro_circuit_breaker_state",
                "gauge",
                "Store-write circuit breaker state "
                "(0 closed, 1 half-open, 2 open).",
                (),
                BREAKER_STATES.index(doc["state"]),
            )
            yield Sample(
                "repro_circuit_breaker_trips_total",
                "counter",
                "Times the store-write circuit breaker opened.",
                (),
                doc["trips"],
            )

        self.registry.register_callback(collect)


#: (metric suffix, Namespace stats key, kind, help)
_NAMESPACE_METRICS = (
    ("hits_total", "hits", "counter", "Warm reads served by the namespace."),
    ("misses_total", "misses", "counter", "Reads that found no entry."),
    ("stores_total", "stores", "counter", "Entries written."),
    ("evictions_total", "evictions", "counter", "Entries evicted by quota."),
    ("touch_writes_total", "touch_writes", "counter",
     "Recency stamps written through to the backend."),
    ("retries_total", "retries", "counter",
     "Extra backend attempts after transient faults (retry policy)."),
    ("entries", "entries", "gauge", "Complete entries currently stored."),
    ("bytes", "bytes", "gauge", "Accounted bytes currently stored."),
)


def namespace_samples(label: str, namespace: Any) -> Iterator[Sample]:
    """Registry rows for one store namespace's live counters.

    Reads :meth:`repro.store.Namespace.stats` — the exact mapping
    ``/v1/healthz`` serves (occupancy comes from the same TTL-cached
    scan), keyed by a ``namespace`` label.
    """
    stats = namespace.stats()
    for suffix, key, kind, help_text in _NAMESPACE_METRICS:
        if key not in stats:
            continue
        yield Sample(
            f"repro_store_{suffix}",
            kind,
            f"{help_text} (per store namespace)",
            (("namespace", label),),
            stats[key],
        )


def observe_stage_report(metrics: ServiceMetrics, report: "PerfReport") -> None:
    """Bridge a :class:`~repro.perf.PerfReport` into the stage histogram.

    Every top-level ``stage:<name>`` section becomes one observation —
    the offline twin of the live
    :class:`~repro.pipeline.runner.PipelineRunner` ``stage_observer``
    hook, for reports recorded elsewhere (a journalled job's
    ``timings`` block, a bench run).
    """
    for section in report.sections:
        name = section.get("name", "")
        if not name.startswith("stage:"):
            continue
        cached = bool((section.get("meta") or {}).get("cached"))
        metrics.observe_stage(
            name.removeprefix("stage:"), section.get("wall_s", 0.0), cached
        )
