"""Trace ids: one opaque token joining a request to everything it did.

A trace id is 16 bytes of randomness as 32 lowercase hex characters —
no timestamps, no coordination, no dependency.  Every HTTP request
gets one (minted by the front-end, or adopted from a client-supplied
``X-Repro-Trace-Id`` header so multi-hop callers can stitch their own
traces through), every job records the trace of the submission that
created it, and the id is echoed on every HTTP response.  With that
one token an operator can join a slow request to its access-log line,
its job document (and per-stage ``timings`` block), and its journal
entry over a shared ``--store-dir``.

Validation is deliberately permissive — 8 to 64 hex characters — so
ids minted by other tracing systems (W3C trace ids are 32 hex chars
too) pass through unchanged; anything else is replaced rather than
propagated, keeping log fields and journal documents clean.
"""

from __future__ import annotations

import os
import re

__all__ = ["TRACE_HEADER", "is_trace_id", "new_trace_id"]

#: The HTTP request/response header carrying the trace id.
TRACE_HEADER = "X-Repro-Trace-Id"

_TRACE_ID = re.compile(r"^[0-9a-f]{8,64}$")


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id."""
    return os.urandom(16).hex()


def is_trace_id(value: object) -> bool:
    """Whether ``value`` is an acceptable (hex, bounded) trace id."""
    return isinstance(value, str) and bool(_TRACE_ID.match(value))
