"""The metrics registry: counters, gauges and fixed-bucket histograms.

Zero-dependency and thread-safe.  Instruments are created once (at
wiring time) and incremented on hot paths; a disabled registry hands
out instruments whose record methods return immediately, so the same
call sites can stay threaded through the code permanently — the
``metrics=False`` service pays two attribute reads per event.

Two collection styles coexist:

* **event instruments** — :class:`Counter` / :class:`Gauge` /
  :class:`Histogram`, incremented where the event happens (an HTTP
  request finishing, a job changing state, a stage completing);
* **callback samples** — :meth:`MetricsRegistry.register_callback`
  registers a function run at scrape time that yields
  :class:`Sample` rows read from live objects (store namespace
  counters, job-table composition).  Callbacks keep the registry
  consistent with ``/v1/healthz`` by construction: both read the same
  counters, neither double-counts.

:meth:`MetricsRegistry.render` serialises everything in the Prometheus
text exposition format (``text/plain; version=0.0.4``): one
``# HELP``/``# TYPE`` pair per metric name, samples with escaped label
values, histograms as cumulative ``_bucket`` series plus ``_sum`` and
``_count``.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Callable, Iterable, NamedTuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "Sample",
]

#: Request/stage latency buckets (seconds).  Fixed at definition time —
#: scrapers rely on stable bucket layouts — spanning sub-millisecond
#: warm serves to multi-second cold pipeline runs.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class Sample(NamedTuple):
    """One exposition row contributed by a scrape-time callback."""

    name: str
    kind: str  # "counter" or "gauge"
    help: str
    labels: tuple[tuple[str, str], ...]
    value: float


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text format."""
    return (
        value.replace("\\", "\\\\").replace("\"", "\\\"").replace("\n", "\\n")
    )


def format_value(value: float) -> str:
    """A Prometheus-parseable number (integers without a trailing .0)."""
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(labels: Iterable[tuple[str, str]]) -> str:
    pairs = [
        f'{name}="{escape_label_value(str(value))}"' for name, value in labels
    ]
    return "{" + ",".join(pairs) + "}" if pairs else ""


class Counter:
    """A monotonically increasing count (one labelled child)."""

    __slots__ = ("_enabled", "_lock", "_value")

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = enabled
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not self._enabled:
            return
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (one labelled child)."""

    __slots__ = ("_enabled", "_lock", "_value")

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = enabled
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        if not self._enabled:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not self._enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket distribution (one labelled child).

    Buckets store per-bucket hit counts; the cumulative ``le`` series
    required by the exposition format is computed at render time, so
    bucket counts are monotonically non-decreasing by construction.
    """

    __slots__ = ("_enabled", "_lock", "buckets", "_counts", "_sum", "_count")

    def __init__(
        self,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        enabled: bool = True,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted and non-empty")
        self._enabled = enabled
        self._lock = threading.Lock()
        self.buckets = tuple(float(bound) for bound in buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # trailing +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        if not self._enabled:
            return
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> tuple[list[int], float, int]:
        """(cumulative bucket counts incl. +Inf, sum, count) atomically."""
        with self._lock:
            counts = list(self._counts)
            total, count = self._sum, self._count
        cumulative: list[int] = []
        running = 0
        for n in counts:
            running += n
            cumulative.append(running)
        return cumulative, total, count

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """One metric name: help text, type, and children by label values."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: tuple[str, ...],
        enabled: bool,
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = labelnames
        self.enabled = enabled
        self.bucket_bounds = buckets
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], Any] = {}
        if not labelnames:
            self._children[()] = self._make_child()

    def _make_child(self) -> Any:
        if self.kind == "histogram":
            return Histogram(
                self.bucket_bounds or DEFAULT_LATENCY_BUCKETS, self.enabled
            )
        return _KINDS[self.kind](self.enabled)

    def labels(self, *values: Any) -> Any:
        """The child instrument for one label-value combination."""
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, got {values!r}"
            )
        key = tuple(str(value) for value in values)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    # Label-less families behave as their single child, so call sites
    # read naturally: ``registry.counter("x", "...").inc()``.
    def inc(self, amount: float = 1.0) -> None:
        self._children[()].inc(amount)

    def set(self, value: float) -> None:
        self._children[()].set(value)

    def dec(self, amount: float = 1.0) -> None:
        self._children[()].dec(amount)

    def observe(self, value: float) -> None:
        self._children[()].observe(value)

    @property
    def value(self) -> float:
        return self._children[()].value

    def children(self) -> list[tuple[tuple[str, ...], Any]]:
        with self._lock:
            return sorted(self._children.items())


class MetricsRegistry:
    """Every instrument of one process, renderable as Prometheus text.

    ``enabled=False`` builds a null registry: instruments exist (call
    sites stay unconditional) but record nothing and ``render`` reports
    the registry as disabled.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}
        self._callbacks: list[Callable[[], Iterable[Sample]]] = []

    # ------------------------------------------------------------------
    # Instrument creation (wiring time, not hot path)
    # ------------------------------------------------------------------

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labels: tuple[str, ...],
        buckets: tuple[float, ...] | None = None,
    ) -> _Family:
        if not _METRIC_NAME.match(name):
            raise ValueError(f"bad metric name {name!r}")
        for label in labels:
            if not _LABEL_NAME.match(label) or label.startswith("__"):
                raise ValueError(f"bad label name {label!r}")
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind or existing.labelnames != tuple(labels):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}{existing.labelnames}"
                    )
                return existing
            family = _Family(
                name, kind, help, tuple(labels), self.enabled, buckets
            )
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str, labels: tuple[str, ...] = ()
    ) -> _Family:
        return self._family(name, "counter", help, labels)

    def gauge(
        self, name: str, help: str, labels: tuple[str, ...] = ()
    ) -> _Family:
        return self._family(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str,
        labels: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> _Family:
        return self._family(name, "histogram", help, labels, buckets)

    def register_callback(
        self, callback: Callable[[], Iterable[Sample]]
    ) -> None:
        """Add a scrape-time sample source (live-object views)."""
        with self._lock:
            self._callbacks.append(callback)

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------

    def render(self) -> str:
        """The registry in Prometheus text format (version 0.0.4)."""
        lines: list[str] = []
        with self._lock:
            families = list(self._families.values())
            callbacks = list(self._callbacks)
        for family in families:
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, child in family.children():
                labels = tuple(zip(family.labelnames, key))
                if family.kind == "histogram":
                    cumulative, total, count = child.snapshot()
                    bounds = [*child.buckets, math.inf]
                    for bound, running in zip(bounds, cumulative):
                        bucket_labels = (*labels, ("le", format_value(bound)))
                        lines.append(
                            f"{family.name}_bucket"
                            f"{_render_labels(bucket_labels)} {running}"
                        )
                    lines.append(
                        f"{family.name}_sum{_render_labels(labels)} "
                        f"{format_value(total)}"
                    )
                    lines.append(
                        f"{family.name}_count{_render_labels(labels)} {count}"
                    )
                else:
                    lines.append(
                        f"{family.name}{_render_labels(labels)} "
                        f"{format_value(child.value)}"
                    )
        # Callback samples, grouped so HELP/TYPE appear once per name.
        grouped: dict[str, list[Sample]] = {}
        for callback in callbacks:
            for sample in callback():
                grouped.setdefault(sample.name, []).append(sample)
        for name in sorted(grouped):
            samples = grouped[name]
            if not _METRIC_NAME.match(name):
                raise ValueError(f"bad callback metric name {name!r}")
            lines.append(f"# HELP {name} {samples[0].help}")
            lines.append(f"# TYPE {name} {samples[0].kind}")
            for sample in samples:
                lines.append(
                    f"{name}{_render_labels(sample.labels)} "
                    f"{format_value(sample.value)}"
                )
        return "\n".join(lines) + "\n"


#: Shared disabled registry for call sites that always hold one.
NULL_REGISTRY = MetricsRegistry(enabled=False)
