"""A minimal SVG writer.

Rendering the paper's figures needs nothing more than circles, lines,
rectangles and text; this tiny builder keeps the repo free of plotting
dependencies while producing inspectable vector output.
"""

from __future__ import annotations

from pathlib import Path
from xml.sax.saxutils import escape


class SvgCanvas:
    """Accumulates SVG elements and serialises the document."""

    def __init__(self, width: float, height: float, background: str = "white") -> None:
        if width <= 0 or height <= 0:
            raise ValueError("canvas dimensions must be positive")
        self.width = width
        self.height = height
        self._elements: list[str] = []
        if background:
            self.rect(0, 0, width, height, fill=background, stroke="none")

    # ------------------------------------------------------------------
    # Elements
    # ------------------------------------------------------------------

    def circle(
        self,
        cx: float,
        cy: float,
        r: float,
        fill: str = "black",
        stroke: str = "none",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
    ) -> None:
        """Add a circle."""
        self._elements.append(
            f'<circle cx="{cx:.2f}" cy="{cy:.2f}" r="{r:.2f}" '
            f'fill="{fill}" stroke="{stroke}" stroke-width="{stroke_width:.2f}" '
            f'opacity="{opacity:.3f}"/>'
        )

    def line(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        stroke: str = "black",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
    ) -> None:
        """Add a line segment."""
        self._elements.append(
            f'<line x1="{x1:.2f}" y1="{y1:.2f}" x2="{x2:.2f}" y2="{y2:.2f}" '
            f'stroke="{stroke}" stroke-width="{stroke_width:.2f}" '
            f'opacity="{opacity:.3f}"/>'
        )

    def rect(
        self,
        x: float,
        y: float,
        width: float,
        height: float,
        fill: str = "black",
        stroke: str = "none",
        opacity: float = 1.0,
    ) -> None:
        """Add a rectangle."""
        self._elements.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{width:.2f}" '
            f'height="{height:.2f}" fill="{fill}" stroke="{stroke}" '
            f'opacity="{opacity:.3f}"/>'
        )

    def polyline(
        self,
        points: list[tuple[float, float]],
        stroke: str = "black",
        stroke_width: float = 1.0,
        fill: str = "none",
    ) -> None:
        """Add a polyline through ``points``."""
        coords = " ".join(f"{x:.2f},{y:.2f}" for x, y in points)
        self._elements.append(
            f'<polyline points="{coords}" fill="{fill}" stroke="{stroke}" '
            f'stroke-width="{stroke_width:.2f}"/>'
        )

    def polygon(
        self,
        points: list[tuple[float, float]],
        fill: str = "none",
        stroke: str = "black",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
    ) -> None:
        """Add a closed polygon."""
        coords = " ".join(f"{x:.2f},{y:.2f}" for x, y in points)
        self._elements.append(
            f'<polygon points="{coords}" fill="{fill}" stroke="{stroke}" '
            f'stroke-width="{stroke_width:.2f}" opacity="{opacity:.3f}"/>'
        )

    def text(
        self,
        x: float,
        y: float,
        content: str,
        size: float = 12.0,
        fill: str = "black",
        anchor: str = "start",
    ) -> None:
        """Add a text label."""
        self._elements.append(
            f'<text x="{x:.2f}" y="{y:.2f}" font-size="{size:.1f}" '
            f'fill="{fill}" text-anchor="{anchor}" '
            f'font-family="sans-serif">{escape(content)}</text>'
        )

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def to_string(self) -> str:
        """Serialise the SVG document."""
        header = (
            '<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width:.0f}" height="{self.height:.0f}" '
            f'viewBox="0 0 {self.width:.0f} {self.height:.0f}">'
        )
        return "\n".join([header, *self._elements, "</svg>"])

    def save(self, path: str | Path) -> Path:
        """Write the document to ``path`` and return it."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_string())
        return path
