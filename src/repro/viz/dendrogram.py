"""Dendrogram rendering for the HAC condensation stage.

Visualises a :class:`~repro.cluster.linkage.Dendrogram` with the cut
threshold drawn in, so the Section IV-A construction (complete linkage
cut at 100 m) can be inspected for any cluster.
"""

from __future__ import annotations

from ..cluster.linkage import Dendrogram
from .svg import SvgCanvas

_MARGIN = 40.0


def render_dendrogram(
    dendrogram: Dendrogram,
    cut_height: float | None = None,
    width: float = 800.0,
    height: float = 400.0,
    title: str = "HAC dendrogram",
) -> SvgCanvas:
    """Draw a dendrogram; merge height on the y axis (0 at the bottom).

    ``cut_height`` adds the dashed-equivalent threshold line (drawn
    solid red) used by the Cluster-Boundary rule.
    """
    canvas = SvgCanvas(width, height)
    n = dendrogram.n_points
    canvas.text(_MARGIN, 20, title, size=13)
    if n == 0:
        return canvas

    max_height = max(
        (merge.height for merge in dendrogram.merges), default=1.0
    ) or 1.0
    plot_width = width - 2 * _MARGIN
    plot_height = height - 2 * _MARGIN
    baseline = height - _MARGIN

    def y_of(merge_height: float) -> float:
        return baseline - plot_height * merge_height / max_height

    # Leaf order: simple left-to-right by index (adequate for audit
    # plots; ordering leaves to avoid crossings is cosmetic).
    x_of: dict[int, float] = {
        i: _MARGIN + plot_width * (i + 0.5) / n for i in range(n)
    }
    top_of: dict[int, float] = {i: baseline for i in range(n)}

    next_index = n
    for merge in dendrogram.merges:
        xa, xb = x_of[merge.a], x_of[merge.b]
        ya, yb = top_of[merge.a], top_of[merge.b]
        y = y_of(merge.height)
        canvas.line(xa, ya, xa, y, stroke="#333", stroke_width=1.0)
        canvas.line(xb, yb, xb, y, stroke="#333", stroke_width=1.0)
        canvas.line(xa, y, xb, y, stroke="#333", stroke_width=1.0)
        x_of[next_index] = (xa + xb) / 2.0
        top_of[next_index] = y
        next_index += 1

    # Axis and cut line.
    canvas.line(_MARGIN, _MARGIN, _MARGIN, baseline, stroke="#888")
    canvas.text(8, _MARGIN + 4, f"{max_height:.0f}", size=10)
    canvas.text(8, baseline, "0", size=10)
    if cut_height is not None and cut_height <= max_height:
        y = y_of(cut_height)
        canvas.line(
            _MARGIN, y, width - _MARGIN, y, stroke="#d62728", stroke_width=1.2,
            opacity=0.8,
        )
        canvas.text(
            width - _MARGIN - 4, y - 4, f"cut {cut_height:.0f}",
            size=10, fill="#d62728", anchor="end",
        )
    return canvas
