"""Visualisation: dependency-free SVG maps and charts."""

from .charts import render_profile_chart
from .dendrogram import render_dendrogram
from .map_render import (
    MapProjection,
    render_candidate_map,
    render_community_map,
    render_selected_map,
)
from .palette import COMMUNITY_COLOURS, colour_hex, colour_name
from .svg import SvgCanvas

__all__ = [
    "COMMUNITY_COLOURS",
    "MapProjection",
    "SvgCanvas",
    "colour_hex",
    "colour_name",
    "render_candidate_map",
    "render_community_map",
    "render_dendrogram",
    "render_profile_chart",
    "render_selected_map",
]
