"""Grouped bar charts for the temporal usage profiles (Figures 5 and 7)."""

from __future__ import annotations

from typing import Mapping, Sequence

from .palette import colour_hex
from .svg import SvgCanvas

_MARGIN_LEFT = 50.0
_MARGIN_BOTTOM = 40.0
_MARGIN_TOP = 30.0
_MARGIN_RIGHT = 20.0


def render_profile_chart(
    profiles: Mapping[int, Sequence[float]],
    bin_labels: Sequence[str],
    title: str,
    width: float = 1000.0,
    height: float = 420.0,
) -> SvgCanvas:
    """Grouped bars: one group per time bin, one bar per community.

    ``profiles`` maps community label -> per-bin shares (all the same
    length as ``bin_labels``).
    """
    labels = sorted(profiles)
    n_bins = len(bin_labels)
    if n_bins == 0 or not labels:
        raise ValueError("need at least one bin and one community")
    for label in labels:
        if len(profiles[label]) != n_bins:
            raise ValueError(
                f"community {label} has {len(profiles[label])} bins, expected {n_bins}"
            )

    canvas = SvgCanvas(width, height)
    plot_width = width - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_height = height - _MARGIN_TOP - _MARGIN_BOTTOM
    baseline = height - _MARGIN_BOTTOM
    peak = max(
        (max(profiles[label]) for label in labels), default=0.0
    ) or 1.0

    group_width = plot_width / n_bins
    bar_width = max(1.0, group_width * 0.8 / len(labels))

    # Axes.
    canvas.line(_MARGIN_LEFT, _MARGIN_TOP, _MARGIN_LEFT, baseline, stroke="#333")
    canvas.line(_MARGIN_LEFT, baseline, width - _MARGIN_RIGHT, baseline, stroke="#333")
    canvas.text(_MARGIN_LEFT, 18, title, size=14)

    for bin_index, bin_label in enumerate(bin_labels):
        group_x = _MARGIN_LEFT + bin_index * group_width + group_width * 0.1
        for bar_index, label in enumerate(labels):
            share = profiles[label][bin_index]
            bar_height = plot_height * share / peak
            canvas.rect(
                group_x + bar_index * bar_width,
                baseline - bar_height,
                bar_width,
                bar_height,
                fill=colour_hex(label),
                opacity=0.9,
            )
        # Thin out x labels when there are many bins (hours).
        if n_bins <= 10 or bin_index % 2 == 0:
            canvas.text(
                group_x + group_width * 0.4,
                baseline + 16,
                bin_label,
                size=10,
                anchor="middle",
            )

    # Legend.
    legend_x = width - _MARGIN_RIGHT - 130.0
    legend_y = _MARGIN_TOP
    for offset, label in enumerate(labels):
        y = legend_y + offset * 16.0
        canvas.rect(legend_x, y, 12.0, 12.0, fill=colour_hex(label))
        canvas.text(legend_x + 18.0, y + 10.0, f"Community {label}", size=10)
    return canvas
