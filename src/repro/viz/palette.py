"""The paper's community colour palette.

Tables IV-VI name their communities Blue, Orange, Green, Red, Purple,
Brown, Pink, Gray, Olive and Cyan — matplotlib's default ``tab10``
cycle, which the figures clearly use.  We reproduce the same mapping
from community label (1-based) to colour.
"""

from __future__ import annotations

#: (name, hex) in the paper's community order.
COMMUNITY_COLOURS: tuple[tuple[str, str], ...] = (
    ("Blue", "#1f77b4"),
    ("Orange", "#ff7f0e"),
    ("Green", "#2ca02c"),
    ("Red", "#d62728"),
    ("Purple", "#9467bd"),
    ("Brown", "#8c564b"),
    ("Pink", "#e377c2"),
    ("Gray", "#7f7f7f"),
    ("Olive", "#bcbd22"),
    ("Cyan", "#17becf"),
)


def colour_name(label: int) -> str:
    """Colour name for a 1-based community label (cycles past 10)."""
    name, _ = COMMUNITY_COLOURS[(label - 1) % len(COMMUNITY_COLOURS)]
    return name


def colour_hex(label: int) -> str:
    """Hex colour for a 1-based community label (cycles past 10)."""
    _, value = COMMUNITY_COLOURS[(label - 1) % len(COMMUNITY_COLOURS)]
    return value
