"""Station-map rendering (Figures 1, 2, 3, 4 and 6).

Maps are drawn on a local planar projection of the station extent.
Three figure styles are supported:

* :func:`render_candidate_map` — Figure 1: all candidate-graph nodes
  (purple) and edges (yellow);
* :func:`render_selected_map` — Figure 2: node radius scaled by
  self-loop trips, edge width by directed weight, only the top
  percentile of edges drawn;
* :func:`render_community_map` — Figures 3/4/6: stations coloured by
  community, new stations ringed.
"""

from __future__ import annotations

import math
from typing import Mapping

from ..community import Partition
from ..core.graphs import SelectedNetwork
from ..geo import BoundingBox, GeoPoint, local_projector
from ..graphdb import DirectedGraph
from .palette import colour_hex
from .svg import SvgCanvas

_MARGIN = 30.0


class MapProjection:
    """Maps geographic points onto canvas pixels."""

    def __init__(
        self, points: list[GeoPoint], width: float = 900.0
    ) -> None:
        if not points:
            raise ValueError("cannot project an empty point set")
        box = BoundingBox.around(points).expand(0.004)
        project = local_projector(box.center)
        xs, ys = zip(*(project(point) for point in points))
        span_x = max(max(xs) - min(xs), 1.0)
        span_y = max(max(ys) - min(ys), 1.0)
        self._min_x, self._min_y = min(xs), min(ys)
        self._project = project
        usable = width - 2 * _MARGIN
        self._scale = usable / max(span_x, span_y)
        self.width = width
        self.height = span_y * self._scale + 2 * _MARGIN

    def to_canvas(self, point: GeoPoint) -> tuple[float, float]:
        """Pixel coordinates of a geographic point (y grows downward)."""
        x, y = self._project(point)
        cx = _MARGIN + (x - self._min_x) * self._scale
        cy = self.height - (_MARGIN + (y - self._min_y) * self._scale)
        return cx, cy


def render_candidate_map(
    node_points: Mapping[object, GeoPoint],
    flow: DirectedGraph,
    width: float = 900.0,
) -> SvgCanvas:
    """Figure 1: the candidate graph (purple nodes, yellow edges)."""
    projection = MapProjection(list(node_points.values()), width)
    canvas = SvgCanvas(projection.width, projection.height)
    for u, v, _ in flow.edges():
        if u == v or u not in node_points or v not in node_points:
            continue
        x1, y1 = projection.to_canvas(node_points[u])
        x2, y2 = projection.to_canvas(node_points[v])
        canvas.line(x1, y1, x2, y2, stroke="#f2c200", stroke_width=0.4, opacity=0.35)
    for point in node_points.values():
        x, y = projection.to_canvas(point)
        canvas.circle(x, y, 1.8, fill="#6a0dad", opacity=0.8)
    canvas.text(_MARGIN, 18, "Candidate graph (HAC condensation)", size=14)
    return canvas


def render_selected_map(
    network: SelectedNetwork,
    width: float = 900.0,
    edge_percentile: float = 0.99,
) -> SvgCanvas:
    """Figure 2: the selected graph with scaled nodes and top edges."""
    points = {
        station_id: station.point
        for station_id, station in network.stations.items()
    }
    projection = MapProjection(list(points.values()), width)
    canvas = SvgCanvas(projection.width, projection.height)

    flow = network.directed_flow()
    loops = {station_id: flow.weight(station_id, station_id) for station_id in points}
    cross = sorted(
        (weight for u, v, weight in flow.edges() if u != v), reverse=False
    )
    threshold = 0.0
    if cross:
        index = min(len(cross) - 1, int(edge_percentile * len(cross)))
        threshold = cross[index]
    max_weight = cross[-1] if cross else 1.0

    for u, v, weight in flow.edges():
        if u == v or weight < threshold:
            continue
        x1, y1 = projection.to_canvas(points[u])
        x2, y2 = projection.to_canvas(points[v])
        stroke_width = 0.5 + 4.0 * weight / max(max_weight, 1.0)
        canvas.line(x1, y1, x2, y2, stroke="#444444", stroke_width=stroke_width, opacity=0.6)

    max_loop = max(loops.values(), default=1.0) or 1.0
    for station_id, station in network.stations.items():
        x, y = projection.to_canvas(station.point)
        radius = 1.5 + 6.0 * math.sqrt(loops[station_id] / max_loop)
        fill = "#d62728" if station.is_new else "#1f77b4"
        canvas.circle(x, y, radius, fill=fill, opacity=0.85)
    canvas.text(
        _MARGIN, 18,
        "Selected graph: blue = pre-existing, red = new; node size = self-trips",
        size=13,
    )
    return canvas


def render_community_map(
    network: SelectedNetwork,
    partition: Partition,
    title: str,
    width: float = 900.0,
) -> SvgCanvas:
    """Figures 3/4/6: stations coloured by community assignment."""
    points = {
        station_id: station.point
        for station_id, station in network.stations.items()
        if station_id in partition
    }
    projection = MapProjection(list(points.values()), width)
    canvas = SvgCanvas(projection.width, projection.height)
    for station_id, point in points.items():
        x, y = projection.to_canvas(point)
        label = partition[station_id]
        is_new = network.stations[station_id].is_new
        canvas.circle(
            x, y, 4.0,
            fill=colour_hex(label),
            stroke="#000000" if is_new else "none",
            stroke_width=0.8,
            opacity=0.9,
        )
    canvas.text(_MARGIN, 18, title, size=14)
    return canvas
