"""Station and endpoint-spot layout generation.

Dockless GPS endpoints are not uniform: they pile up around the real
spots people actually want — station entrances, shop corners, park
gates.  The generator therefore first lays out *spots* and later scatters
per-trip GPS fixes around them.  Two kinds exist:

* **station spots** — Moby's fixed charging stations (92 clean ones in
  the paper), placed with a minimum spacing and a strong central bias;
* **ad-hoc spots** — ~1,000 popular dockless locations per the zone
  demand weights; the paper's HAC stage later condenses the GPS noise
  around them into candidate stations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..geo import GeoPoint, GridIndex, is_admissible
from .city import REGION_CENTRAL, Zone
from .rng import Rng


@dataclass
class Spot:
    """One endpoint spot.

    ``popularity`` is the spot's share of its zone's endpoint events
    (unnormalised); ``is_station`` marks fixed charging stations.
    """

    spot_id: int
    zone: Zone
    point: GeoPoint
    popularity: float
    is_station: bool = False
    name: str = ""
    #: ids of Location rows created at this spot (filled during generation).
    location_ids: list[int] = field(default_factory=list)


def _admissible_point(
    rng: Rng, zone: Zone, max_tries: int = 200, spread: float = 1.0
) -> GeoPoint:
    """Sample a point in the zone that is inside Dublin and on land."""
    for _ in range(max_tries):
        point = rng.point_in_disc(zone.center, zone.radius_m * spread)
        if is_admissible(point):
            return point
    # Fall back to the zone centre, which every built-in zone keeps on land.
    return zone.center


def generate_stations(
    zones: tuple[Zone, ...],
    rng: Rng,
    n_stations: int,
    min_spacing_m: float = 220.0,
) -> list[Spot]:
    """Place ``n_stations`` fixed stations.

    Placement samples zones with the square root of demand weight,
    boosted for the central region — the paper's existing network is
    densest around the centre — and rejects points closer than
    ``min_spacing_m`` to an already placed station.
    """
    zone_weights = {
        zone: (zone.weight ** 0.5) * (2.2 if zone.region == REGION_CENTRAL else 1.0)
        for zone in zones
    }
    index: GridIndex[int] = GridIndex(cell_m=max(100.0, min_spacing_m))
    stations: list[Spot] = []
    attempts = 0
    while len(stations) < n_stations and attempts < n_stations * 400:
        attempts += 1
        zone = rng.weighted_key(zone_weights)
        point = _admissible_point(rng, zone)
        if index.within(point, min_spacing_m):
            continue
        spot_id = len(stations)
        index.insert(spot_id, point)
        # Most stations are busy; a tail of peripheral ones sees little
        # traffic.  That tail is what sets the paper's Rule-3 threshold
        # (the *minimum* degree over fixed stations) to a modest value.
        if rng.random() < 0.15:
            popularity = rng.uniform(0.01, 0.06)
        else:
            popularity = rng.uniform(0.5, 3.0)
        stations.append(
            Spot(
                spot_id=spot_id,
                zone=zone,
                point=point,
                popularity=popularity,
                is_station=True,
                name=f"Station {spot_id:03d} ({zone.name})",
            )
        )
    if len(stations) < n_stations:
        raise RuntimeError(
            f"could only place {len(stations)}/{n_stations} stations; "
            "loosen min_spacing_m or enlarge the zones"
        )
    return stations


def generate_adhoc_spots(
    zones: tuple[Zone, ...],
    rng: Rng,
    n_spots: int,
    stations: list[Spot],
    min_spacing_m: float = 65.0,
    first_id: int | None = None,
) -> list[Spot]:
    """Place ``n_spots`` ad-hoc spots per the zone demand weights.

    A light ``min_spacing_m`` between ad-hoc spots keeps the later HAC
    stage from fusing everything into giant clusters, matching the
    paper's observation of ~1,100 distinct condensed locations.  Spots
    *may* fall near stations (within the 50 m pre-assignment radius) —
    that is realistic and exercises the pre-assignment rule.
    """
    next_id = first_id if first_id is not None else len(stations)
    # Number of spots per zone, largest-remainder apportionment.
    raw = [(zone, zone.weight * n_spots) for zone in zones]
    counts = {zone: int(share) for zone, share in raw}
    leftover = n_spots - sum(counts.values())
    for zone, share in sorted(raw, key=lambda item: item[1] - int(item[1]), reverse=True):
        if leftover <= 0:
            break
        counts[zone] += 1
        leftover -= 1

    index: GridIndex[int] = GridIndex(cell_m=max(50.0, min_spacing_m))
    spots: list[Spot] = []
    for zone in zones:
        placed = 0
        target = counts[zone]
        spacing = min_spacing_m
        # Dense zones may not fit the target at the nominal spacing;
        # relax it geometrically rather than fail — realistic city
        # centres *are* denser.
        while placed < target and spacing > 1.0:
            attempts = 0
            while placed < target and attempts < target * 200:
                attempts += 1
                point = _admissible_point(rng, zone, spread=1.35)
                if index.within(point, spacing):
                    continue
                spot = Spot(
                    spot_id=next_id,
                    zone=zone,
                    point=point,
                    # Zipf-flavoured popularity: hot corners, long tail.
                    popularity=rng.uniform(0.15, 1.0) ** 2.0 * 3.0 + 0.05,
                    is_station=False,
                )
                index.insert(spot.spot_id, point)
                spots.append(spot)
                next_id += 1
                placed += 1
            spacing *= 0.7
        if placed < target:
            raise RuntimeError(
                f"zone {zone.name}: placed {placed}/{target} spots"
            )
    return spots
