"""Deterministic random-number helpers for the synthetic generator.

Everything in :mod:`repro.synth` draws from a single seeded
:class:`random.Random` stream so that a dataset is fully reproducible
from its seed.  This module adds the sampling primitives the generator
needs beyond the stdlib: Poisson counts, categorical draws over weight
mappings and metre-scale Gaussian jitter of geographic points.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Mapping, Sequence, TypeVar

from ..geo import GeoPoint, meters_per_degree

T = TypeVar("T")


class Rng:
    """A seeded random stream with domain-specific sampling helpers."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def fork(self, label: str) -> "Rng":
        """Derive an independent, reproducible child stream.

        Children are keyed by a string label so adding a new consumer
        never perturbs the draws of existing ones.  The derivation uses
        a stable hash — Python's builtin ``hash`` is salted per process
        and would break cross-run reproducibility.
        """
        digest = hashlib.sha256(f"{self.seed}:{label}".encode()).digest()
        return Rng(int.from_bytes(digest[:4], "big"))

    # ------------------------------------------------------------------
    # Thin pass-throughs
    # ------------------------------------------------------------------

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high]."""
        return self._random.randint(low, high)

    def gauss(self, mu: float, sigma: float) -> float:
        """Normal draw."""
        return self._random.gauss(mu, sigma)

    def choice(self, items: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._random.choice(items)

    def shuffle(self, items: list[T]) -> None:
        """In-place Fisher-Yates shuffle."""
        self._random.shuffle(items)

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        """Sample ``k`` distinct items."""
        return self._random.sample(items, k)

    # ------------------------------------------------------------------
    # Distributions
    # ------------------------------------------------------------------

    def poisson(self, lam: float) -> int:
        """Poisson draw.

        Knuth's product method below ``lam`` = 30; a rounded normal
        approximation above it (exact enough for workload sizing).
        """
        if lam < 0:
            raise ValueError("lam must be non-negative")
        if lam == 0:
            return 0
        if lam < 30.0:
            threshold = math.exp(-lam)
            count = 0
            product = self._random.random()
            while product > threshold:
                count += 1
                product *= self._random.random()
            return count
        draw = self._random.gauss(lam, math.sqrt(lam))
        return max(0, round(draw))

    def weighted_key(self, weights: Mapping[T, float]) -> T:
        """Categorical draw over a key->weight mapping."""
        items = list(weights.items())
        total = sum(weight for _, weight in items)
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        target = self._random.random() * total
        running = 0.0
        for key, weight in items:
            running += weight
            if running >= target:
                return key
        return items[-1][0]

    def weighted_index(self, weights: Sequence[float]) -> int:
        """Categorical draw over a weight sequence; returns the index."""
        total = sum(weights)
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        target = self._random.random() * total
        running = 0.0
        for index, weight in enumerate(weights):
            running += weight
            if running >= target:
                return index
        return len(weights) - 1

    # ------------------------------------------------------------------
    # Geography
    # ------------------------------------------------------------------

    def jitter_point(self, center: GeoPoint, sigma_m: float) -> GeoPoint:
        """Gaussian jitter of a point by ``sigma_m`` metres per axis."""
        per_lat, per_lon = meters_per_degree(center.lat)
        dlat = self._random.gauss(0.0, sigma_m) / per_lat
        dlon = self._random.gauss(0.0, sigma_m) / per_lon
        return GeoPoint(center.lat + dlat, center.lon + dlon)

    def point_in_disc(self, center: GeoPoint, radius_m: float) -> GeoPoint:
        """Uniform point inside a disc of ``radius_m`` metres."""
        per_lat, per_lon = meters_per_degree(center.lat)
        radius = radius_m * math.sqrt(self._random.random())
        angle = self._random.random() * 2.0 * math.pi
        dlat = radius * math.sin(angle) / per_lat
        dlon = radius * math.cos(angle) / per_lon
        return GeoPoint(center.lat + dlat, center.lon + dlon)
