"""A zone-based model of Dublin for the synthetic trip generator.

The generator needs a city that reproduces the *spatial story* the paper
tells: roughly half of all trips touch the city centre / northside, a
southside band of residential and employment zones, an outer suburban
ring, and two leisure poles (Phoenix Park and the Blackrock /
Dún Laoghaire seafront) whose demand peaks at weekends.

Each :class:`Zone` carries a latent ``region`` label — ``"central"``,
``"south"`` or ``"suburban"`` — mirroring the three communities the
paper finds in G_Basic (green: centre/northside, blue: southside,
orange: suburbs).  The origin-destination model keeps ~74 % of trips
inside their origin's region, which is the self-containment level the
paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geo import GeoPoint, LANDMARKS

#: Zone activity profiles; they drive the temporal demand factors.
PROFILE_MIXED = "mixed"
PROFILE_RESIDENTIAL = "residential"
PROFILE_EMPLOYMENT = "employment"
PROFILE_LEISURE_PARK = "leisure_park"
PROFILE_LEISURE_SEA = "leisure_sea"

ALL_PROFILES = (
    PROFILE_MIXED,
    PROFILE_RESIDENTIAL,
    PROFILE_EMPLOYMENT,
    PROFILE_LEISURE_PARK,
    PROFILE_LEISURE_SEA,
)

#: Latent regions mirroring the paper's G_Basic communities.
REGION_CENTRAL = "central"
REGION_SOUTH = "south"
REGION_SUBURBAN = "suburban"

ALL_REGIONS = (REGION_CENTRAL, REGION_SOUTH, REGION_SUBURBAN)


@dataclass(frozen=True)
class Zone:
    """One demand zone.

    Attributes
    ----------
    name:
        Identifier used in diagnostics.
    center:
        Zone centroid.
    radius_m:
        Spatial spread of the zone's endpoint spots.
    weight:
        Share of all endpoint events attributable to the zone.
    profile:
        Temporal activity profile (one of ``ALL_PROFILES``).
    region:
        Latent region (one of ``ALL_REGIONS``).
    """

    name: str
    center: GeoPoint
    radius_m: float
    weight: float
    profile: str
    region: str


def build_dublin_zones() -> tuple[Zone, ...]:
    """The calibrated Dublin zone set.

    Weights sum to 1.  The central region carries ~0.44 of demand
    (the paper: "around 50 % of all trips start in the green
    community"), the south ~0.30 and the suburbs ~0.26.
    """
    lm = LANDMARKS
    return (
        # --- central / northside (paper's green community) -----------
        Zone("city_center_north", lm["city_center"], 850.0, 0.16,
             PROFILE_MIXED, REGION_CENTRAL),
        Zone("city_center_south", GeoPoint(53.3442, -6.2598), 500.0, 0.07,
             PROFILE_MIXED, REGION_CENTRAL),
        Zone("connolly_ifsc", lm["connolly"], 600.0, 0.07,
             PROFILE_EMPLOYMENT, REGION_CENTRAL),
        Zone("smithfield", lm["smithfield"], 550.0, 0.05,
             PROFILE_MIXED, REGION_CENTRAL),
        Zone("drumcondra", lm["drumcondra"], 700.0, 0.05,
             PROFILE_RESIDENTIAL, REGION_CENTRAL),
        Zone("dcu_glasnevin", lm["dcu_glasnevin"], 700.0, 0.04,
             PROFILE_RESIDENTIAL, REGION_CENTRAL),
        # --- southside (paper's blue community) -----------------------
        Zone("grand_canal_dock", lm["grand_canal_dock"], 600.0, 0.07,
             PROFILE_EMPLOYMENT, REGION_SOUTH),
        Zone("rathmines", lm["rathmines"], 700.0, 0.07,
             PROFILE_RESIDENTIAL, REGION_SOUTH),
        Zone("ballsbridge", lm["ballsbridge"], 650.0, 0.06,
             PROFILE_EMPLOYMENT, REGION_SOUTH),
        Zone("portobello", GeoPoint(53.3305, -6.2650), 450.0, 0.05,
             PROFILE_MIXED, REGION_SOUTH),
        Zone("ucd_belfield", lm["ucd_belfield"], 650.0, 0.05,
             PROFILE_RESIDENTIAL, REGION_SOUTH),
        # --- suburbs and leisure poles (paper's orange community) -----
        Zone("phoenix_park", lm["phoenix_park"], 800.0, 0.06,
             PROFILE_LEISURE_PARK, REGION_SUBURBAN),
        Zone("dun_laoghaire", lm["dun_laoghaire"], 650.0, 0.05,
             PROFILE_LEISURE_SEA, REGION_SUBURBAN),
        Zone("blackrock", lm["blackrock"], 550.0, 0.04,
             PROFILE_LEISURE_SEA, REGION_SUBURBAN),
        Zone("clontarf", lm["clontarf"], 650.0, 0.04,
             PROFILE_RESIDENTIAL, REGION_SUBURBAN),
        Zone("inchicore", GeoPoint(53.3417, -6.3080), 600.0, 0.04,
             PROFILE_RESIDENTIAL, REGION_SUBURBAN),
        Zone("cabra", GeoPoint(53.3650, -6.2900), 600.0, 0.03,
             PROFILE_RESIDENTIAL, REGION_SUBURBAN),
    )


def region_weights(zones: tuple[Zone, ...]) -> dict[str, float]:
    """Total demand weight per region."""
    weights: dict[str, float] = {}
    for zone in zones:
        weights[zone.region] = weights.get(zone.region, 0.0) + zone.weight
    return weights


def check_zones(zones: tuple[Zone, ...]) -> None:
    """Validate a zone set: weights ≈ 1, known profiles and regions."""
    total = sum(zone.weight for zone in zones)
    if not 0.99 <= total <= 1.01:
        raise ValueError(f"zone weights sum to {total}, expected 1")
    for zone in zones:
        if zone.profile not in ALL_PROFILES:
            raise ValueError(f"{zone.name}: unknown profile {zone.profile!r}")
        if zone.region not in ALL_REGIONS:
            raise ValueError(f"{zone.name}: unknown region {zone.region!r}")
        if zone.radius_m <= 0:
            raise ValueError(f"{zone.name}: radius must be positive")
