"""Dirty-record injection.

The paper's original tables contain a small amount of mess — locations
outside Dublin, points in Dublin Bay, missing coordinates, rentals with
missing or dangling location ids, and never-referenced locations — which
the cleaning stage removes (Table I: 62,324 → 61,872 rentals,
14,239 → 14,156 locations, 95 → 92 stations).  This module injects a
calibrated amount of exactly those defects into a clean synthetic
dataset so the cleaning pipeline has real work to do.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta

from ..data.records import LocationRecord, RentalRecord
from ..geo import GeoPoint
from .rng import Rng

#: A point comfortably north of the Dublin bounding box.
_OUTSIDE_DUBLIN = GeoPoint(53.52, -6.30)
#: A point in the middle of Dublin Bay (inside the bbox, off land).
_IN_THE_BAY = GeoPoint(53.344, -6.10)
#: A valid on-land point for never-referenced locations.
_ON_LAND = GeoPoint(53.3402, -6.2500)


@dataclass(frozen=True)
class NoiseConfig:
    """How much of each defect to inject (defaults hit Table I's deltas)."""

    n_station_outside: int = 1
    n_station_in_bay: int = 1
    n_station_unreferenced: int = 1
    n_locations_outside: int = 25
    n_locations_in_bay: int = 20
    n_locations_missing_coords: int = 20
    n_locations_unreferenced: int = 15
    rentals_per_bad_location: int = 2
    rentals_per_bad_station: int = 15
    n_rentals_missing_id: int = 150
    n_rentals_dangling_id: int = 142

    @property
    def n_dirty_stations(self) -> int:
        """Total stations that cleaning should remove."""
        return (
            self.n_station_outside
            + self.n_station_in_bay
            + self.n_station_unreferenced
        )

    @property
    def n_dirty_locations(self) -> int:
        """Total non-station locations that cleaning should remove."""
        return (
            self.n_locations_outside
            + self.n_locations_in_bay
            + self.n_locations_missing_coords
            + self.n_locations_unreferenced
        )


class DirtyDataInjector:
    """Creates the dirty location and rental records."""

    def __init__(
        self,
        rng: Rng,
        config: NoiseConfig,
        next_location_id: int,
        next_rental_id: int,
        anchor_location_id: int,
        n_bikes: int,
    ) -> None:
        self._rng = rng
        self._config = config
        self._next_location_id = next_location_id
        self._next_rental_id = next_rental_id
        # A known-good location used as the *other* endpoint of rentals
        # that reference a dirty location (so only the dirty side is at
        # fault, as in real data).
        self._anchor_location_id = anchor_location_id
        self._n_bikes = n_bikes

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _mint_location_id(self) -> int:
        location_id = self._next_location_id
        self._next_location_id += 1
        return location_id

    def _mint_rental_id(self) -> int:
        rental_id = self._next_rental_id
        self._next_rental_id += 1
        return rental_id

    def _random_timestamp(self) -> datetime:
        base = datetime(2020, 1, 3)
        offset_days = self._rng.randint(0, 600)
        offset_minutes = self._rng.randint(8 * 60, 20 * 60)
        return base + timedelta(days=offset_days, minutes=offset_minutes)

    def _rental_touching(self, location_id: int) -> RentalRecord:
        """A rental with one endpoint at ``location_id``."""
        started_at = self._random_timestamp()
        at_origin = self._rng.random() < 0.5
        return RentalRecord(
            rental_id=self._mint_rental_id(),
            bike_id=self._rng.randint(1, self._n_bikes),
            started_at=started_at,
            ended_at=started_at + timedelta(minutes=self._rng.uniform(4, 40)),
            rental_location_id=location_id if at_origin else self._anchor_location_id,
            return_location_id=self._anchor_location_id if at_origin else location_id,
        )

    def _jittered(self, center: GeoPoint) -> GeoPoint:
        return self._rng.jitter_point(center, 400.0)

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------

    def inject(self) -> tuple[list[LocationRecord], list[RentalRecord]]:
        """Build every dirty record; returns (locations, rentals)."""
        cfg = self._config
        locations: list[LocationRecord] = []
        rentals: list[RentalRecord] = []

        def add_bad_location(
            point: GeoPoint | None,
            is_station: bool,
            n_rentals: int,
            name: str,
        ) -> None:
            location_id = self._mint_location_id()
            locations.append(
                LocationRecord(
                    location_id=location_id,
                    lat=point.lat if point is not None else None,
                    lon=point.lon if point is not None else None,
                    is_station=is_station,
                    name=name,
                )
            )
            for _ in range(n_rentals):
                rentals.append(self._rental_touching(location_id))

        # Dirty stations.
        for _ in range(cfg.n_station_outside):
            add_bad_location(
                self._jittered(_OUTSIDE_DUBLIN), True,
                cfg.rentals_per_bad_station, "Station (decommissioned, Meath)",
            )
        for _ in range(cfg.n_station_in_bay):
            add_bad_location(
                _IN_THE_BAY, True,
                cfg.rentals_per_bad_station, "Station (bad GPS, Dublin Bay)",
            )
        for _ in range(cfg.n_station_unreferenced):
            add_bad_location(
                self._rng.jitter_point(_ON_LAND, 300.0), True, 0,
                "Station (never used)",
            )

        # Dirty non-station locations.
        for _ in range(cfg.n_locations_outside):
            add_bad_location(
                self._jittered(_OUTSIDE_DUBLIN), False,
                cfg.rentals_per_bad_location, "",
            )
        for _ in range(cfg.n_locations_in_bay):
            add_bad_location(
                self._rng.jitter_point(_IN_THE_BAY, 120.0), False,
                cfg.rentals_per_bad_location, "",
            )
        for _ in range(cfg.n_locations_missing_coords):
            add_bad_location(None, False, cfg.rentals_per_bad_location, "")
        for _ in range(cfg.n_locations_unreferenced):
            add_bad_location(
                self._rng.jitter_point(_ON_LAND, 500.0), False, 0, "",
            )

        # Rentals with missing ids: drop one or both endpoints.
        for _ in range(cfg.n_rentals_missing_id):
            started_at = self._random_timestamp()
            drop = self._rng.randint(0, 2)
            rentals.append(
                RentalRecord(
                    rental_id=self._mint_rental_id(),
                    bike_id=self._rng.randint(1, self._n_bikes),
                    started_at=started_at,
                    ended_at=started_at + timedelta(minutes=self._rng.uniform(4, 40)),
                    rental_location_id=None if drop in (0, 2) else self._anchor_location_id,
                    return_location_id=None if drop in (1, 2) else self._anchor_location_id,
                )
            )

        # Rentals with dangling ids: reference ids far beyond any real row.
        for _ in range(cfg.n_rentals_dangling_id):
            started_at = self._random_timestamp()
            ghost = 10_000_000 + self._rng.randint(0, 999_999)
            at_origin = self._rng.random() < 0.5
            rentals.append(
                RentalRecord(
                    rental_id=self._mint_rental_id(),
                    bike_id=self._rng.randint(1, self._n_bikes),
                    started_at=started_at,
                    ended_at=started_at + timedelta(minutes=self._rng.uniform(4, 40)),
                    rental_location_id=ghost if at_origin else self._anchor_location_id,
                    return_location_id=self._anchor_location_id if at_origin else ghost,
                )
            )

        return locations, rentals
