"""Temporal demand model: when trips happen and who generates them.

Three layers, multiplied together:

* a **seasonal/COVID** day-level curve over Jan 2020 - Sep 2021 (the
  paper's data window lies almost entirely inside the pandemic);
* a **day-of-week** factor (weekday commuting dominates overall volume);
* an **hour-of-day** curve that depends on the day type (bimodal
  commuter peaks on weekdays, a midday leisure hump at weekends).

Zone-level *origin* and *destination* factors then skew which zones the
trips touch at a given (day-of-week, hour): residential zones emit in
the morning and absorb in the evening, employment zones do the reverse,
leisure zones light up at weekends and midday.  These factors are what
make the paper's G_Day / G_Hour communities separable.
"""

from __future__ import annotations

from datetime import date, timedelta

from .city import (
    PROFILE_EMPLOYMENT,
    PROFILE_LEISURE_PARK,
    PROFILE_LEISURE_SEA,
    PROFILE_MIXED,
    PROFILE_RESIDENTIAL,
)

#: Data window used by the paper (Section III).
DATA_START = date(2020, 1, 3)
DATA_END = date(2021, 9, 19)

#: Weekday (Mon..Sun) volume factors — weekday-heavy, as in the paper's
#: finding that BSSs are predominantly used for commuting.
DOW_FACTORS = (1.08, 1.10, 1.12, 1.10, 1.06, 0.82, 0.72)

#: Hour-of-day probability masses (unnormalised).
_WEEKDAY_HOURS = (
    0.3, 0.2, 0.1, 0.1, 0.2, 0.6,   # 00-05
    1.6, 4.2, 6.4, 4.4, 2.6, 2.8,   # 06-11
    3.6, 3.2, 2.8, 3.0, 4.4, 6.6,   # 12-17
    5.0, 3.2, 2.2, 1.6, 1.0, 0.6,   # 18-23
)
_WEEKEND_HOURS = (
    0.5, 0.4, 0.3, 0.2, 0.2, 0.3,   # 00-05
    0.6, 1.0, 1.8, 2.8, 4.0, 5.2,   # 06-11
    5.8, 5.6, 5.0, 4.4, 3.8, 3.2,   # 12-17
    2.8, 2.2, 1.6, 1.2, 0.8, 0.6,   # 18-23
)

#: Month-level factors capturing launch ramp-up, the first lockdown,
#: the 2020 summer surge, the winter 20/21 lockdown and summer 2021.
_MONTH_FACTORS: dict[tuple[int, int], float] = {
    (2020, 1): 0.55, (2020, 2): 0.62, (2020, 3): 0.50, (2020, 4): 0.42,
    (2020, 5): 0.70, (2020, 6): 1.05, (2020, 7): 1.25, (2020, 8): 1.30,
    (2020, 9): 1.15, (2020, 10): 0.95, (2020, 11): 0.78, (2020, 12): 0.72,
    (2021, 1): 0.58, (2021, 2): 0.62, (2021, 3): 0.80, (2021, 4): 1.00,
    (2021, 5): 1.20, (2021, 6): 1.40, (2021, 7): 1.50, (2021, 8): 1.48,
    (2021, 9): 1.35,
}

_COMMUTE_AM = set(range(6, 10))
_COMMUTE_PM = set(range(16, 20))
_MIDDAY = set(range(11, 16))


def all_days(start: date = DATA_START, end: date = DATA_END) -> list[date]:
    """Every calendar day in the (inclusive) data window."""
    days: list[date] = []
    day = start
    while day <= end:
        days.append(day)
        day += timedelta(days=1)
    return days


def day_weight(day: date) -> float:
    """Relative expected volume of one calendar day."""
    month_factor = _MONTH_FACTORS.get((day.year, day.month), 1.0)
    return month_factor * DOW_FACTORS[day.weekday()]


def hour_weights(weekday: int) -> tuple[float, ...]:
    """Hour-of-day weights for a given weekday (Mon=0..Sun=6)."""
    return _WEEKDAY_HOURS if weekday < 5 else _WEEKEND_HOURS


def is_weekend(weekday: int) -> bool:
    """Saturday or Sunday."""
    return weekday >= 5


def origin_factor(profile: str, weekday: int, hour: int) -> float:
    """How strongly a zone of ``profile`` *emits* trips at this time."""
    weekend = is_weekend(weekday)
    if profile == PROFILE_RESIDENTIAL:
        if not weekend and hour in _COMMUTE_AM:
            return 2.6
        if not weekend and hour in _COMMUTE_PM:
            return 0.7
        return 0.9 if not weekend else 0.7
    if profile == PROFILE_EMPLOYMENT:
        if not weekend and hour in _COMMUTE_PM:
            return 2.6
        if not weekend and hour in _COMMUTE_AM:
            return 0.7
        return 1.0 if not weekend else 0.5
    if profile in (PROFILE_LEISURE_PARK, PROFILE_LEISURE_SEA):
        base = 2.2 if weekend else 0.55
        if hour in _MIDDAY:
            base *= 1.8
        return base
    if profile == PROFILE_MIXED:
        return 1.0
    raise ValueError(f"unknown profile: {profile!r}")


def destination_factor(profile: str, weekday: int, hour: int) -> float:
    """How strongly a zone of ``profile`` *absorbs* trips at this time."""
    weekend = is_weekend(weekday)
    if profile == PROFILE_RESIDENTIAL:
        if not weekend and hour in _COMMUTE_PM:
            return 2.6
        if not weekend and hour in _COMMUTE_AM:
            return 0.7
        return 0.9
    if profile == PROFILE_EMPLOYMENT:
        if not weekend and hour in _COMMUTE_AM:
            return 2.6
        if not weekend and hour in _COMMUTE_PM:
            return 0.7
        return 1.0 if not weekend else 0.5
    if profile in (PROFILE_LEISURE_PARK, PROFILE_LEISURE_SEA):
        base = 2.2 if weekend else 0.55
        if hour in _MIDDAY:
            base *= 1.8
        return base
    if profile == PROFILE_MIXED:
        return 1.0
    raise ValueError(f"unknown profile: {profile!r}")
