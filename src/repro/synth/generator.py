"""Top-level synthetic Moby dataset generator.

:class:`SyntheticMobyGenerator` assembles the whole substrate — city
zones, station and spot layout, demand model, trip sampler and dirty
data injector — into a single reproducible pipeline:

>>> from repro.synth import SyntheticMobyGenerator
>>> raw = SyntheticMobyGenerator(seed=7).generate()
>>> raw.n_stations, raw.n_rentals
(95, 62324)

The default configuration is calibrated to the paper's Table I: the raw
dataset carries 95 stations / 62,324 rentals / 14,239 locations, and
after :func:`repro.data.clean_dataset` the counts land on (or within a
hair of) 92 / 61,872 / 14,156.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..data.dataset import MobyDataset
from ..data.records import LocationRecord
from .city import Zone, build_dublin_zones, check_zones
from .noise import DirtyDataInjector, NoiseConfig
from .rng import Rng
from .spots import Spot, generate_adhoc_spots, generate_stations
from .trips import LocationPool, TripSampler, TripSamplerConfig


@dataclass
class GeneratorConfig:
    """All counts and knobs of the synthetic dataset.

    The defaults target the paper's *cleaned* Table-I numbers; the
    dirty records configured in ``noise`` sit on top of them so the raw
    dataset matches the *original* column.
    """

    seed: int = 7
    n_stations: int = 92
    n_adhoc_spots: int = 1150
    n_clean_rentals: int = 61_872
    n_clean_locations: int = 14_156
    n_bikes: int = 95
    trips: TripSamplerConfig = field(default_factory=TripSamplerConfig)
    noise: NoiseConfig = field(default_factory=NoiseConfig)


@dataclass(frozen=True)
class GeneratedWorld:
    """The generator's full output: data plus the latent ground truth.

    ``stations`` and ``spots`` expose the latent layout so experiments
    (and tests) can compare what the pipeline recovers against what the
    generator actually planted.
    """

    raw: MobyDataset
    stations: list[Spot]
    spots: list[Spot]
    zones: tuple[Zone, ...]


class SyntheticMobyGenerator:
    """Builds a raw (dirty) Moby dataset from a seed."""

    def __init__(self, seed: int = 7, config: GeneratorConfig | None = None) -> None:
        if config is None:
            config = GeneratorConfig(seed=seed)
        elif config.seed != seed:
            config = GeneratorConfig(**{**config.__dict__, "seed": seed})
        self.config = config
        self._root = Rng(config.seed)

    def generate_world(self) -> GeneratedWorld:
        """Generate the dataset and return it with the latent layout."""
        cfg = self.config
        zones = build_dublin_zones()
        check_zones(zones)

        stations = generate_stations(
            zones, self._root.fork("stations"), cfg.n_stations
        )
        adhoc = generate_adhoc_spots(
            zones,
            self._root.fork("spots"),
            cfg.n_adhoc_spots,
            stations,
            first_id=cfg.n_stations,
        )

        # Station location rows take ids 0..n_stations-1 == spot ids.
        station_records = [
            LocationRecord(
                location_id=spot.spot_id,
                lat=spot.point.lat,
                lon=spot.point.lon,
                is_station=True,
                name=spot.name,
            )
            for spot in stations
        ]
        for spot in stations:
            spot.location_ids.append(spot.spot_id)

        # Ad-hoc locations are minted during trip sampling, budgeted so
        # the cleaned Location table size matches the target.  The
        # sampler reports the exact number of pool-visible endpoint
        # events before resolving them, so the budget is tight.
        location_rng = self._root.fork("locations")

        def pool_factory(n_events: int) -> LocationPool:
            return LocationPool(
                location_rng,
                target_locations=cfg.n_clean_locations - cfg.n_stations,
                expected_events=n_events,
                first_location_id=cfg.n_stations,
            )

        sampler = TripSampler(
            zones, stations, adhoc, self._root.fork("trips"), cfg.trips
        )
        rentals, pool = sampler.generate(
            cfg.n_clean_rentals, pool_factory, cfg.n_bikes, first_rental_id=1
        )

        locations = station_records + pool.records
        injector = DirtyDataInjector(
            self._root.fork("noise"),
            cfg.noise,
            next_location_id=cfg.n_stations + len(pool.records),
            next_rental_id=len(rentals) + 1,
            anchor_location_id=0,
            n_bikes=cfg.n_bikes,
        )
        dirty_locations, dirty_rentals = injector.inject()

        raw = MobyDataset.from_records(
            locations + dirty_locations, rentals + dirty_rentals
        )
        return GeneratedWorld(raw=raw, stations=stations, spots=adhoc, zones=zones)

    def generate(self) -> MobyDataset:
        """Generate just the raw dataset."""
        return self.generate_world().raw


def generate_paper_dataset(seed: int = 7) -> MobyDataset:
    """The raw dataset every headline experiment uses."""
    return SyntheticMobyGenerator(seed=seed).generate()
