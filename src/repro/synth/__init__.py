"""Synthetic data substrate: a calibrated stand-in for the Moby dataset."""

from .city import (
    ALL_PROFILES,
    ALL_REGIONS,
    PROFILE_EMPLOYMENT,
    PROFILE_LEISURE_PARK,
    PROFILE_LEISURE_SEA,
    PROFILE_MIXED,
    PROFILE_RESIDENTIAL,
    REGION_CENTRAL,
    REGION_SOUTH,
    REGION_SUBURBAN,
    Zone,
    build_dublin_zones,
    check_zones,
    region_weights,
)
from .demand import (
    DATA_END,
    DATA_START,
    all_days,
    day_weight,
    destination_factor,
    hour_weights,
    is_weekend,
    origin_factor,
)
from .generator import (
    GeneratedWorld,
    GeneratorConfig,
    SyntheticMobyGenerator,
    generate_paper_dataset,
)
from .noise import DirtyDataInjector, NoiseConfig
from .rng import Rng
from .spots import Spot, generate_adhoc_spots, generate_stations
from .trips import (
    LocationPool,
    PairPool,
    TripSampler,
    TripSamplerConfig,
    apportion_days,
)

__all__ = [
    "ALL_PROFILES",
    "ALL_REGIONS",
    "DATA_END",
    "DATA_START",
    "DirtyDataInjector",
    "GeneratedWorld",
    "GeneratorConfig",
    "LocationPool",
    "NoiseConfig",
    "PairPool",
    "PROFILE_EMPLOYMENT",
    "PROFILE_LEISURE_PARK",
    "PROFILE_LEISURE_SEA",
    "PROFILE_MIXED",
    "PROFILE_RESIDENTIAL",
    "REGION_CENTRAL",
    "REGION_SOUTH",
    "REGION_SUBURBAN",
    "Rng",
    "Spot",
    "SyntheticMobyGenerator",
    "TripSampler",
    "TripSamplerConfig",
    "Zone",
    "all_days",
    "apportion_days",
    "build_dublin_zones",
    "check_zones",
    "day_weight",
    "destination_factor",
    "generate_adhoc_spots",
    "generate_paper_dataset",
    "generate_stations",
    "hour_weights",
    "is_weekend",
    "origin_factor",
    "region_weights",
]
