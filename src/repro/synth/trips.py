"""Trip sampling: turning the demand model into rental records.

Real BSS flows are *habitual*: the paper's candidate graph carries
61,872 trips on only ~16k directed edges (~3.9 trips per edge) and its
undirected/directed edge ratio is almost exactly 2 — flows run both
ways along the same pairs.  The sampler therefore works pair-first:

1. a **pair pool** is built once — each spot picks a handful of gravity-
   weighted partners (popularity x distance decay x station boost, with
   a cross-region penalty that calibrates the ~74 % self-containment);
2. each trip samples a calendar day (exact-total apportionment over the
   seasonal/COVID curve), an hour (day-type curve), then a *directed
   pair* from the pool with weights modulated by the origin/destination
   zones' temporal factors — so commute and leisure edges light up at
   the right times;
3. round trips (self-loops) are injected mostly at leisure spots;
4. concrete GPS locations are resolved around the endpoint spots, with
   a budget-controlled pool so the distinct-location count matches the
   paper's Location table.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from datetime import date, datetime, timedelta

try:
    # Synthetic generation is numpy-only by design: the sampled demand
    # surfaces go through np.exp, whose results are not bit-identical
    # to math.exp, so a pure-Python fallback would silently generate
    # *different* datasets (and different fingerprints/goldens).  The
    # module stays importable without numpy; generation raises.
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None

from ..data.records import LocationRecord, RentalRecord
from ..geo import GeoPoint, equirectangular_m, haversine_m
from .city import PROFILE_LEISURE_PARK, PROFILE_LEISURE_SEA, Zone
from .demand import (
    all_days,
    day_weight,
    destination_factor,
    hour_weights,
    origin_factor,
)
from .rng import Rng
from .spots import Spot


@dataclass
class TripSamplerConfig:
    """Knobs of the trip sampler (defaults calibrated to the paper)."""

    #: Partners each spot samples when building the pair pool.  The
    #: realised undirected edge count is roughly
    #: ``n_spots * partners_per_spot * dedup``, targeting Table II.
    partners_per_spot: int = 8
    #: Distance-decay scale of the gravity weights (metres), for pairs
    #: crossing latent regions.
    gravity_scale_m: float = 3300.0
    #: Distance-decay scale *within* a region.  Kept long so that
    #: scattered same-region poles (Phoenix Park, the seafront) still
    #: exchange trips, which is what keeps the paper's three G_Basic
    #: communities coherent.
    intra_gravity_scale_m: float = 7000.0
    #: Multiplier applied to station spots in gravity weights — fixes
    #: the share of endpoint events landing on stations.
    station_gravity_boost: float = 22.0
    #: Multiplier on cross-region pairs; calibrates self-containment
    #: (paper: ~74 % of trips stay within their community).
    cross_region_factor: float = 1.0
    #: Round-trip probability at leisure spots / everywhere else.
    p_round_trip_leisure: float = 0.10
    p_round_trip_other: float = 0.012
    #: Given a station endpoint, probability the GPS fix is the exact
    #: station location (vs a jittered fix near it).
    p_exact_station_fix: float = 0.80
    #: GPS noise (metres, 1 sigma per axis) around a spot.
    gps_sigma_m: float = 14.0
    #: Cycling speed used for durations (km/h) and its spread.
    speed_kmh: float = 11.0
    speed_sigma: float = 0.25


class LocationPool:
    """Budgeted factory of distinct Location rows.

    The paper's Location table has ~14k distinct rows for ~124k endpoint
    events: GPS fixes are heavily reused.  The pool decides, event by
    event, whether to mint a new location or reuse one already created
    at the same spot, steering the running total towards
    ``target_locations``.
    """

    def __init__(
        self,
        rng: Rng,
        target_locations: int,
        expected_events: int,
        first_location_id: int,
    ) -> None:
        self._rng = rng
        self._budget = target_locations
        self._expected_events = max(1, expected_events)
        self._next_id = first_location_id
        self._created = 0
        self._seen_events = 0
        self.records: list[LocationRecord] = []

    @property
    def created(self) -> int:
        """How many locations have been minted so far."""
        return self._created

    def _mint(self, spot: Spot, point: GeoPoint) -> int:
        location_id = self._next_id
        self._next_id += 1
        self._created += 1
        record = LocationRecord(
            location_id=location_id,
            lat=point.lat,
            lon=point.lon,
            is_station=False,
            name="",
        )
        self.records.append(record)
        spot.location_ids.append(location_id)
        return location_id

    def location_for_event(self, spot: Spot, fix: GeoPoint) -> int:
        """Return a location id for one endpoint event at ``spot``."""
        self._seen_events += 1
        remaining_events = max(1, self._expected_events - self._seen_events)
        remaining_budget = max(0, self._budget - self._created)
        p_new = min(1.0, remaining_budget / remaining_events)
        if not spot.location_ids or self._rng.random() < p_new:
            return self._mint(spot, fix)
        return self._rng.choice(spot.location_ids)


def apportion_days(rng: Rng, n_trips: int, days: list[date]) -> list[int]:
    """Distribute exactly ``n_trips`` over days by the day-weight curve."""
    weights = [day_weight(day) for day in days]
    cumulative: list[float] = []
    running = 0.0
    for weight in weights:
        running += weight
        cumulative.append(running)
    counts = [0] * len(days)
    for _ in range(n_trips):
        target = rng.random() * running
        counts[bisect.bisect_left(cumulative, target)] += 1
    return counts


@dataclass(frozen=True)
class _TripSkeleton:
    """A trip before its GPS locations are resolved."""

    started_at: datetime
    origin: Spot
    destination: Spot
    origin_exact: bool
    destination_exact: bool


class PairPool:
    """The habitual OD pairs and their time-modulated sampling tables."""

    def __init__(
        self,
        spots: list[Spot],
        rng: Rng,
        config: TripSamplerConfig,
    ) -> None:
        if np is None:
            raise RuntimeError(
                "synthetic trip generation needs numpy: its np.exp demand "
                "surfaces are not bit-reproducible in pure Python, and a "
                "divergent dataset would invalidate every fingerprint"
            )
        self._spots = spots
        self._config = config
        self.pairs: list[tuple[Spot, Spot, float]] = []
        self._build_pairs(rng)
        self._build_buckets()

    # ------------------------------------------------------------------
    # Pool construction
    # ------------------------------------------------------------------

    def _gravity_weight(self, u: Spot, v: Spot) -> float:
        cfg = self._config
        distance = equirectangular_m(u.point, v.point)
        same_region = u.zone.region == v.zone.region
        scale = cfg.intra_gravity_scale_m if same_region else cfg.gravity_scale_m
        weight = math.sqrt(u.popularity * v.popularity) * math.exp(-distance / scale)
        if v.is_station:
            weight *= cfg.station_gravity_boost
        if not same_region:
            weight *= cfg.cross_region_factor
        return weight

    def _build_pairs(self, rng: Rng) -> None:
        cfg = self._config
        spots = self._spots
        n = len(spots)
        # Vectorised gravity components.
        lats = np.array([spot.point.lat for spot in spots])
        lons = np.array([spot.point.lon for spot in spots])
        mean_phi = math.radians(float(np.mean(lats)))
        kx = 111_194.9 * math.cos(mean_phi)
        ky = 111_194.9
        pops = np.array([spot.popularity for spot in spots])
        boosts = np.array(
            [cfg.station_gravity_boost if spot.is_station else 1.0 for spot in spots]
        )
        regions = [spot.zone.region for spot in spots]

        seen: set[tuple[int, int]] = set()
        for i, u in enumerate(spots):
            dx = (lons - lons[i]) * kx
            dy = (lats - lats[i]) * ky
            distance = np.hypot(dx, dy)
            cross = np.array(
                [regions[j] != regions[i] for j in range(n)], dtype=bool
            )
            scale = np.where(
                cross, cfg.gravity_scale_m, cfg.intra_gravity_scale_m
            )
            weights = np.sqrt(pops[i] * pops) * np.exp(-distance / scale) * boosts
            weights[cross] *= cfg.cross_region_factor
            weights[i] = 0.0
            cumulative = np.cumsum(weights)
            total = float(cumulative[-1])
            if total <= 0:
                continue
            chosen: set[int] = set()
            attempts = 0
            while (
                len(chosen) < cfg.partners_per_spot
                and attempts < cfg.partners_per_spot * 20
            ):
                attempts += 1
                target = rng.random() * total
                index = int(np.searchsorted(cumulative, target, side="left"))
                chosen.add(min(index, n - 1))
            for index in sorted(chosen):
                v = spots[index]
                key = (min(u.spot_id, v.spot_id), max(u.spot_id, v.spot_id))
                if key in seen:
                    continue
                seen.add(key)
                base = self._gravity_weight(u, v) + self._gravity_weight(v, u)
                self.pairs.append((u, v, base))

    def _build_buckets(self) -> None:
        """Precompute cumulative sampling tables per (day-type, hour).

        Each directed pair's weight in a bucket is its base gravity
        weight times origin_factor(origin zone) times
        destination_factor(destination zone) at that time.
        """
        n = len(self.pairs)
        # Column layout: 2 directed entries per pair (u->v then v->u).
        self._cumulative: dict[tuple[bool, int], np.ndarray] = {}
        origin_profiles = [
            (u.zone.profile, v.zone.profile, base) for u, v, base in self.pairs
        ]
        for weekend in (False, True):
            weekday = 5 if weekend else 2
            for hour in range(24):
                weights = np.empty(2 * n, dtype=np.float64)
                for index, (pu, pv, base) in enumerate(origin_profiles):
                    forward = (
                        base
                        * origin_factor(pu, weekday, hour)
                        * destination_factor(pv, weekday, hour)
                    )
                    backward = (
                        base
                        * origin_factor(pv, weekday, hour)
                        * destination_factor(pu, weekday, hour)
                    )
                    weights[2 * index] = forward
                    weights[2 * index + 1] = backward
                self._cumulative[(weekend, hour)] = np.cumsum(weights)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def sample_directed(
        self, rng: Rng, weekday: int, hour: int
    ) -> tuple[Spot, Spot]:
        """Draw one directed (origin, destination) pair for this time."""
        cumulative = self._cumulative[(weekday >= 5, hour)]
        total = float(cumulative[-1])
        target = rng.random() * total
        slot = int(np.searchsorted(cumulative, target, side="left"))
        slot = min(slot, len(cumulative) - 1)
        u, v, _ = self.pairs[slot // 2]
        return (u, v) if slot % 2 == 0 else (v, u)


class TripSampler:
    """Samples rental records over a fixed spot layout."""

    def __init__(
        self,
        zones: tuple[Zone, ...],
        stations: list[Spot],
        adhoc_spots: list[Spot],
        rng: Rng,
        config: TripSamplerConfig | None = None,
    ) -> None:
        self.zones = zones
        self.config = config or TripSamplerConfig()
        self._rng = rng
        self._stations = stations
        self._adhoc = adhoc_spots
        self._pool = PairPool(
            stations + adhoc_spots, rng.fork("pairs"), self.config
        )

    @property
    def pair_pool(self) -> PairPool:
        """The underlying habitual-pair pool (exposed for diagnostics)."""
        return self._pool

    # ------------------------------------------------------------------
    # Skeleton generation
    # ------------------------------------------------------------------

    def _round_trip_probability(self, spot: Spot) -> float:
        if spot.zone.profile in (PROFILE_LEISURE_PARK, PROFILE_LEISURE_SEA):
            return self.config.p_round_trip_leisure
        return self.config.p_round_trip_other

    def _is_exact_fix(self, spot: Spot) -> bool:
        return spot.is_station and (
            self._rng.random() < self.config.p_exact_station_fix
        )

    def _skeletons(self, n_trips: int) -> list[_TripSkeleton]:
        skeletons: list[_TripSkeleton] = []
        days = all_days()
        counts = apportion_days(self._rng, n_trips, days)
        for day, count in zip(days, counts):
            weekday = day.weekday()
            hour_pmf = hour_weights(weekday)
            for _ in range(count):
                hour = self._rng.weighted_index(hour_pmf)
                minute = self._rng.randint(0, 59)
                second = self._rng.randint(0, 59)
                started_at = datetime(
                    day.year, day.month, day.day, hour, minute, second
                )
                origin, destination = self._pool.sample_directed(
                    self._rng, weekday, hour
                )
                if self._rng.random() < self._round_trip_probability(origin):
                    destination = origin
                skeletons.append(
                    _TripSkeleton(
                        started_at=started_at,
                        origin=origin,
                        destination=destination,
                        origin_exact=self._is_exact_fix(origin),
                        destination_exact=self._is_exact_fix(destination),
                    )
                )
        return skeletons

    # ------------------------------------------------------------------
    # Trip generation
    # ------------------------------------------------------------------

    def _duration_minutes(self, origin: GeoPoint, destination: GeoPoint) -> float:
        distance_km = haversine_m(origin, destination) / 1000.0
        speed = self.config.speed_kmh * math.exp(
            self._rng.gauss(0.0, self.config.speed_sigma)
        )
        riding = 60.0 * distance_km / max(speed, 3.0)
        # Round trips and very short hops still take a few minutes.
        return max(2.0, riding + self._rng.uniform(1.0, 6.0))

    def count_pool_events(self, skeletons: list[_TripSkeleton]) -> int:
        """Endpoint events that will ask the location pool for a row."""
        return sum(
            (0 if skeleton.origin_exact else 1)
            + (0 if skeleton.destination_exact else 1)
            for skeleton in skeletons
        )

    def generate(
        self,
        n_trips: int,
        pool_factory,
        n_bikes: int,
        first_rental_id: int = 1,
    ) -> tuple[list[RentalRecord], LocationPool]:
        """Generate ``n_trips`` rentals.

        ``pool_factory`` is called with the exact number of
        pool-visible endpoint events and must return a
        :class:`LocationPool`; the two-pass split lets the pool budget
        precisely.
        """
        skeletons = self._skeletons(n_trips)
        pool: LocationPool = pool_factory(self.count_pool_events(skeletons))
        rentals: list[RentalRecord] = []
        rental_id = first_rental_id
        for skeleton in skeletons:
            origin_fix = (
                skeleton.origin.point
                if skeleton.origin_exact
                else self._rng.jitter_point(
                    skeleton.origin.point, self.config.gps_sigma_m
                )
            )
            dest_fix = (
                skeleton.destination.point
                if skeleton.destination_exact
                else self._rng.jitter_point(
                    skeleton.destination.point, self.config.gps_sigma_m
                )
            )
            origin_location = (
                skeleton.origin.spot_id
                if skeleton.origin_exact
                else pool.location_for_event(skeleton.origin, origin_fix)
            )
            dest_location = (
                skeleton.destination.spot_id
                if skeleton.destination_exact
                else pool.location_for_event(skeleton.destination, dest_fix)
            )
            duration = self._duration_minutes(origin_fix, dest_fix)
            rentals.append(
                RentalRecord(
                    rental_id=rental_id,
                    bike_id=self._rng.randint(1, n_bikes),
                    started_at=skeleton.started_at,
                    ended_at=skeleton.started_at + timedelta(minutes=duration),
                    rental_location_id=origin_location,
                    return_location_id=dest_location,
                )
            )
            rental_id += 1
        return rentals, pool
