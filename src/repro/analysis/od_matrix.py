"""Origin-destination matrices over the expanded station network.

The paper's prior work ([17]) builds station profiles from their
interactions with all other stations; this module provides the OD
machinery those analyses need: dense trip matrices, row/column
marginals, community-level roll-ups and time-filtered variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..community import Partition
from ..core.graphs import TripOD


@dataclass
class ODMatrix:
    """A dense origin-destination trip-count matrix.

    ``index`` maps a station id to its row/column; rows are origins,
    columns destinations.
    """

    station_ids: list[int]
    counts: list[list[int]]

    @classmethod
    def from_trips(
        cls,
        trips: Sequence[TripOD],
        station_ids: Sequence[int] | None = None,
        keep: Callable[[TripOD], bool] | None = None,
    ) -> "ODMatrix":
        """Build from trips, optionally filtered by ``keep``.

        When ``station_ids`` is omitted, the stations appearing in the
        (filtered) trips define the matrix, in sorted order.
        """
        selected = [t for t in trips if keep is None or keep(t)]
        if station_ids is None:
            seen: set[int] = set()
            for trip in selected:
                seen.add(trip.origin)
                seen.add(trip.destination)
            ids = sorted(seen)
        else:
            ids = sorted(station_ids)
        index = {station_id: i for i, station_id in enumerate(ids)}
        counts = [[0] * len(ids) for _ in ids]
        for trip in selected:
            if trip.origin in index and trip.destination in index:
                counts[index[trip.origin]][index[trip.destination]] += 1
        return cls(station_ids=ids, counts=counts)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    @property
    def n_stations(self) -> int:
        """Matrix dimension."""
        return len(self.station_ids)

    def _index_of(self, station_id: int) -> int:
        try:
            return self.station_ids.index(station_id)
        except ValueError:
            raise KeyError(f"station {station_id} not in matrix") from None

    def count(self, origin: int, destination: int) -> int:
        """Trips from ``origin`` to ``destination``."""
        return self.counts[self._index_of(origin)][self._index_of(destination)]

    def out_totals(self) -> dict[int, int]:
        """Row sums: trips originating at each station."""
        return {
            station_id: sum(self.counts[i])
            for i, station_id in enumerate(self.station_ids)
        }

    def in_totals(self) -> dict[int, int]:
        """Column sums: trips arriving at each station."""
        return {
            station_id: sum(row[j] for row in self.counts)
            for j, station_id in enumerate(self.station_ids)
        }

    @property
    def total(self) -> int:
        """All trips in the matrix."""
        return sum(sum(row) for row in self.counts)

    def top_pairs(self, k: int = 10, include_loops: bool = False) -> list[tuple[int, int, int]]:
        """The ``k`` heaviest (origin, destination, count) pairs."""
        pairs: list[tuple[int, int, int]] = []
        for i, origin in enumerate(self.station_ids):
            for j, destination in enumerate(self.station_ids):
                if not include_loops and i == j:
                    continue
                if self.counts[i][j] > 0:
                    pairs.append((origin, destination, self.counts[i][j]))
        pairs.sort(key=lambda item: (-item[2], item[0], item[1]))
        return pairs[:k]

    def collapse(self, partition: Partition) -> "ODMatrix":
        """Roll the matrix up to community level.

        The returned matrix's "station ids" are community labels.
        """
        labels = sorted(
            {partition[sid] for sid in self.station_ids if sid in partition}
        )
        index = {label: i for i, label in enumerate(labels)}
        counts = [[0] * len(labels) for _ in labels]
        for i, origin in enumerate(self.station_ids):
            if origin not in partition:
                continue
            for j, destination in enumerate(self.station_ids):
                if destination not in partition:
                    continue
                counts[index[partition[origin]]][
                    index[partition[destination]]
                ] += self.counts[i][j]
        return ODMatrix(station_ids=labels, counts=counts)

    def self_containment(self) -> float:
        """Diagonal mass over total (community-level usage)."""
        total = self.total
        if total == 0:
            return 0.0
        diagonal = sum(self.counts[i][i] for i in range(self.n_stations))
        return diagonal / total
