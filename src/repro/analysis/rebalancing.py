"""Community-driven fleet rebalancing (the paper's closing use case).

The paper: "bikes could be moved from Communities 2, 4, and 6 to
Communities 1, 3, and 7 each Friday night to prepare for the shift in
demand over the weekend."  This module turns that sentence into a
planner: classify communities by weekend-demand shift, size transfers
proportionally to the shift, and pick per-station pickup/drop-off
points from weekday flux.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..community import Partition
from ..core.graphs import SelectedNetwork
from ..core.profiles import daily_profile, weekend_share
from ..serialize import check_envelope

#: A uniform week puts 2/7 of trips on the weekend.
UNIFORM_WEEKEND_SHARE = 2.0 / 7.0


@dataclass(frozen=True)
class CommunityDemand:
    """One community's weekend-shift summary."""

    community: int
    n_stations: int
    trips: int
    weekend_share: float

    @property
    def is_receiver(self) -> bool:
        """True when weekend demand exceeds the uniform share."""
        return self.weekend_share > UNIFORM_WEEKEND_SHARE

    @property
    def weekend_excess(self) -> float:
        """Signed trips-worth of weekend demand above uniform."""
        return (self.weekend_share - UNIFORM_WEEKEND_SHARE) * self.trips


@dataclass
class Transfer:
    """Move ``n_bikes`` from one community to another."""

    from_community: int
    to_community: int
    n_bikes: int
    pickup_stations: list[int] = field(default_factory=list)
    dropoff_stations: list[int] = field(default_factory=list)


@dataclass
class RebalancingPlan:
    """The full Friday-night plan."""

    demands: list[CommunityDemand]
    transfers: list[Transfer]

    @property
    def donors(self) -> list[int]:
        """Communities giving up bikes."""
        return sorted({t.from_community for t in self.transfers})

    @property
    def receivers(self) -> list[int]:
        """Communities receiving bikes."""
        return sorted({t.to_community for t in self.transfers})

    @property
    def total_bikes_moved(self) -> int:
        """Bikes moved across all transfers."""
        return sum(t.n_bikes for t in self.transfers)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe envelope of the full plan."""
        return {
            "type": "RebalancingPlan",
            "demands": [
                {
                    "community": demand.community,
                    "n_stations": demand.n_stations,
                    "trips": demand.trips,
                    "weekend_share": demand.weekend_share,
                }
                for demand in self.demands
            ],
            "transfers": [
                {
                    "from_community": transfer.from_community,
                    "to_community": transfer.to_community,
                    "n_bikes": transfer.n_bikes,
                    "pickup_stations": list(transfer.pickup_stations),
                    "dropoff_stations": list(transfer.dropoff_stations),
                }
                for transfer in self.transfers
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RebalancingPlan":
        """Exact inverse of :meth:`to_dict`."""
        check_envelope(payload, "RebalancingPlan")
        return cls(
            demands=[
                CommunityDemand(
                    community=entry["community"],
                    n_stations=entry["n_stations"],
                    trips=entry["trips"],
                    weekend_share=entry["weekend_share"],
                )
                for entry in payload["demands"]
            ],
            transfers=[
                Transfer(
                    from_community=entry["from_community"],
                    to_community=entry["to_community"],
                    n_bikes=entry["n_bikes"],
                    pickup_stations=list(entry["pickup_stations"]),
                    dropoff_stations=list(entry["dropoff_stations"]),
                )
                for entry in payload["transfers"]
            ],
        )


def plan_weekend_rebalancing(
    network: SelectedNetwork,
    partition: Partition,
    fleet_size: int,
    max_moved_fraction: float = 0.3,
    stations_per_transfer: int = 3,
) -> RebalancingPlan:
    """Build a Friday-night rebalancing plan.

    Bikes are assumed to sit where weekday demand leaves them
    (proportional to community trip volume).  Receivers get bikes
    proportional to their weekend excess; donors give proportional to
    their weekend deficit; at most ``max_moved_fraction`` of the fleet
    moves.  Pickup stations are the donors' strongest weekday sinks
    (positive flux: bikes pile up there); drop-offs are the receivers'
    strongest sources.
    """
    if fleet_size <= 0:
        raise ValueError("fleet_size must be positive")
    trips = network.trips
    profiles = daily_profile(trips, partition)
    volumes: dict[int, int] = {label: 0 for label in partition.labels()}
    for trip in trips:
        volumes[partition[trip.origin]] += 1

    demands = [
        CommunityDemand(
            community=label,
            n_stations=partition.sizes()[label],
            trips=volumes[label],
            weekend_share=weekend_share(profiles[label]),
        )
        for label in partition.labels()
    ]

    receivers = [d for d in demands if d.is_receiver and d.weekend_excess > 0]
    donors = [d for d in demands if not d.is_receiver and d.trips > 0]
    total_trips = sum(d.trips for d in demands) or 1
    total_excess = sum(d.weekend_excess for d in receivers)
    budget = min(
        int(round(fleet_size * max_moved_fraction)),
        int(round(fleet_size * total_excess / total_trips * 3.5)),
    )
    plan = RebalancingPlan(demands=demands, transfers=[])
    if budget <= 0 or not receivers or not donors:
        return plan

    # Per-station flux for pickup/drop-off choice.
    flow = network.directed_flow()
    flux = {sid: flow.in_strength(sid) - flow.out_strength(sid) for sid in network.stations}
    members: dict[int, list[int]] = {label: [] for label in partition.labels()}
    for sid in network.stations:
        if sid in partition:
            members[partition[sid]].append(sid)

    donor_capacity = {d.community: -d.weekend_excess for d in donors}
    total_capacity = sum(donor_capacity.values()) or 1.0
    for receiver in sorted(receivers, key=lambda d: -d.weekend_excess):
        receiver_bikes = max(
            1, int(round(budget * receiver.weekend_excess / total_excess))
        )
        for donor in sorted(donors, key=lambda d: -donor_capacity[d.community]):
            share = donor_capacity[donor.community] / total_capacity
            n_bikes = max(1, int(round(receiver_bikes * share)))
            pickups = sorted(
                members[donor.community], key=lambda sid: -flux[sid]
            )[:stations_per_transfer]
            dropoffs = sorted(
                members[receiver.community], key=lambda sid: flux[sid]
            )[:stations_per_transfer]
            plan.transfers.append(
                Transfer(
                    from_community=donor.community,
                    to_community=receiver.community,
                    n_bikes=n_bikes,
                    pickup_stations=pickups,
                    dropoff_stations=dropoffs,
                )
            )
    return plan
