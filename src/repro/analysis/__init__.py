"""Decision-support analytics over the expanded network."""

from .od_matrix import ODMatrix
from .rebalancing import (
    CommunityDemand,
    RebalancingPlan,
    Transfer,
    UNIFORM_WEEKEND_SHARE,
    plan_weekend_rebalancing,
)
from .station_profiles import (
    StationProfile,
    behavioural_outliers,
    build_profiles,
    mean_profile,
    profile_distance,
)

__all__ = [
    "CommunityDemand",
    "ODMatrix",
    "RebalancingPlan",
    "StationProfile",
    "Transfer",
    "UNIFORM_WEEKEND_SHARE",
    "behavioural_outliers",
    "build_profiles",
    "mean_profile",
    "plan_weekend_rebalancing",
    "profile_distance",
]
