"""Per-station behavioural profiles.

The paper's prior work built "station profiles to model their
interactions with all other stations"; its validation question is
whether new stations behave like existing ones.  A
:class:`StationProfile` captures the behavioural signature used for
that comparison: trip volume, balance, temporal histograms, partner
concentration — plus a distance function over profiles so outliers can
be ranked.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..core.graphs import SelectedNetwork, Station, TripOD
from ..metrics import gini


@dataclass(frozen=True)
class StationProfile:
    """The behavioural signature of one station."""

    station_id: int
    kind: str
    trips_out: int
    trips_in: int
    self_trips: int
    n_partners: int
    partner_gini: float
    hourly: tuple[float, ...]
    daily: tuple[float, ...]

    @property
    def volume(self) -> int:
        """Total trips touching the station (loops counted once)."""
        return self.trips_out + self.trips_in - self.self_trips

    @property
    def balance(self) -> float:
        """(in - out) / volume; 0 for balanced stations."""
        if self.volume == 0:
            return 0.0
        return (self.trips_in - self.trips_out) / self.volume


def _normalise(counts: list[int]) -> tuple[float, ...]:
    total = sum(counts)
    if total == 0:
        return tuple(0.0 for _ in counts)
    return tuple(value / total for value in counts)


def build_profiles(network: SelectedNetwork) -> dict[int, StationProfile]:
    """Compute a profile for every station in the network."""
    outs: dict[int, int] = {sid: 0 for sid in network.stations}
    ins: dict[int, int] = {sid: 0 for sid in network.stations}
    selfs: dict[int, int] = {sid: 0 for sid in network.stations}
    partners: dict[int, dict[int, int]] = {sid: {} for sid in network.stations}
    hourly: dict[int, list[int]] = {sid: [0] * 24 for sid in network.stations}
    daily: dict[int, list[int]] = {sid: [0] * 7 for sid in network.stations}

    for trip in network.trips:
        outs[trip.origin] += 1
        ins[trip.destination] += 1
        hourly[trip.origin][trip.hour_of_day] += 1
        daily[trip.origin][trip.day_of_week] += 1
        if trip.is_loop:
            selfs[trip.origin] += 1
        else:
            partners[trip.origin][trip.destination] = (
                partners[trip.origin].get(trip.destination, 0) + 1
            )
            partners[trip.destination][trip.origin] = (
                partners[trip.destination].get(trip.origin, 0) + 1
            )

    profiles: dict[int, StationProfile] = {}
    for sid, station in network.stations.items():
        partner_counts = list(partners[sid].values())
        profiles[sid] = StationProfile(
            station_id=sid,
            kind=station.kind,
            trips_out=outs[sid],
            trips_in=ins[sid],
            self_trips=selfs[sid],
            n_partners=len(partner_counts),
            partner_gini=gini(partner_counts) if partner_counts else 0.0,
            hourly=_normalise(hourly[sid]),
            daily=_normalise(daily[sid]),
        )
    return profiles


def profile_distance(a: StationProfile, b: StationProfile) -> float:
    """Behavioural distance between two stations.

    Euclidean over the temporal histograms plus the (scaled) balance
    and partner-concentration gaps.  Volume is deliberately excluded —
    a quiet station behaving like a busy one is *similar*, not distant.
    """
    hourly = math.sqrt(
        sum((x - y) ** 2 for x, y in zip(a.hourly, b.hourly))
    )
    daily = math.sqrt(sum((x - y) ** 2 for x, y in zip(a.daily, b.daily)))
    balance = abs(a.balance - b.balance)
    concentration = abs(a.partner_gini - b.partner_gini)
    return hourly + daily + 0.5 * balance + 0.5 * concentration


def behavioural_outliers(
    profiles: dict[int, StationProfile],
    kind: str = "selected",
    reference_kind: str = "fixed",
    top_k: int = 10,
) -> list[tuple[int, float]]:
    """Rank ``kind`` stations by distance to the nearest reference.

    This is the paper's validation question in metric form: a new
    station whose nearest fixed-station profile is far away behaves
    unlike any existing station.  Returns (station_id, distance),
    farthest first.
    """
    references = [p for p in profiles.values() if p.kind == reference_kind]
    subjects = [p for p in profiles.values() if p.kind == kind]
    if not references:
        raise ValueError(f"no stations of reference kind {reference_kind!r}")
    scored = [
        (
            subject.station_id,
            min(profile_distance(subject, ref) for ref in references),
        )
        for subject in subjects
    ]
    scored.sort(key=lambda item: -item[1])
    return scored[:top_k]


def mean_profile(profiles: Sequence[StationProfile]) -> tuple[float, ...]:
    """Mean hourly histogram over a set of profiles (diagnostics)."""
    if not profiles:
        return tuple(0.0 for _ in range(24))
    sums = [0.0] * 24
    for profile in profiles:
        for hour, share in enumerate(profile.hourly):
            sums[hour] += share
    return tuple(value / len(profiles) for value in sums)
