"""Named dataset storage behind ``/v1/datasets/<name>``.

A :class:`DatasetStore` keeps client-supplied trip datasets addressable
by name, so a :class:`~repro.service.spec.DatasetRef` of kind
``named`` can target an uploaded dataset in a later ``POST /v1/runs``
— and a *dataset sweep* becomes a plain list of run specs that differ
only in ``dataset.name``, all sharing one stage cache.

Storage is content-fingerprinted and size-capped:

* every stored dataset carries the same
  :func:`~repro.pipeline.fingerprint.dataset_digest` the cache layer
  keys on, computed once at ``put`` time — resolving a named ref never
  re-digests the rows;
* datasets serialise to the canonical CSV pair (``locations.csv`` /
  ``rentals.csv``, one directory per name), so a store directory
  doubles as a ``repro run --data`` input;
* ``max_dataset_bytes`` rejects a single oversized upload outright,
  while ``max_total_bytes`` / ``max_datasets`` bound the whole store by
  evicting the least-recently-*used* other datasets (an access
  refreshes recency, mirroring the stage cache's LRU).

Without a root directory the store is memory-only — the mode the
in-process test services use — with identical semantics; byte sizes
are still exact because caps are enforced on the serialised CSV text
either way.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from collections import OrderedDict
from io import StringIO
from pathlib import Path
from typing import Any

from ..data import MobyDataset
from ..data.csvio import write_locations, write_rentals
from ..exceptions import DatasetTooLargeError, ServiceError
from ..pipeline.fingerprint import dataset_digest

#: Dataset names become path components; keep them boring.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: Default per-upload cap — far above the paper-scale dataset (~8 MB
#: of CSV) but low enough that one client cannot fill a disk.
DEFAULT_MAX_DATASET_BYTES = 64 << 20


def check_dataset_name(name: str) -> str:
    """Validate (and return) a dataset name; raises :class:`ServiceError`.

    >>> check_dataset_name("dublin-2024_q1")
    'dublin-2024_q1'
    >>> check_dataset_name("../escape")
    Traceback (most recent call last):
        ...
    repro.exceptions.ServiceError: bad dataset name '../escape'; expected 1-64 characters from [A-Za-z0-9._-], starting alphanumeric
    """
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ServiceError(
            f"bad dataset name {name!r}; expected 1-64 characters from "
            "[A-Za-z0-9._-], starting alphanumeric"
        )
    return name


def _csv_pair(dataset: MobyDataset) -> tuple[str, str]:
    """The dataset's canonical (locations.csv, rentals.csv) text."""
    locations = StringIO()
    write_locations(locations, dataset.locations())
    rentals = StringIO()
    write_rentals(rentals, dataset.rentals())
    return locations.getvalue(), rentals.getvalue()


class DatasetStore:
    """Named, digested, size-capped dataset storage (disk or memory)."""

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        max_dataset_bytes: int | None = DEFAULT_MAX_DATASET_BYTES,
        max_total_bytes: int | None = None,
        max_datasets: int | None = None,
    ) -> None:
        if max_dataset_bytes is not None and max_dataset_bytes < 1:
            raise ServiceError("max_dataset_bytes must be positive (or None)")
        if max_total_bytes is not None and max_total_bytes < 1:
            raise ServiceError("max_total_bytes must be positive (or None)")
        if max_datasets is not None and max_datasets < 1:
            raise ServiceError("max_datasets must be positive (or None)")
        self.root = Path(root) if root is not None else None
        self.max_dataset_bytes = max_dataset_bytes
        self.max_total_bytes = max_total_bytes
        self.max_datasets = max_datasets
        self._mutex = threading.Lock()
        #: Per-name locks ordering disk writes against disk reads of the
        #: same dataset, so an overwrite can never interleave with a
        #: load (torn locations/rentals pair) and a (rows, digest) pair
        #: handed out is always mutually consistent.  Lock order: a name
        #: lock is taken *before* the store mutex, never after.
        self._name_locks: dict[str, threading.Lock] = {}
        #: name -> (meta, dataset | None); ordered oldest-used first.
        #: In disk mode the dataset object is not retained — the CSVs
        #: are the source of truth and the service memoises upstream.
        self._entries: OrderedDict[str, tuple[dict, MobyDataset | None]] = (
            OrderedDict()
        )
        self.evictions = 0
        if self.root is not None:
            self._load_existing()

    # ------------------------------------------------------------------
    # Store / fetch / drop
    # ------------------------------------------------------------------

    def put(self, name: str, dataset: MobyDataset) -> dict[str, Any]:
        """Store ``dataset`` under ``name``; returns its metadata document.

        Overwriting an existing name replaces content, digest and byte
        accounting in place (recency refreshed); other datasets are
        LRU-evicted as needed to honour the store-wide caps.  An upload
        that alone exceeds ``max_dataset_bytes`` — or that cannot fit
        even after evicting everything else — is rejected with
        :class:`ServiceError` and the store is left unchanged.
        """
        check_dataset_name(name)
        locations_csv, rentals_csv = _csv_pair(dataset)
        n_bytes = len(locations_csv.encode("utf-8")) + len(
            rentals_csv.encode("utf-8")
        )
        if self.max_dataset_bytes is not None and n_bytes > self.max_dataset_bytes:
            raise DatasetTooLargeError(
                f"dataset {name!r} is {n_bytes} bytes serialised; the "
                f"per-dataset cap is {self.max_dataset_bytes}"
            )
        if self.max_total_bytes is not None and n_bytes > self.max_total_bytes:
            raise DatasetTooLargeError(
                f"dataset {name!r} is {n_bytes} bytes serialised; the "
                f"whole store is capped at {self.max_total_bytes}"
            )
        meta = {
            "type": "Dataset",
            "name": name,
            "digest": dataset_digest(dataset),
            "bytes": n_bytes,
            "n_locations": dataset.n_locations,
            "n_rentals": dataset.n_rentals,
            "n_stations": dataset.n_stations,
            "created_at": time.time(),
        }
        with self._name_lock(name):
            with self._mutex:
                if self.root is not None:
                    self._write_disk(name, locations_csv, rentals_csv, meta)
                    self._entries[name] = (meta, None)
                else:
                    self._entries[name] = (meta, dataset)
                self._entries.move_to_end(name)
                self._evict_locked(keep=name)
        return dict(meta)

    def get(self, name: str) -> MobyDataset | None:
        """The stored dataset, or ``None``; refreshes LRU recency."""
        resolved = self.get_with_digest(name)
        return resolved[0] if resolved is not None else None

    def get_with_digest(self, name: str) -> tuple[MobyDataset, str] | None:
        """An atomically consistent (rows, content digest) pair.

        The name lock is held across the metadata snapshot and the row
        load, so a concurrent overwrite can never pair the new rows
        with the old digest (or hand out a torn CSV pair).  This is the
        resolution path the service fingerprints scenarios through.
        """
        with self._name_lock(name):
            with self._mutex:
                entry = self._entries.get(name)
                if entry is None:
                    return None
                self._entries.move_to_end(name)
                meta, dataset = entry
            if dataset is not None:
                return dataset, meta["digest"]
            assert self.root is not None
            try:
                loaded = MobyDataset.from_csv(self.root / name)
            except OSError:
                return None  # evicted/deleted underneath us: gone
            self._touch(name)
            return loaded, meta["digest"]

    def delete(self, name: str) -> bool:
        """Drop ``name``; returns whether it existed."""
        with self._name_lock(name):
            with self._mutex:
                entry = self._entries.pop(name, None)
                if entry is None:
                    return False
                if self.root is not None:
                    self._delete_disk(name)
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def digest(self, name: str) -> str | None:
        """Content digest of ``name`` without loading the rows."""
        with self._mutex:
            entry = self._entries.get(name)
            return entry[0]["digest"] if entry is not None else None

    def meta(self, name: str) -> dict[str, Any] | None:
        """The metadata document of ``name`` (a copy), or ``None``."""
        with self._mutex:
            entry = self._entries.get(name)
            return dict(entry[0]) if entry is not None else None

    def list(self) -> list[dict[str, Any]]:
        """Metadata documents of every stored dataset, name order."""
        with self._mutex:
            return [
                dict(meta)
                for _, (meta, _) in sorted(self._entries.items())
            ]

    def total_bytes(self) -> int:
        """Serialised bytes across every stored dataset."""
        with self._mutex:
            return sum(meta["bytes"] for meta, _ in self._entries.values())

    def __contains__(self, name: str) -> bool:
        with self._mutex:
            return name in self._entries

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _name_lock(self, name: str) -> threading.Lock:
        with self._mutex:
            return self._name_locks.setdefault(name, threading.Lock())

    def _evict_locked(self, keep: str) -> None:
        """LRU-evict datasets other than ``keep`` until the caps hold."""

        def over() -> bool:
            if self.max_datasets is not None and len(self._entries) > self.max_datasets:
                return True
            if self.max_total_bytes is not None:
                total = sum(m["bytes"] for m, _ in self._entries.values())
                if total > self.max_total_bytes:
                    return True
            return False

        while over():
            victim = next(
                (name for name in self._entries if name != keep), None
            )
            if victim is None:
                return  # only `keep` is left; put() pre-checked its size
            del self._entries[victim]
            if self.root is not None:
                self._delete_disk(victim)
            self.evictions += 1

    def _dir(self, name: str) -> Path:
        assert self.root is not None
        return self.root / name

    def _write_disk(
        self, name: str, locations_csv: str, rentals_csv: str, meta: dict
    ) -> None:
        directory = self._dir(name)
        directory.mkdir(parents=True, exist_ok=True)
        # Per-file atomic publish, meta.json last: a crash mid-overwrite
        # leaves either the old or the new content behind each file, and
        # the startup scan only trusts directories with a readable meta.
        for filename, text in (
            ("locations.csv", locations_csv),
            ("rentals.csv", rentals_csv),
            ("meta.json", json.dumps(meta, sort_keys=True)),
        ):
            path = directory / filename
            tmp = path.with_suffix(
                f".tmp.{os.getpid()}.{threading.get_ident()}"
            )
            tmp.write_text(text)
            os.replace(tmp, path)

    def _delete_disk(self, name: str) -> None:
        directory = self._dir(name)
        for filename in ("meta.json", "locations.csv", "rentals.csv"):
            (directory / filename).unlink(missing_ok=True)
        try:
            directory.rmdir()
        except OSError:
            pass  # stray files: leave the directory behind

    def _touch(self, name: str) -> None:
        """Refresh the on-disk recency stamp (survives restarts)."""
        try:
            os.utime(self._dir(name) / "meta.json")
        except OSError:
            pass

    def _load_existing(self) -> None:
        """Adopt datasets a previous process stored under ``root``."""
        assert self.root is not None
        found: list[tuple[float, str, dict]] = []
        try:
            children = sorted(self.root.iterdir())
        except OSError:
            return
        for child in children:
            meta_path = child / "meta.json"
            try:
                meta = json.loads(meta_path.read_text())
                mtime = meta_path.stat().st_mtime
            except (OSError, ValueError):
                continue  # partial/foreign directory: ignore
            if not isinstance(meta, dict) or meta.get("name") != child.name:
                continue
            found.append((mtime, child.name, meta))
        found.sort()  # least recently used first
        for _, name, meta in found:
            self._entries[name] = (meta, None)
