"""Named dataset storage behind ``/v1/datasets/<name>``.

A :class:`DatasetStore` keeps client-supplied trip datasets addressable
by name, so a :class:`~repro.service.spec.DatasetRef` of kind
``named`` can target an uploaded dataset in a later ``POST /v1/runs``
— and a *dataset sweep* (``ScenarioSpec.sweep_datasets``) is a plain
list of run specs that differ only in ``dataset.name``, all sharing
one stage cache.

Each dataset is one multi-part entry in a
:class:`~repro.store.Namespace`: the canonical CSV pair
(``locations.csv`` / ``rentals.csv``) plus a ``meta.json`` holding the
same :func:`~repro.pipeline.fingerprint.dataset_digest` the cache
layer keys on — computed once at ``put`` time, never recomputed on
resolve.  Under a directory backend that is one directory per name,
doubling as a ``repro run --data`` input.  All storage policy is the
namespace's:

* ``max_dataset_bytes`` rejects a single oversized upload outright
  (and so does an upload that could not fit even after evicting
  everything else), while ``max_total_bytes`` / ``max_datasets`` bound
  the whole store by LRU-evicting the least-recently-*used* other
  datasets — an access refreshes recency, and recency survives
  restarts through the backend's persisted access stamps;
* ``meta.json`` is the entry's recency anchor — deleted first on an
  overwrite, written last — so a crash mid-upload (fresh or
  replacement) leaves a partial entry that reads as absent, never a
  mix of old and new content under a stale digest; a restarted store
  adopts exactly the complete entries.

Without a root the namespace is memory-backed — the mode in-process
test services use — with identical semantics; byte caps are exact
either way because they are enforced on the serialised CSV text.
"""

from __future__ import annotations

import json
import time
from io import StringIO
from pathlib import Path
from typing import Any

from ..data import MobyDataset
from ..data.csvio import (
    read_locations,
    read_rentals,
    write_locations,
    write_rentals,
)
from ..exceptions import DatasetTooLargeError, ServiceError, StoreQuotaError
from ..pipeline.fingerprint import dataset_digest
from ..serialize import canonical_json
from ..store import NAME_KEY, DirBackend, MemoryBackend, Namespace
from .bytescache import BytesLRU, CachedBytes

#: Dataset names become path components; the storage layer's canonical
#: name-key pattern keeps them boring.
_NAME_RE = NAME_KEY

#: Default per-upload cap — far above the paper-scale dataset (~8 MB
#: of CSV) but low enough that one client cannot fill a disk.
DEFAULT_MAX_DATASET_BYTES = 64 << 20

#: The files making up one stored dataset; ``meta.json`` is the
#: recency anchor and only the CSV pair counts against byte quotas.
_PARTS = ("locations.csv", "rentals.csv", "meta.json")
_ACCOUNTED = ("locations.csv", "rentals.csv")

#: The metadata byte cache is tiny by construction (one ~300 B document
#: per dataset); the budgets only bound a pathological store.
_META_CACHE_BYTES = 1 << 20
_META_CACHE_ENTRIES = 1024


def check_dataset_name(name: str) -> str:
    """Validate (and return) a dataset name; raises :class:`ServiceError`.

    >>> check_dataset_name("dublin-2024_q1")
    'dublin-2024_q1'
    >>> check_dataset_name("../escape")
    Traceback (most recent call last):
        ...
    repro.exceptions.ServiceError: bad dataset name '../escape'; expected 1-64 characters from [A-Za-z0-9._-], starting alphanumeric
    """
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ServiceError(
            f"bad dataset name {name!r}; expected 1-64 characters from "
            "[A-Za-z0-9._-], starting alphanumeric"
        )
    return name


def _csv_pair(dataset: MobyDataset) -> tuple[str, str]:
    """The dataset's canonical (locations.csv, rentals.csv) text."""
    locations = StringIO()
    write_locations(locations, dataset.locations())
    rentals = StringIO()
    write_rentals(rentals, dataset.rentals())
    return locations.getvalue(), rentals.getvalue()


def datasets_namespace(
    backend,
    *,
    max_dataset_bytes: int | None = DEFAULT_MAX_DATASET_BYTES,
    max_total_bytes: int | None = None,
    max_datasets: int | None = None,
) -> Namespace:
    """The canonical dataset namespace policy over ``backend``."""
    return Namespace(
        backend,
        key_pattern=_NAME_RE,
        key_label="dataset",
        parts=_PARTS,
        accounted_parts=_ACCOUNTED,
        max_bytes=max_total_bytes,
        max_entries=max_datasets,
        max_entry_bytes=max_dataset_bytes,
        reject_oversize=True,
    )


class DatasetStore:
    """Named, digested, size-capped dataset storage over one namespace."""

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        max_dataset_bytes: int | None = DEFAULT_MAX_DATASET_BYTES,
        max_total_bytes: int | None = None,
        max_datasets: int | None = None,
        namespace: Namespace | None = None,
    ) -> None:
        if max_dataset_bytes is not None and max_dataset_bytes < 1:
            raise ServiceError("max_dataset_bytes must be positive (or None)")
        if max_total_bytes is not None and max_total_bytes < 1:
            raise ServiceError("max_total_bytes must be positive (or None)")
        if max_datasets is not None and max_datasets < 1:
            raise ServiceError("max_datasets must be positive (or None)")
        if namespace is None:
            backend = DirBackend(root) if root is not None else MemoryBackend()
            namespace = datasets_namespace(
                backend,
                max_dataset_bytes=max_dataset_bytes,
                max_total_bytes=max_total_bytes,
                max_datasets=max_datasets,
            )
        self.namespace = namespace
        #: Rendered ``GET /v1/datasets/<name>`` bodies (the canonical
        #: JSON of each metadata document) keyed by name, carrying the
        #: content digest as ETag — invalidated on every put/delete so a
        #: re-push moves the ETag atomically with the bytes.
        self._meta_bytes = BytesLRU(
            max_bytes=_META_CACHE_BYTES, max_entries=_META_CACHE_ENTRIES
        )

    # ------------------------------------------------------------------
    # Cap attributes (forwarded so callers can retune a live store)
    # ------------------------------------------------------------------

    @property
    def root(self) -> Path | None:
        backend = self.namespace.backend
        return backend.root if isinstance(backend, DirBackend) else None

    @property
    def max_dataset_bytes(self) -> int | None:
        return self.namespace.max_entry_bytes

    @max_dataset_bytes.setter
    def max_dataset_bytes(self, value: int | None) -> None:
        self.namespace.max_entry_bytes = value

    @property
    def max_total_bytes(self) -> int | None:
        return self.namespace.max_bytes

    @max_total_bytes.setter
    def max_total_bytes(self, value: int | None) -> None:
        self.namespace.max_bytes = value

    @property
    def max_datasets(self) -> int | None:
        return self.namespace.max_entries

    @max_datasets.setter
    def max_datasets(self, value: int | None) -> None:
        self.namespace.max_entries = value

    @property
    def evictions(self) -> int:
        return self.namespace.evictions

    # ------------------------------------------------------------------
    # Store / fetch / drop
    # ------------------------------------------------------------------

    def put(self, name: str, dataset: MobyDataset) -> dict[str, Any]:
        """Store ``dataset`` under ``name``; returns its metadata document.

        Overwriting an existing name replaces content, digest and byte
        accounting in place (recency refreshed); other datasets are
        LRU-evicted as needed to honour the store-wide caps.  An upload
        that alone exceeds ``max_dataset_bytes`` — or that cannot fit
        even after evicting everything else — is rejected with
        :class:`DatasetTooLargeError` and the store is left unchanged.
        """
        check_dataset_name(name)
        locations_csv, rentals_csv = _csv_pair(dataset)
        meta = {
            "type": "Dataset",
            "name": name,
            "digest": dataset_digest(dataset),
            "bytes": (
                len(locations_csv.encode("utf-8"))
                + len(rentals_csv.encode("utf-8"))
            ),
            "n_locations": dataset.n_locations,
            "n_rentals": dataset.n_rentals,
            "n_stations": dataset.n_stations,
            "created_at": time.time(),
        }
        # The name lock orders this write against reads of the same
        # dataset, so a (rows, digest) pair handed out is always
        # mutually consistent and never a torn CSV pair.
        with self.namespace.lock(name):
            try:
                self.namespace.put_entry(
                    name,
                    {
                        "locations.csv": locations_csv.encode("utf-8"),
                        "rentals.csv": rentals_csv.encode("utf-8"),
                        "meta.json": json.dumps(meta, sort_keys=True).encode(
                            "utf-8"
                        ),
                    },
                )
            except StoreQuotaError as error:
                raise DatasetTooLargeError(str(error)) from error
            self._meta_bytes.invalidate(name)
        return dict(meta)

    def get(self, name: str) -> MobyDataset | None:
        """The stored dataset, or ``None``; refreshes LRU recency."""
        resolved = self.get_with_digest(name)
        return resolved[0] if resolved is not None else None

    def get_with_digest(self, name: str) -> tuple[MobyDataset, str] | None:
        """An atomically consistent (rows, content digest) pair.

        The name lock is held across the metadata read and the row
        load, so a concurrent overwrite can never pair the new rows
        with the old digest (or hand out a torn CSV pair).  This is the
        resolution path the service fingerprints scenarios through.
        """
        with self.namespace.lock(name):
            meta = self._meta(name)
            if meta is None:
                return None
            parts = {}
            for part in _ACCOUNTED:
                # get_part (not peek): a resolve is a real access — it
                # counts as a namespace hit/miss and refreshes the
                # entry's LRU recency through the anchor.
                data = self.namespace.get_part(name, part)
                if data is None:
                    return None  # evicted/deleted underneath us: gone
                parts[part] = data
        loaded = MobyDataset.from_records(
            read_locations(StringIO(parts["locations.csv"].decode("utf-8"))),
            read_rentals(StringIO(parts["rentals.csv"].decode("utf-8"))),
        )
        return loaded, meta["digest"]

    def delete(self, name: str) -> bool:
        """Drop ``name``; returns whether it existed.

        An invalid name never existed (read path semantics — only
        :meth:`put` rejects bad names loudly), so HTTP DELETE stays a
        clean 404 instead of an exception.
        """
        if not isinstance(name, str) or not _NAME_RE.match(name):
            return False
        with self.namespace.lock(name):
            self._meta_bytes.invalidate(name)
            return self.namespace.delete(name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _meta(self, name: str) -> dict[str, Any] | None:
        if not isinstance(name, str) or not _NAME_RE.match(name):
            return None  # an invalid name is simply absent on reads
        data = self.namespace.peek_part(name, "meta.json")
        if data is None:
            return None
        try:
            meta = json.loads(data.decode("utf-8"))
        except ValueError:
            return None  # torn/foreign entry: invisible
        if not isinstance(meta, dict) or meta.get("name") != name:
            return None
        return meta

    def digest(self, name: str) -> str | None:
        """Content digest of ``name`` without loading the rows."""
        meta = self._meta(name)
        return meta.get("digest") if meta is not None else None

    def meta(self, name: str) -> dict[str, Any] | None:
        """The metadata document of ``name`` (a copy), or ``None``."""
        return self._meta(name)

    def meta_bytes(self, name: str) -> CachedBytes | None:
        """The rendered ``GET /v1/datasets/<name>`` body, or ``None``.

        Cached canonical-JSON bytes with the validators the HTTP layer
        serves: ETag is the dataset's content digest (a re-push moves
        it), ``Last-Modified`` is the upload's ``created_at`` stamp.
        Warm names never re-read or re-parse the stored metadata.
        """
        entry = self._meta_bytes.get(name, "meta")
        if entry is not None:
            self.namespace.count_front_hit()
            return entry
        # Refill under the name lock: a concurrent re-push invalidates
        # inside the same lock, so a stale read can never be pinned into
        # the cache after the overwrite's invalidation ran.
        with self.namespace.lock(name):
            meta = self._meta(name)
            if meta is None:
                return None
            return self._meta_bytes.put(
                name,
                "meta",
                canonical_json(meta).encode("utf-8"),
                etag=str(meta.get("digest", "")),
                last_modified=float(meta.get("created_at") or time.time()),
            )

    def list(self) -> list[dict[str, Any]]:
        """Metadata documents of every stored dataset, name order."""
        documents = []
        for name in self.namespace.keys():
            meta = self._meta(name)
            if meta is not None:
                documents.append(meta)
        return documents

    def total_bytes(self) -> int:
        """Serialised bytes across every stored dataset."""
        return self.namespace.total_bytes()

    def __contains__(self, name: str) -> bool:
        return self._meta(name) is not None

    def __len__(self) -> int:
        # Deliberately not namespace.entries(): only entries whose
        # metadata parses are real datasets — a torn/foreign meta.json
        # must stay invisible here just as it is in list()/get().
        return len(self.list())
