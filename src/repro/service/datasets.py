"""Named dataset storage behind ``/v1/datasets/<name>``.

A :class:`DatasetStore` keeps client-supplied trip datasets addressable
by name, so a :class:`~repro.service.spec.DatasetRef` of kind
``named`` can target an uploaded dataset in a later ``POST /v1/runs``
— and a *dataset sweep* (``ScenarioSpec.sweep_datasets``) is a plain
list of run specs that differ only in ``dataset.name``, all sharing
one stage cache.

Each dataset is one multi-part entry in a
:class:`~repro.store.Namespace`: the canonical CSV pair
(``locations.csv`` / ``rentals.csv``) plus a ``meta.json`` holding the
same :func:`~repro.pipeline.fingerprint.dataset_digest` the cache
layer keys on — computed once at ``put`` time, never recomputed on
resolve.  Under a directory backend that is one directory per name,
doubling as a ``repro run --data`` input.  All storage policy is the
namespace's:

* ``max_dataset_bytes`` rejects a single oversized upload outright
  (and so does an upload that could not fit even after evicting
  everything else), while ``max_total_bytes`` / ``max_datasets`` bound
  the whole store by LRU-evicting the least-recently-*used* other
  datasets — an access refreshes recency, and recency survives
  restarts through the backend's persisted access stamps;
* ``meta.json`` is the entry's recency anchor — deleted first on an
  overwrite, written last — so a crash mid-upload (fresh or
  replacement) leaves a partial entry that reads as absent, never a
  mix of old and new content under a stale digest; a restarted store
  adopts exactly the complete entries.

Without a root the namespace is memory-backed — the mode in-process
test services use — with identical semantics; byte caps are exact
either way because they are enforced on the serialised CSV text.
"""

from __future__ import annotations

import csv
import hashlib
import json
import tempfile
import threading
import time
from datetime import datetime
from io import StringIO, TextIOWrapper
from pathlib import Path
from typing import Any, Sequence

from ..data import MobyDataset
from ..data.csvio import (
    read_locations,
    read_rentals,
    write_locations,
    write_rentals,
)
from ..data.records import RentalRecord
from ..exceptions import (
    DatasetConflictError,
    DatasetTooLargeError,
    ServiceError,
    StoreQuotaError,
)
from ..pipeline.fingerprint import (
    SLICE_COUNTS,
    chain_digest,
    dataset_digest,
    dataset_slice_digests,
    rentals_digest,
    slice_digests,
)
from ..serialize import canonical_json
from ..store import NAME_KEY, DirBackend, MemoryBackend, Namespace
from .bytescache import BytesLRU, CachedBytes

#: Dataset names become path components; the storage layer's canonical
#: name-key pattern keeps them boring.
_NAME_RE = NAME_KEY

#: Default per-upload cap — far above the paper-scale dataset (~8 MB
#: of CSV) but low enough that one client cannot fill a disk.
DEFAULT_MAX_DATASET_BYTES = 64 << 20

#: The files making up one stored dataset; ``meta.json`` is the
#: recency anchor and only the CSV pair counts against byte quotas.
_PARTS = ("locations.csv", "rentals.csv", "meta.json")
_ACCOUNTED = ("locations.csv", "rentals.csv")

#: The metadata byte cache is tiny by construction (one ~2 KB document
#: per dataset); the budgets only bound a pathological store.
_META_CACHE_BYTES = 4 << 20
_META_CACHE_ENTRIES = 1024

#: Metadata document schema.  Version 2 added the append-mode lineage
#: fields (``max_rental_id``, ``appends``, ``history``, ``slices``);
#: version-1 documents (written before appends existed) are upgraded in
#: place by the first append that touches them.
META_SCHEMA = 2

#: Bound on the ``history`` chain kept in a dataset's metadata.  The
#: incremental runner only ever consults the *latest* parent, but a
#: short tail lets a run that raced one append behind still find its
#: prefix; past that, O(delta) recompute is the fallback anyway.
MAX_HISTORY = 8

#: Read granularity when streaming a stored rental log (an append
#: rewrites a multi-hundred-MB log without ever materialising it).
_COPY_CHUNK_BYTES = 1 << 20

#: Ranged-upload sessions (``PUT`` + ``Content-Range``) are spooled to
#: a temporary file past this threshold; below it they stay in memory.
_UPLOAD_SPOOL_BYTES = 8 << 20

#: Abandoned ranged-upload sessions are dropped after this long.
_UPLOAD_TTL_S = 3600.0


def check_dataset_name(name: str) -> str:
    """Validate (and return) a dataset name; raises :class:`ServiceError`.

    >>> check_dataset_name("dublin-2024_q1")
    'dublin-2024_q1'
    >>> check_dataset_name("../escape")
    Traceback (most recent call last):
        ...
    repro.exceptions.ServiceError: bad dataset name '../escape'; expected 1-64 characters from [A-Za-z0-9._-], starting alphanumeric
    """
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ServiceError(
            f"bad dataset name {name!r}; expected 1-64 characters from "
            "[A-Za-z0-9._-], starting alphanumeric"
        )
    return name


def _csv_pair(dataset: MobyDataset) -> tuple[str, str]:
    """The dataset's canonical (locations.csv, rentals.csv) text."""
    locations = StringIO()
    write_locations(locations, dataset.locations())
    rentals = StringIO()
    write_rentals(rentals, dataset.rentals())
    return locations.getvalue(), rentals.getvalue()


def _rental_csv_rows(rentals: Sequence[RentalRecord]) -> bytes:
    """Headerless CSV rows for ``rentals``, ready to append to a log.

    Byte-compatible with :func:`~repro.data.csvio.write_rentals` —
    concatenating these rows onto a stored ``rentals.csv`` yields
    exactly the file a full re-write of the merged dataset would
    produce.
    """
    buffer = StringIO()
    write_rentals(buffer, rentals)
    _, _, rows = buffer.getvalue().partition("\r\n")
    return rows.encode("utf-8")


class _RangedUpload:
    """One in-flight ``PUT`` + ``Content-Range`` session."""

    __slots__ = ("spool", "received", "total", "sha", "last_seen")

    def __init__(self, total: int) -> None:
        self.spool = tempfile.SpooledTemporaryFile(
            max_size=_UPLOAD_SPOOL_BYTES
        )
        self.received = 0
        self.total = total
        self.sha = hashlib.sha256()
        self.last_seen = time.monotonic()


def datasets_namespace(
    backend,
    *,
    max_dataset_bytes: int | None = DEFAULT_MAX_DATASET_BYTES,
    max_total_bytes: int | None = None,
    max_datasets: int | None = None,
) -> Namespace:
    """The canonical dataset namespace policy over ``backend``."""
    return Namespace(
        backend,
        key_pattern=_NAME_RE,
        key_label="dataset",
        parts=_PARTS,
        accounted_parts=_ACCOUNTED,
        max_bytes=max_total_bytes,
        max_entries=max_datasets,
        max_entry_bytes=max_dataset_bytes,
        reject_oversize=True,
    )


class DatasetStore:
    """Named, digested, size-capped dataset storage over one namespace."""

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        max_dataset_bytes: int | None = DEFAULT_MAX_DATASET_BYTES,
        max_total_bytes: int | None = None,
        max_datasets: int | None = None,
        namespace: Namespace | None = None,
    ) -> None:
        if max_dataset_bytes is not None and max_dataset_bytes < 1:
            raise ServiceError("max_dataset_bytes must be positive (or None)")
        if max_total_bytes is not None and max_total_bytes < 1:
            raise ServiceError("max_total_bytes must be positive (or None)")
        if max_datasets is not None and max_datasets < 1:
            raise ServiceError("max_datasets must be positive (or None)")
        if namespace is None:
            backend = DirBackend(root) if root is not None else MemoryBackend()
            namespace = datasets_namespace(
                backend,
                max_dataset_bytes=max_dataset_bytes,
                max_total_bytes=max_total_bytes,
                max_datasets=max_datasets,
            )
        self.namespace = namespace
        #: Rendered ``GET /v1/datasets/<name>`` bodies (the canonical
        #: JSON of each metadata document) keyed by name, carrying the
        #: content digest as ETag — invalidated on every put/delete so a
        #: re-push moves the ETag atomically with the bytes.
        self._meta_bytes = BytesLRU(
            max_bytes=_META_CACHE_BYTES, max_entries=_META_CACHE_ENTRIES
        )
        #: Ingestion counters (the healthz ``ingestion`` block and the
        #: ``repro_ingest_*`` metrics read these under the mutex).
        self._ingest_mutex = threading.Lock()
        self.appends = 0
        self.bytes_appended = 0
        self.slices_invalidated = 0
        #: In-flight ranged uploads (``PUT`` + ``Content-Range``),
        #: keyed by dataset name: fragments accumulate in a spool until
        #: the final fragment completes a normal :meth:`put`.
        self._uploads: dict[str, _RangedUpload] = {}
        self._uploads_mutex = threading.Lock()

    # ------------------------------------------------------------------
    # Cap attributes (forwarded so callers can retune a live store)
    # ------------------------------------------------------------------

    @property
    def root(self) -> Path | None:
        backend = self.namespace.backend
        return backend.root if isinstance(backend, DirBackend) else None

    @property
    def max_dataset_bytes(self) -> int | None:
        return self.namespace.max_entry_bytes

    @max_dataset_bytes.setter
    def max_dataset_bytes(self, value: int | None) -> None:
        self.namespace.max_entry_bytes = value

    @property
    def max_total_bytes(self) -> int | None:
        return self.namespace.max_bytes

    @max_total_bytes.setter
    def max_total_bytes(self, value: int | None) -> None:
        self.namespace.max_bytes = value

    @property
    def max_datasets(self) -> int | None:
        return self.namespace.max_entries

    @max_datasets.setter
    def max_datasets(self, value: int | None) -> None:
        self.namespace.max_entries = value

    @property
    def evictions(self) -> int:
        return self.namespace.evictions

    # ------------------------------------------------------------------
    # Store / fetch / drop
    # ------------------------------------------------------------------

    def put(self, name: str, dataset: MobyDataset) -> dict[str, Any]:
        """Store ``dataset`` under ``name``; returns its metadata document.

        Overwriting an existing name replaces content, digest and byte
        accounting in place (recency refreshed); other datasets are
        LRU-evicted as needed to honour the store-wide caps.  An upload
        that alone exceeds ``max_dataset_bytes`` — or that cannot fit
        even after evicting everything else — is rejected with
        :class:`DatasetTooLargeError` and the store is left unchanged.
        """
        check_dataset_name(name)
        locations_csv, rentals_csv = _csv_pair(dataset)
        meta = {
            "type": "Dataset",
            "name": name,
            "schema": META_SCHEMA,
            "digest": dataset_digest(dataset),
            "bytes": (
                len(locations_csv.encode("utf-8"))
                + len(rentals_csv.encode("utf-8"))
            ),
            "n_locations": dataset.n_locations,
            "n_rentals": dataset.n_rentals,
            "n_stations": dataset.n_stations,
            "created_at": time.time(),
            # Lineage: the delta-aware identity appends advance in
            # O(delta) and the incremental runner keys slice reuse on.
            "max_rental_id": dataset.max_rental_id(),
            "appends": 0,
            "history": [],
            "slices": dataset_slice_digests(dataset),
        }
        # The name lock orders this write against reads of the same
        # dataset, so a (rows, digest) pair handed out is always
        # mutually consistent and never a torn CSV pair.
        with self.namespace.lock(name):
            try:
                self.namespace.put_entry(
                    name,
                    {
                        "locations.csv": locations_csv.encode("utf-8"),
                        "rentals.csv": rentals_csv.encode("utf-8"),
                        "meta.json": json.dumps(meta, sort_keys=True).encode(
                            "utf-8"
                        ),
                    },
                )
            except StoreQuotaError as error:
                raise DatasetTooLargeError(str(error)) from error
            self._meta_bytes.invalidate(name)
        return dict(meta)

    # ------------------------------------------------------------------
    # Append-mode ingestion
    # ------------------------------------------------------------------

    def append(
        self, name: str, rentals: Sequence[RentalRecord]
    ) -> dict[str, Any] | None:
        """Append ``rentals`` to the stored log; returns the new metadata.

        The O(delta) ingestion path: the stored rental log is streamed
        into a new atomically-published ``rentals.csv`` (never
        materialised in memory), the content digest advances as a
        rolling chain ``H(old_digest || digest(delta))``, and only the
        temporal slices the delta actually touches get new per-slice
        digests — everything the incremental recompute path needs to
        reuse untouched slices warm.

        Contract: appended rental ids must strictly exceed every stored
        id (:class:`DatasetConflictError` otherwise — HTTP 409), so the
        appended log iterates identically to the same rows ingested in
        one shot.  Returns ``None`` when ``name`` is absent (HTTP 404).

        Crash safety mirrors :meth:`put`: the metadata anchor is
        deleted *first*, so a crash mid-append leaves an entry that
        reads as absent — never new rows under the old digest — and a
        re-push restores it.
        """
        check_dataset_name(name)
        delta = sorted(rentals, key=lambda record: record.rental_id)
        if not delta:
            raise ServiceError("append needs at least one rental row")
        for left, right in zip(delta, delta[1:]):
            if left.rental_id == right.rental_id:
                raise DatasetConflictError(
                    f"append carries rental id {left.rental_id} twice"
                )
        delta_bytes = _rental_csv_rows(delta)
        with self.namespace.lock(name):
            meta = self._meta(name)
            if meta is None:
                return None
            if "slices" not in meta or "max_rental_id" not in meta:
                meta = self._upgrade_meta_locked(name, meta)
                if meta is None:
                    return None
            floor = meta.get("max_rental_id")
            if floor is not None and delta[0].rental_id <= floor:
                raise DatasetConflictError(
                    f"append to {name!r} must use rental ids above "
                    f"{floor}; got {delta[0].rental_id} (re-push the "
                    "full dataset to rewrite history)"
                )
            new_size = int(meta.get("bytes", 0)) + len(delta_bytes)
            try:
                # Verdict lands before any part is touched: a rejected
                # append leaves the old entry fully intact.
                self.namespace.check_entry_size(name, new_size)
            except StoreQuotaError as error:
                raise DatasetTooLargeError(str(error)) from error
            # Advance the lineage: one chain link for the dataset, one
            # per temporal slice the delta touches.
            delta_slices = slice_digests(delta)
            empty = {
                kind: hashlib.sha256().hexdigest() for kind in SLICE_COUNTS
            }
            slices = {
                kind: list(meta["slices"][kind]) for kind in SLICE_COUNTS
            }
            touched = 0
            for kind, row in delta_slices.items():
                for index, digest in enumerate(row):
                    if digest == empty[kind]:
                        continue  # the delta has no trips in this slice
                    slices[kind][index] = chain_digest(
                        slices[kind][index], digest
                    )
                    touched += 1
            history = list(meta.get("history") or ())
            history.append(
                {
                    "digest": meta["digest"],
                    "n_rentals": meta["n_rentals"],
                    "max_rental_id": meta.get("max_rental_id"),
                }
            )
            meta = {
                **meta,
                "schema": META_SCHEMA,
                "digest": chain_digest(
                    meta["digest"], rentals_digest(delta)
                ),
                "bytes": new_size,
                "n_rentals": int(meta["n_rentals"]) + len(delta),
                "created_at": time.time(),
                "max_rental_id": delta[-1].rental_id,
                "appends": int(meta.get("appends", 0)) + 1,
                "history": history[-MAX_HISTORY:],
                "slices": slices,
            }
            # Anchor first: the entry reads as absent for the duration
            # of the rewrite, so a crash can never pair new rows with
            # the old digest (or serve a half-copied log).
            self.namespace.delete_part(name, "meta.json")
            source = self.namespace.open_part_read(name, "rentals.csv")
            if source is None:
                return None  # torn entry underneath us: gone
            last = b"\n"
            try:
                with self.namespace.open_part_write(
                    name, "rentals.csv"
                ) as sink:
                    while True:
                        block = source.read(_COPY_CHUNK_BYTES)
                        if not block:
                            break
                        last = block[-1:]
                        sink.write(block)
                    if last != b"\n":  # foreign log without trailing EOL
                        sink.write(b"\r\n")
                    sink.write(delta_bytes)
            finally:
                source.close()
            self.namespace.put_part(
                name,
                "meta.json",
                json.dumps(meta, sort_keys=True).encode("utf-8"),
            )
            self.namespace.finish_entry(name)
            self._meta_bytes.invalidate(name)
        with self._ingest_mutex:
            self.appends += 1
            self.bytes_appended += len(delta_bytes)
            self.slices_invalidated += touched
        return dict(meta)

    def _upgrade_meta_locked(
        self, name: str, meta: dict[str, Any]
    ) -> dict[str, Any] | None:
        """Fill the lineage fields into a pre-append-era metadata doc.

        Streams the stored rental log once (never materialised) to
        recover ``max_rental_id`` and the per-slice digests; runs under
        the name lock on the first append that meets a version-1
        document.
        """
        source = self.namespace.open_part_read(name, "rentals.csv")
        if source is None:
            return None
        digests = {
            kind: [hashlib.sha256() for _ in range(count)]
            for kind, count in SLICE_COUNTS.items()
        }
        max_rental_id: int | None = None
        try:
            text = TextIOWrapper(source, encoding="utf-8", newline="")
            for row in csv.DictReader(text):
                rental_id = int(row["rental_id"])
                started_at = datetime.fromisoformat(row["started_at"])
                ended_at = datetime.fromisoformat(row["ended_at"])
                pickup = (
                    int(row["rental_location_id"])
                    if row["rental_location_id"]
                    else None
                )
                dropoff = (
                    int(row["return_location_id"])
                    if row["return_location_id"]
                    else None
                )
                # Byte-identical to fingerprint.rental_token for the
                # same record, so upgraded slice digests line up with
                # ingest-time ones.
                token = (
                    f"R|{rental_id}|{row['bike_id']}|{started_at}"
                    f"|{ended_at}|{pickup}|{dropoff}"
                ).encode("utf-8")
                digests["day"][started_at.weekday()].update(token)
                digests["hour"][started_at.hour].update(token)
                if max_rental_id is None or rental_id > max_rental_id:
                    max_rental_id = rental_id
        finally:
            source.close()
        return {
            **meta,
            "schema": META_SCHEMA,
            "max_rental_id": max_rental_id,
            "appends": int(meta.get("appends", 0)),
            "history": list(meta.get("history") or ()),
            "slices": {
                kind: [digest.hexdigest() for digest in row]
                for kind, row in digests.items()
            },
        }

    def lineage(self, name: str) -> dict[str, Any] | None:
        """The append lineage of ``name`` for the incremental runner.

        ``{"digest", "history", "slices", "max_rental_id"}`` — or
        ``None`` when the dataset is absent or predates append-mode
        metadata (the runner then recomputes slice digests from rows,
        a perf fallback, never a correctness one).
        """
        meta = self._meta(name)
        if meta is None or "slices" not in meta:
            return None
        return {
            "digest": meta["digest"],
            "history": list(meta.get("history") or ()),
            "slices": meta["slices"],
            "max_rental_id": meta.get("max_rental_id"),
        }

    def ingestion_stats(self) -> dict[str, int]:
        """Live append counters (the healthz ``ingestion`` block)."""
        with self._ingest_mutex:
            return {
                "appends": self.appends,
                "bytes_appended": self.bytes_appended,
                "slices_invalidated": self.slices_invalidated,
            }

    # ------------------------------------------------------------------
    # Ranged (resumable) uploads
    # ------------------------------------------------------------------

    def upload_fragment(
        self, name: str, data: bytes, start: int, end: int, total: int
    ) -> dict[str, Any]:
        """Accept one ``Content-Range`` fragment of a dataset body.

        Fragments must arrive in order (``start`` equal to the bytes
        already received — :class:`DatasetConflictError` otherwise,
        HTTP 416); they accumulate in a spooled temporary file (memory
        up to a threshold, disk past it), so a multi-hundred-MB upload
        never holds its body in RAM before the final fragment.  When
        the last fragment lands the assembled JSON body is parsed and
        stored through :meth:`put`; the returned document then carries
        the full metadata plus ``"complete": True``.  Intermediate
        fragments return ``{"received": n, "total": t, "complete":
        False}`` (HTTP 202).

        Note for pre-forked servers: fragments of one upload must reach
        the *same* worker process — sessions are process-local.
        """
        check_dataset_name(name)
        if start < 0 or end < start or total <= end:
            raise ServiceError(
                f"bad content range {start}-{end}/{total}"
            )
        if len(data) != end - start + 1:
            raise ServiceError(
                f"content range {start}-{end} does not match the "
                f"{len(data)}-byte fragment"
            )
        now = time.monotonic()
        with self._uploads_mutex:
            self._expire_uploads_locked(now)
            upload = self._uploads.get(name)
            if upload is None or upload.total != total or start == 0:
                if upload is not None:
                    upload.spool.close()
                upload = _RangedUpload(total=total)
                self._uploads[name] = upload
            if start != upload.received:
                raise DatasetConflictError(
                    f"non-sequential fragment for {name!r}: got offset "
                    f"{start}, expected {upload.received}"
                )
            upload.spool.write(data)
            upload.sha.update(data)
            upload.received += len(data)
            upload.last_seen = now
            if upload.received < total:
                return {
                    "type": "DatasetUpload",
                    "name": name,
                    "received": upload.received,
                    "total": total,
                    "complete": False,
                }
            del self._uploads[name]
        try:
            upload.spool.seek(0)
            body = json.loads(upload.spool.read().decode("utf-8"))
            if not isinstance(body, dict):
                raise ValueError("dataset body must be a JSON object")
            dataset = MobyDataset.from_dict(body)
        finally:
            upload.spool.close()
        meta = self.put(name, dataset)
        meta["complete"] = True
        meta["body_sha256"] = upload.sha.hexdigest()
        return meta

    def _expire_uploads_locked(self, now: float) -> None:
        stale = [
            key
            for key, upload in self._uploads.items()
            if now - upload.last_seen > _UPLOAD_TTL_S
        ]
        for key in stale:
            self._uploads.pop(key).spool.close()

    def get(self, name: str) -> MobyDataset | None:
        """The stored dataset, or ``None``; refreshes LRU recency."""
        resolved = self.get_with_digest(name)
        return resolved[0] if resolved is not None else None

    def get_with_digest(self, name: str) -> tuple[MobyDataset, str] | None:
        """An atomically consistent (rows, content digest) pair.

        The name lock is held across the metadata read and the row
        load, so a concurrent overwrite can never pair the new rows
        with the old digest (or hand out a torn CSV pair).  This is the
        resolution path the service fingerprints scenarios through.
        """
        with self.namespace.lock(name):
            meta = self._meta(name)
            if meta is None:
                return None
            parts = {}
            for part in _ACCOUNTED:
                # get_part (not peek): a resolve is a real access — it
                # counts as a namespace hit/miss and refreshes the
                # entry's LRU recency through the anchor.
                data = self.namespace.get_part(name, part)
                if data is None:
                    return None  # evicted/deleted underneath us: gone
                parts[part] = data
        loaded = MobyDataset.from_records(
            read_locations(StringIO(parts["locations.csv"].decode("utf-8"))),
            read_rentals(StringIO(parts["rentals.csv"].decode("utf-8"))),
        )
        return loaded, meta["digest"]

    def delete(self, name: str) -> bool:
        """Drop ``name``; returns whether it existed.

        An invalid name never existed (read path semantics — only
        :meth:`put` rejects bad names loudly), so HTTP DELETE stays a
        clean 404 instead of an exception.
        """
        if not isinstance(name, str) or not _NAME_RE.match(name):
            return False
        with self.namespace.lock(name):
            self._meta_bytes.invalidate(name)
            return self.namespace.delete(name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _meta(self, name: str) -> dict[str, Any] | None:
        if not isinstance(name, str) or not _NAME_RE.match(name):
            return None  # an invalid name is simply absent on reads
        data = self.namespace.peek_part(name, "meta.json")
        if data is None:
            return None
        try:
            meta = json.loads(data.decode("utf-8"))
        except ValueError:
            return None  # torn/foreign entry: invisible
        if not isinstance(meta, dict) or meta.get("name") != name:
            return None
        return meta

    def digest(self, name: str) -> str | None:
        """Content digest of ``name`` without loading the rows."""
        meta = self._meta(name)
        return meta.get("digest") if meta is not None else None

    def meta(self, name: str) -> dict[str, Any] | None:
        """The metadata document of ``name`` (a copy), or ``None``."""
        return self._meta(name)

    def meta_bytes(self, name: str) -> CachedBytes | None:
        """The rendered ``GET /v1/datasets/<name>`` body, or ``None``.

        Cached canonical-JSON bytes with the validators the HTTP layer
        serves: ETag is the dataset's content digest (a re-push moves
        it), ``Last-Modified`` is the upload's ``created_at`` stamp.
        Warm names never re-read or re-parse the stored metadata.
        """
        entry = self._meta_bytes.get(name, "meta")
        if entry is not None:
            self.namespace.count_front_hit()
            return entry
        # Refill under the name lock: a concurrent re-push invalidates
        # inside the same lock, so a stale read can never be pinned into
        # the cache after the overwrite's invalidation ran.
        with self.namespace.lock(name):
            meta = self._meta(name)
            if meta is None:
                return None
            return self._meta_bytes.put(
                name,
                "meta",
                canonical_json(meta).encode("utf-8"),
                etag=str(meta.get("digest", "")),
                last_modified=float(meta.get("created_at") or time.time()),
            )

    def list(self) -> list[dict[str, Any]]:
        """Metadata documents of every stored dataset, name order."""
        documents = []
        for name in self.namespace.keys():
            meta = self._meta(name)
            if meta is not None:
                documents.append(meta)
        return documents

    def total_bytes(self) -> int:
        """Serialised bytes across every stored dataset."""
        return self.namespace.total_bytes()

    def __contains__(self, name: str) -> bool:
        return self._meta(name) is not None

    def __len__(self) -> int:
        # Deliberately not namespace.entries(): only entries whose
        # metadata parses are real datasets — a torn/foreign meta.json
        # must stay invisible here just as it is in list()/get().
        return len(self.list())
