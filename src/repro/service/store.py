"""The results store: completed envelopes keyed by spec fingerprint.

Envelopes are stored as their :func:`repro.serialize.canonical_json`
bytes — the exact bytes every surface serves — either on disk (one
``<fingerprint>.json`` per result, written atomically like the stage
cache's pickles) or in memory when no directory is given.  A warm
store lets a restarted service answer ``GET /v1/results/<fp>`` and
repeated submissions without touching the pipeline at all.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

from ..serialize import canonical_json

_FINGERPRINT_SAFE = set("0123456789abcdef")


def _checked(fingerprint: str) -> str:
    """Reject anything that is not a plain hex digest (path safety)."""
    if not fingerprint or any(c not in _FINGERPRINT_SAFE for c in fingerprint):
        raise ValueError(f"bad result fingerprint {fingerprint!r}")
    return fingerprint


class ResultsStore:
    """Canonical-JSON envelope store, disk-backed or in-memory."""

    def __init__(self, results_dir: str | Path | None = None) -> None:
        self.results_dir = Path(results_dir) if results_dir is not None else None
        self._memory: dict[str, str] = {}
        self._mutex = threading.Lock()

    def raw(self, fingerprint: str) -> str | None:
        """The stored canonical-JSON text, or ``None``."""
        _checked(fingerprint)
        if self.results_dir is None:
            with self._mutex:
                return self._memory.get(fingerprint)
        try:
            return (self.results_dir / f"{fingerprint}.json").read_text()
        except OSError:
            return None

    def get(self, fingerprint: str) -> dict | None:
        """The stored envelope as a dict, or ``None``."""
        text = self.raw(fingerprint)
        if text is None:
            return None
        try:
            return json.loads(text)
        except ValueError:
            return None  # truncated/garbled entry: treat as a miss

    def put(self, fingerprint: str, envelope: dict) -> str:
        """Store ``envelope``; returns the canonical text written."""
        _checked(fingerprint)
        text = canonical_json(envelope)
        if self.results_dir is None:
            with self._mutex:
                self._memory[fingerprint] = text
            return text
        self.results_dir.mkdir(parents=True, exist_ok=True)
        path = self.results_dir / f"{fingerprint}.json"
        tmp = path.with_suffix(f".tmp.{os.getpid()}.{threading.get_ident()}")
        try:
            tmp.write_text(text)
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)
        return text

    def __contains__(self, fingerprint: str) -> bool:
        return self.raw(fingerprint) is not None

    def __len__(self) -> int:
        if self.results_dir is None:
            with self._mutex:
                return len(self._memory)
        try:
            return sum(1 for _ in self.results_dir.glob("*.json"))
        except OSError:
            return 0
