"""The results store: completed envelopes keyed by spec fingerprint.

Envelopes are stored as their :func:`repro.serialize.canonical_json`
bytes — the exact bytes every surface serves — in a
:class:`~repro.store.Namespace` (one ``<fingerprint>.json`` per result
under a directory backend, written atomically; memory-backed when no
directory is given).  A warm store lets a restarted service answer
``GET /v1/results/<fp>`` and repeated submissions without touching the
pipeline at all.

Key validation, atomic publish and (optional) quota eviction are the
namespace's; this class only translates envelope dicts to and from
canonical text.  A :class:`~repro.service.bytescache.BytesLRU` fronts
the namespace with *rendered response payloads*: the full envelope's
encoded bytes plus every narrowed view the HTTP layer has served from
it (``fields=headline``, paginated sections), each carrying the strong
validators (ETag = fingerprint, a ``Last-Modified`` stamp) conditional
GETs revalidate against.  Entries are content-addressed — a
fingerprint can only ever map to one byte sequence — so the front can
never serve stale data; an explicit overwrite (schema upgrade
recompute) still invalidates every cached view first.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Hashable

from ..serialize import canonical_json
from ..store import HEX_KEY, DirBackend, MemoryBackend, Namespace
from .bytescache import BytesLRU, CachedBytes

#: The byte-cache view key of the full stored envelope.
FULL_VIEW = "full"


def results_namespace(backend) -> Namespace:
    """The canonical results namespace policy over ``backend``.

    Result keys are plain hex digests (:data:`repro.store.HEX_KEY`) —
    anything else is rejected before it can touch storage.
    """
    return Namespace(
        backend,
        key_pattern=HEX_KEY,
        key_label="result fingerprint",
        suffix=".json",
    )


class ResultsStore:
    """Canonical-JSON envelope store over one results namespace."""

    def __init__(
        self,
        results_dir: str | Path | None = None,
        *,
        namespace: Namespace | None = None,
        bytes_cache: BytesLRU | None = None,
        breaker=None,
    ) -> None:
        if namespace is None:
            backend = (
                DirBackend(results_dir) if results_dir is not None else MemoryBackend()
            )
            namespace = results_namespace(backend)
        self.namespace = namespace
        #: Rendered envelope payloads (full body + narrowed views) as
        #: ready-to-write bytes; see :mod:`repro.service.bytescache`.
        self.bytes_cache = bytes_cache if bytes_cache is not None else BytesLRU()
        #: Optional :class:`~repro.resilience.breaker.CircuitBreaker`
        #: observing publish outcomes — the service's degradation signal.
        self.breaker = breaker

    @property
    def results_dir(self) -> Path | None:
        """Root of the store when it is directory-backed."""
        backend = self.namespace.backend
        return backend.root if isinstance(backend, DirBackend) else None

    # ------------------------------------------------------------------
    # The warm byte path
    # ------------------------------------------------------------------

    def _last_modified(self, fingerprint: str) -> float:
        """A ``Last-Modified``-grade stamp for one stored entry.

        Directory backends stamp entries with real file mtimes (and the
        unbounded results namespace never rewrites them on reads, so the
        stamp is the publish time).  The memory backend's stamps are a
        monotonic *counter*, not wall-clock — recognisable as tiny
        values — so fall back to "now": the stamp only moves a
        conditional GET toward an unnecessary 200, never staleness.
        """
        stat = self.namespace.entry_stat(fingerprint)
        if stat is not None and stat.accessed > 1e9:
            return stat.accessed
        return time.time()

    def _seed(self, fingerprint: str, data: bytes) -> CachedBytes:
        return self.bytes_cache.put(
            fingerprint,
            FULL_VIEW,
            data,
            etag=fingerprint,
            last_modified=self._last_modified(fingerprint),
        )

    def raw_entry(self, fingerprint: str) -> CachedBytes | None:
        """The stored envelope as cached payload bytes, or ``None``.

        Warm fingerprints come straight from the byte cache — no
        backend read, no decode, no parse; only the first read of a
        fingerprint touches backend bytes.
        """
        entry = self.bytes_cache.get(fingerprint, FULL_VIEW)
        if entry is not None:
            self.namespace.count_front_hit()
            return entry
        data = self.namespace.get(fingerprint)
        if data is None:
            return None
        return self._seed(fingerprint, data)

    def view_entry(
        self,
        fingerprint: str,
        view: Hashable,
        build: Callable[[dict], bytes],
    ) -> CachedBytes | None:
        """One rendered view of a stored envelope, cached as bytes.

        ``build`` receives the parsed envelope and returns the view's
        payload bytes; it runs only on a cold view — a warm hit never
        parses JSON.  Exceptions from ``build`` (an unknown section, a
        bad page) propagate uncached, so error responses are never
        pinned into the cache.  Returns ``None`` when no envelope is
        stored under ``fingerprint``.
        """
        entry = self.bytes_cache.get(fingerprint, view)
        if entry is not None:
            self.namespace.count_front_hit()
            return entry
        full = self.raw_entry(fingerprint)
        if full is None:
            return None
        payload = build(json.loads(full.payload.decode("utf-8")))
        return self.bytes_cache.put(
            fingerprint,
            view,
            payload,
            etag=full.etag,
            last_modified=full.last_modified,
        )

    # ------------------------------------------------------------------
    # Text/dict compatibility surface
    # ------------------------------------------------------------------

    def raw(self, fingerprint: str) -> str | None:
        """The stored canonical-JSON text, or ``None``.

        Decodes the cached payload per call; byte-path consumers (the
        HTTP layer) use :meth:`raw_entry` and skip the decode entirely.
        """
        entry = self.raw_entry(fingerprint)
        return entry.payload.decode("utf-8") if entry is not None else None

    def get(self, fingerprint: str) -> dict | None:
        """The stored envelope as a dict, or ``None``."""
        text = self.raw(fingerprint)
        if text is None:
            return None
        try:
            return json.loads(text)
        except ValueError:
            return None  # truncated/garbled entry: treat as a miss

    def put(self, fingerprint: str, envelope: dict) -> str:
        """Store ``envelope``; returns the canonical text written."""
        self.namespace.check_key(fingerprint)
        text = canonical_json(envelope)
        data = text.encode("utf-8")
        try:
            self.namespace.put(fingerprint, data)
        except OSError:
            # A full/readonly disk degrades to best-effort persistence;
            # the breaker turns a *streak* of these into read-only mode.
            if self.breaker is not None:
                self.breaker.record_failure()
        else:
            if self.breaker is not None:
                self.breaker.record_success()
        # Views rendered from any previous bytes die with the overwrite
        # (schema-upgrade recompute); the fresh full body is seeded so
        # the first GET after a run is already warm.
        self.bytes_cache.invalidate(fingerprint)
        self._seed(fingerprint, data)
        return text

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.namespace

    def __len__(self) -> int:
        return self.namespace.entries()
