"""The results store: completed envelopes keyed by spec fingerprint.

Envelopes are stored as their :func:`repro.serialize.canonical_json`
bytes — the exact bytes every surface serves — in a
:class:`~repro.store.Namespace` (one ``<fingerprint>.json`` per result
under a directory backend, written atomically; memory-backed when no
directory is given).  A warm store lets a restarted service answer
``GET /v1/results/<fp>`` and repeated submissions without touching the
pipeline at all.

Key validation, atomic publish and (optional) quota eviction are the
namespace's; this class only translates envelope dicts to and from
canonical text.  A small :class:`~repro.store.ObjectLRU` fronts the
namespace with the decoded canonical text, so repeated reads of a warm
envelope (result polling, duplicate submissions) never re-read backend
bytes.  Entries are content-addressed — a fingerprint can only ever
map to one text — so the front can never serve stale data.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..serialize import canonical_json
from ..store import HEX_KEY, DirBackend, MemoryBackend, Namespace, ObjectLRU


def results_namespace(backend) -> Namespace:
    """The canonical results namespace policy over ``backend``.

    Result keys are plain hex digests (:data:`repro.store.HEX_KEY`) —
    anything else is rejected before it can touch storage.
    """
    return Namespace(
        backend,
        key_pattern=HEX_KEY,
        key_label="result fingerprint",
        suffix=".json",
    )


class ResultsStore:
    """Canonical-JSON envelope store over one results namespace."""

    def __init__(
        self,
        results_dir: str | Path | None = None,
        *,
        namespace: Namespace | None = None,
        memory_slots: int = 64,
        breaker=None,
    ) -> None:
        if namespace is None:
            backend = (
                DirBackend(results_dir) if results_dir is not None else MemoryBackend()
            )
            namespace = results_namespace(backend)
        self.namespace = namespace
        self._memory = ObjectLRU(memory_slots)
        #: Optional :class:`~repro.resilience.breaker.CircuitBreaker`
        #: observing publish outcomes — the service's degradation signal.
        self.breaker = breaker

    @property
    def results_dir(self) -> Path | None:
        """Root of the store when it is directory-backed."""
        backend = self.namespace.backend
        return backend.root if isinstance(backend, DirBackend) else None

    def raw(self, fingerprint: str) -> str | None:
        """The stored canonical-JSON text, or ``None``.

        Warm envelopes come straight from the in-process LRU front;
        only the first read of a fingerprint touches backend bytes.
        """
        text = self._memory.get(fingerprint)
        if text is not None:
            self.namespace.count_front_hit()
            return text
        data = self.namespace.get(fingerprint)
        if data is None:
            return None
        text = data.decode("utf-8")
        self._memory.put(fingerprint, text)
        return text

    def get(self, fingerprint: str) -> dict | None:
        """The stored envelope as a dict, or ``None``."""
        text = self.raw(fingerprint)
        if text is None:
            return None
        try:
            return json.loads(text)
        except ValueError:
            return None  # truncated/garbled entry: treat as a miss

    def put(self, fingerprint: str, envelope: dict) -> str:
        """Store ``envelope``; returns the canonical text written."""
        self.namespace.check_key(fingerprint)
        text = canonical_json(envelope)
        try:
            self.namespace.put(fingerprint, text.encode("utf-8"))
        except OSError:
            # A full/readonly disk degrades to best-effort persistence;
            # the breaker turns a *streak* of these into read-only mode.
            if self.breaker is not None:
                self.breaker.record_failure()
        else:
            if self.breaker is not None:
                self.breaker.record_success()
        self._memory.put(fingerprint, text)
        return text

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.namespace

    def __len__(self) -> int:
        return self.namespace.entries()
