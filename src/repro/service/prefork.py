"""Pre-fork multi-worker serving: ``repro serve --workers N``.

One parent process reserves the port and forks ``N`` workers; every
worker runs the full single-process stack — its own
:class:`~repro.service.service.ExpansionService` (byte cache, worker
pool, metrics registry) over the **shared** ``--store-dir``, its own
:class:`~repro.service.http.ServiceHTTPServer` accept loop — so the
GIL bounds one worker, not the fleet.

Socket strategy, in preference order:

* ``SO_REUSEPORT`` (Linux/BSD): the parent *binds but never listens*
  (holding the port reservation — it can receive nothing), and each
  worker binds its own listening socket to the same address; the
  kernel load-balances accepted connections across workers without a
  shared accept lock.
* Fallback: the parent binds **and listens**, and every forked worker
  serves the inherited accept socket — classic pre-fork, contended on
  accept but portable.

Coordination beyond the kernel is exactly the storage layer: results
published by one worker are warm bytes for it and one namespace read
away for its siblings; jobs are visible fleet-wide through the shared
job journal (:meth:`ExpansionService.job` falls back to it).  Only
worker 0 resumes a previous fleet's journalled backlog — one claimant,
no duplicated re-runs.

The parent forwards ``SIGTERM``/``SIGINT`` to the workers and reaps
them; a worker dying unexpectedly brings the fleet down (a supervisor
restarts the whole ``repro serve``, never a half-fleet).
"""

from __future__ import annotations

import os
import signal
import socket
from typing import Callable

from ..obs import JsonEventLog
from .http import ServiceHTTPServer
from .service import ExpansionService

__all__ = ["reuse_port_supported", "serve_prefork"]

#: Accept backlog for the shared (or per-worker) listening socket.
_BACKLOG = 128

#: One worker's service plus the event log it owns (both built *after*
#: the fork — thread pools and file handles must not cross it).
WorkerFactory = Callable[[int], "tuple[ExpansionService, JsonEventLog | None]"]


def reuse_port_supported() -> bool:
    """Whether this platform can load-balance via ``SO_REUSEPORT``."""
    return hasattr(socket, "SO_REUSEPORT")


def _bind(host: str, port: int, *, reuse_port: bool, listen: bool) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuse_port:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        if listen:
            sock.listen(_BACKLOG)
    except BaseException:
        sock.close()
        raise
    return sock


def _worker_main(
    index: int,
    parent_sock: socket.socket,
    host: str,
    port: int,
    reuse_port: bool,
    factory: WorkerFactory,
) -> int:
    """One worker's whole life; runs only in the forked child."""

    def _exit_on_term(signum, frame):  # pragma: no cover - signal path
        # serve_forever() polls, so raising here unwinds it cleanly;
        # calling shutdown() from a signal handler would deadlock (it
        # waits for the serve loop the handler interrupted).
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _exit_on_term)
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # the parent fans out TERM
    if reuse_port:
        # Drop the fork-inherited copy of the parent's reservation and
        # take this worker's own kernel-balanced listening socket.
        parent_sock.close()
        sock = _bind(host, port, reuse_port=True, listen=False)
    else:
        sock = parent_sock
    service, event_log = factory(index)
    server = ServiceHTTPServer(
        (host, port), service, access_log=event_log, sock=sock
    )
    try:
        server.serve_forever()
    except (SystemExit, KeyboardInterrupt):
        pass
    finally:
        try:
            server.server_close()
        except OSError:
            pass
        service.close()
        if event_log is not None:
            event_log.close()
    return 0


def serve_prefork(
    factory: WorkerFactory,
    *,
    host: str,
    port: int,
    workers: int,
    announce: Callable[[str], None] | None = None,
) -> int:
    """Run ``workers`` forked serving processes until terminated.

    ``factory(index)`` builds each worker's service (and optional event
    log) *inside* the child.  ``announce`` receives the bound base URL
    once, before any worker exists — with ``port=0`` that is how the
    caller learns the ephemeral port the whole fleet shares.  Returns
    the exit status: 0 on a clean (signal-driven) shutdown, 1 when a
    worker died on its own.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    reuse_port = reuse_port_supported()
    # The parent's socket is the port reservation: bound for the whole
    # fleet's lifetime (so port 0 stays ours between fork and the
    # workers' own binds), listening only in the inherited-socket
    # fallback.
    parent_sock = _bind(host, port, reuse_port=reuse_port, listen=not reuse_port)
    bound_host, bound_port = parent_sock.getsockname()[:2]
    if announce is not None:
        announce(f"http://{bound_host}:{bound_port}")
    pids: list[int] = []
    for index in range(workers):
        pid = os.fork()
        if pid == 0:  # pragma: no cover - exercised via subprocess tests
            status = 1
            try:
                status = _worker_main(
                    index, parent_sock, bound_host, bound_port,
                    reuse_port, factory,
                )
            finally:
                # Never fall through into the parent's loop (or the
                # caller's stack): the child ends here, unconditionally.
                os._exit(status)
        pids.append(pid)

    shutting_down = False

    def _forward(signum, frame):
        nonlocal shutting_down
        shutting_down = True
        for pid in pids:
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass

    signal.signal(signal.SIGTERM, _forward)
    signal.signal(signal.SIGINT, _forward)
    status = 0
    remaining = set(pids)
    try:
        while remaining:
            try:
                pid, raw = os.wait()
            except ChildProcessError:
                break
            except KeyboardInterrupt:
                _forward(signal.SIGINT, None)
                continue
            remaining.discard(pid)
            code = os.waitstatus_to_exitcode(raw)
            if code not in (0, -signal.SIGTERM):
                status = 1
            if not shutting_down and remaining and code != 0:
                # One worker crashed: take the fleet down rather than
                # limp along with silently reduced capacity.
                status = 1
                _forward(signal.SIGTERM, None)
    finally:
        parent_sock.close()
    return status
