"""Typed scenario requests.

A :class:`ScenarioSpec` is the one request shape every API surface
speaks — the Python :class:`~repro.service.ExpansionService`, the CLI
subcommands and the HTTP endpoints all build one, so "what should the
service compute" is defined exactly once.  A spec names

* a **dataset** (:class:`DatasetRef`: a synthetic seed, a CSV
  directory, or a dataset the hosting process registered by name),
* **config overrides** as the same dotted ``section.field`` paths the
  sweep grid uses — validated eagerly through
  :meth:`repro.config.PipelineConfig.validate_override_path`,
* the **requested outputs** (``run``, ``sweep``, ``rebalance``,
  ``report``) with their parameters (sweep axes, fleet size, report
  title).

Specs are canonically fingerprinted with the same content-addressed
machinery as pipeline stages (:mod:`repro.pipeline.fingerprint`):
parameters that cannot influence the requested outputs — the fleet
size of a spec that never rebalances, say — are excluded, so two
requests for the same computation collapse onto the same fingerprint
and the service deduplicates them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..config import PAPER_CONFIG, PipelineConfig
from ..exceptions import ServiceError
from ..pipeline.fingerprint import fingerprint

#: The outputs a scenario may request, in envelope order.
OUTPUT_RUN = "run"
OUTPUT_SWEEP = "sweep"
OUTPUT_REBALANCE = "rebalance"
OUTPUT_REPORT = "report"
ALL_OUTPUTS = (OUTPUT_RUN, OUTPUT_SWEEP, OUTPUT_REBALANCE, OUTPUT_REPORT)

#: Bump when the spec's semantics change so old fingerprints (and the
#: result envelopes stored under them) stop matching new requests.
SPEC_SCHEMA_VERSION = 1

_DATASET_KINDS = ("synthetic", "csv", "named")


@dataclass(frozen=True)
class DatasetRef:
    """Where a scenario's raw dataset comes from.

    ``synthetic`` generates the calibrated synthetic dataset from
    ``seed``; ``csv`` loads ``locations.csv``/``rentals.csv`` from
    ``path``; ``named`` refers to a dataset the hosting process
    registered on its service (useful for tests and embedded use).
    The service digests the resolved dataset's content, so two refs
    that resolve to identical rows share cache entries and results.
    """

    kind: str = "synthetic"
    seed: int = 7
    path: str | None = None
    name: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in _DATASET_KINDS:
            raise ServiceError(
                f"unknown dataset kind {self.kind!r}; expected one of "
                f"{_DATASET_KINDS}"
            )
        if self.kind == "csv" and not self.path:
            raise ServiceError("csv dataset refs need a path")
        if self.kind == "named" and not self.name:
            raise ServiceError("named dataset refs need a name")

    @classmethod
    def synthetic(cls, seed: int = 7) -> "DatasetRef":
        """A calibrated synthetic dataset from ``seed``."""
        return cls(kind="synthetic", seed=seed)

    @classmethod
    def csv(cls, path: Any) -> "DatasetRef":
        """A CSV dataset directory."""
        return cls(kind="csv", path=str(path))

    @classmethod
    def named(cls, name: str) -> "DatasetRef":
        """A dataset registered on the service by name."""
        return cls(kind="named", name=name)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe envelope (only the fields the kind uses)."""
        payload: dict[str, Any] = {"kind": self.kind}
        if self.kind == "synthetic":
            payload["seed"] = self.seed
        elif self.kind == "csv":
            payload["path"] = self.path
        else:
            payload["name"] = self.name
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DatasetRef":
        """Inverse of :meth:`to_dict` (unknown kinds rejected)."""
        if not isinstance(payload, Mapping):
            raise ServiceError("dataset ref must be an object")
        kind = payload.get("kind", "synthetic")
        return cls(
            kind=kind,
            seed=payload.get("seed", 7),
            path=payload.get("path"),
            name=payload.get("name"),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One validated, fingerprintable request against the service."""

    dataset: DatasetRef = field(default_factory=DatasetRef)
    overrides: tuple[tuple[str, Any], ...] = ()
    outputs: tuple[str, ...] = (OUTPUT_RUN,)
    sweep_axes: tuple[tuple[str, tuple[Any, ...]], ...] = ()
    #: A dataset axis for sweeps: named datasets the whole config grid
    #: is run over, producing one envelope with every (dataset, config)
    #: child individually addressable.  When set, ``outputs`` must be
    #: exactly ``("sweep",)`` and ``dataset`` is ignored — identity
    #: comes from the named datasets' content digests.
    sweep_datasets: tuple[str, ...] = ()
    fleet_size: int = 95
    report_title: str | None = None
    #: Wall-clock budget (seconds) for the job's *execution* — measured
    #: from the moment a worker picks it up, enforced cooperatively at
    #: stage boundaries, journalled as the ``timeout`` terminal state.
    #: Excluded from the fingerprint AND from :meth:`to_dict`: a
    #: deadline bounds how long the service may spend, it never changes
    #: what is computed, so a deadline-bearing request deduplicates
    #: against (and is served by) the same cached envelope — whose
    #: embedded spec must stay byte-identical for every submitter.
    #: Accepted on input (:meth:`from_dict`); journalled as a *job*
    #: field, not a spec field.
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        # Normalise mapping/list inputs into the hashable tuple forms
        # (callers may pass plain dicts; JSON bodies always do).
        object.__setattr__(
            self, "overrides", _normalise_pairs(self.overrides, "overrides")
        )
        object.__setattr__(
            self,
            "sweep_axes",
            tuple(
                (path, tuple(values))
                for path, values in _normalise_pairs(
                    self.sweep_axes, "sweep_axes"
                )
            ),
        )
        object.__setattr__(self, "outputs", tuple(self.outputs))
        object.__setattr__(self, "sweep_datasets", tuple(self.sweep_datasets))
        if not self.outputs:
            raise ServiceError("a scenario must request at least one output")
        for output in self.outputs:
            if output not in ALL_OUTPUTS:
                raise ServiceError(
                    f"unknown output {output!r}; expected a subset of "
                    f"{ALL_OUTPUTS}"
                )
        if len(set(self.outputs)) != len(self.outputs):
            raise ServiceError("outputs must not repeat")
        if self.sweep_axes and OUTPUT_SWEEP not in self.outputs:
            raise ServiceError("sweep_axes given but 'sweep' not requested")
        if self.sweep_datasets:
            from .datasets import check_dataset_name

            if self.outputs != (OUTPUT_SWEEP,):
                raise ServiceError(
                    "sweep_datasets requires outputs to be exactly "
                    "('sweep',) — the dataset axis has no single base "
                    "dataset for other outputs to run over"
                )
            if len(set(self.sweep_datasets)) != len(self.sweep_datasets):
                raise ServiceError("sweep_datasets must not repeat")
            for name in self.sweep_datasets:
                check_dataset_name(name)
        if self.fleet_size <= 0:
            raise ServiceError("fleet_size must be positive")
        if self.deadline_s is not None:
            if not isinstance(self.deadline_s, (int, float)) or isinstance(
                self.deadline_s, bool
            ):
                raise ServiceError("deadline_s must be a number of seconds")
            if self.deadline_s <= 0:
                raise ServiceError("deadline_s must be positive")
        # Unknown override keys and invalid values fail here with the
        # same ConfigError derive raises (reused validation).  Axis
        # points are checked one at a time — linear in values, not in
        # the cartesian grid the sweep will eventually run.
        base = self.config()
        for path, values in self.sweep_axes:
            if not values:
                raise ServiceError(f"sweep axis {path!r} has no values")
            for value in values:
                base.derive({path: value})

    # ------------------------------------------------------------------
    # Derived configuration
    # ------------------------------------------------------------------

    def config(self) -> PipelineConfig:
        """The pipeline configuration this spec's overrides derive."""
        return PAPER_CONFIG.derive(dict(self.overrides))

    def sweep_grid(self) -> list[tuple[dict[str, Any], PipelineConfig]]:
        """The sweep's (overrides, config) grid around :meth:`config`."""
        from ..pipeline import config_grid

        return config_grid(
            self.config(), {path: list(values) for path, values in self.sweep_axes}
        )

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    def fingerprint(
        self,
        dataset_digest: str,
        *,
        sweep_dataset_digests: Sequence[tuple[str, str]] = (),
    ) -> str:
        """Canonical content-addressed identity of this request.

        ``dataset_digest`` is the resolved dataset's content digest
        (:func:`repro.pipeline.fingerprint.dataset_digest`), so the
        identity tracks what the data *is*, not where it came from.
        Output parameters only contribute when their output is
        requested.  A dataset-axis sweep takes its data identity from
        ``sweep_dataset_digests`` — the resolved ``(name, digest)``
        pair per swept dataset — instead of the (unused) base ref.
        """
        if self.sweep_datasets:
            resolved = tuple(tuple(pair) for pair in sweep_dataset_digests)
            if tuple(name for name, _ in resolved) != self.sweep_datasets:
                raise ServiceError(
                    "sweep_dataset_digests must resolve sweep_datasets "
                    "name-for-name, in order"
                )
            data_identity: Any = resolved
        else:
            data_identity = dataset_digest
        parts: list[Any] = [
            "scenario",
            SPEC_SCHEMA_VERSION,
            data_identity,
            tuple(sorted(self.overrides, key=lambda pair: pair[0])),
            tuple(sorted(self.outputs)),
        ]
        if OUTPUT_SWEEP in self.outputs:
            parts.append(
                tuple(sorted(self.sweep_axes, key=lambda pair: pair[0]))
            )
        if OUTPUT_REBALANCE in self.outputs:
            parts.append(("fleet_size", self.fleet_size))
        if OUTPUT_REPORT in self.outputs:
            parts.append(("report_title", self.report_title))
        return fingerprint(*parts)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe envelope (deterministically ordered)."""
        payload: dict[str, Any] = {
            "type": "ScenarioSpec",
            "dataset": self.dataset.to_dict(),
            "overrides": dict(
                sorted(self.overrides, key=lambda pair: pair[0])
            ),
            "outputs": list(self.outputs),
        }
        if OUTPUT_SWEEP in self.outputs:
            payload["sweep_axes"] = {
                path: list(values)
                for path, values in sorted(
                    self.sweep_axes, key=lambda pair: pair[0]
                )
            }
            if self.sweep_datasets:
                payload["sweep_datasets"] = list(self.sweep_datasets)
        if OUTPUT_REBALANCE in self.outputs:
            payload["fleet_size"] = self.fleet_size
        if OUTPUT_REPORT in self.outputs:
            payload["report_title"] = self.report_title
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict`; validates like the constructor.

        The ``type`` tag is optional on input — HTTP bodies and plain
        ``submit({...})`` dicts may omit it — but a *wrong* tag (some
        other envelope passed by mistake) is rejected.
        """
        if not isinstance(payload, Mapping):
            raise ServiceError("a scenario spec must be a JSON object")
        if payload.get("type", "ScenarioSpec") != "ScenarioSpec":
            raise ServiceError(
                f"expected a 'ScenarioSpec' envelope, got {payload['type']!r}"
            )
        sweep_datasets = payload.get("sweep_datasets", ())
        if isinstance(sweep_datasets, str) or not isinstance(
            sweep_datasets, Sequence
        ):
            raise ServiceError("sweep_datasets must be a list of names")
        return cls(
            dataset=DatasetRef.from_dict(payload.get("dataset", {})),
            overrides=payload.get("overrides", ()),
            outputs=tuple(payload.get("outputs", (OUTPUT_RUN,))),
            sweep_axes=payload.get("sweep_axes", ()),
            sweep_datasets=tuple(sweep_datasets),
            fleet_size=payload.get("fleet_size", 95),
            report_title=payload.get("report_title"),
            deadline_s=payload.get("deadline_s"),
        )


def _normalise_pairs(value: Any, what: str) -> tuple[tuple[str, Any], ...]:
    """Coerce a mapping or pair sequence into a tuple of (str, value)."""
    if isinstance(value, Mapping):
        items = list(value.items())
    elif isinstance(value, Sequence) and not isinstance(value, (str, bytes)):
        items = [tuple(item) for item in value]
    else:
        raise ServiceError(f"{what} must be a mapping or a pair sequence")
    pairs = []
    seen = set()
    for item in items:
        if len(item) != 2 or not isinstance(item[0], str):
            raise ServiceError(f"bad {what} entry {item!r}")
        if item[0] in seen:
            raise ServiceError(f"{what} key {item[0]!r} given twice")
        seen.add(item[0])
        pairs.append((item[0], item[1]))
    return tuple(pairs)
