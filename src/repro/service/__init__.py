"""repro.service — the typed scenario/job API every surface shares.

Three skins over one service layer:

* **Python** — build a :class:`ScenarioSpec`, hand it to an
  :class:`ExpansionService`, get a JSON-safe result envelope back::

      from repro.service import DatasetRef, ExpansionService, ScenarioSpec

      service = ExpansionService(cache_dir="cache")
      envelope = service.run(ScenarioSpec(dataset=DatasetRef.synthetic(7)))
      envelope["outputs"]["run"]["headline"]["table4_gbasic"]

* **HTTP** — ``repro serve`` exposes the same service as
  ``POST /v1/runs``, ``POST /v1/sweeps``, ``GET /v1/jobs/<id>``,
  ``GET /v1/results/<fingerprint>`` and ``GET /v1/healthz``.
* **CLI** — ``repro run/sweep/rebalance/report`` are thin clients that
  render the same envelopes (``--format json`` prints them verbatim).

Identical concurrent requests are deduplicated by spec fingerprint;
completed envelopes persist in a :class:`ResultsStore`; all pipeline
work shares one :class:`~repro.pipeline.cache.StageCache`.
"""

from .http import ServiceHTTPServer, make_server
from .jobs import DONE, FAILED, PENDING, RUNNING, Job
from .service import ExpansionService, canonical_envelope
from .spec import (
    ALL_OUTPUTS,
    OUTPUT_REBALANCE,
    OUTPUT_REPORT,
    OUTPUT_RUN,
    OUTPUT_SWEEP,
    DatasetRef,
    ScenarioSpec,
)
from .store import ResultsStore

__all__ = [
    "ALL_OUTPUTS",
    "DONE",
    "DatasetRef",
    "ExpansionService",
    "FAILED",
    "Job",
    "OUTPUT_REBALANCE",
    "OUTPUT_REPORT",
    "OUTPUT_RUN",
    "OUTPUT_SWEEP",
    "PENDING",
    "RUNNING",
    "ResultsStore",
    "ScenarioSpec",
    "ServiceHTTPServer",
    "canonical_envelope",
    "make_server",
]
