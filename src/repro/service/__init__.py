"""repro.service — the typed scenario/job API every surface shares.

Three skins over one service layer:

* **Python** — build a :class:`ScenarioSpec`, hand it to an
  :class:`ExpansionService`, get a JSON-safe result envelope back::

      from repro.service import DatasetRef, ExpansionService, ScenarioSpec

      service = ExpansionService(cache_dir="cache")
      envelope = service.run(ScenarioSpec(dataset=DatasetRef.synthetic(7)))
      envelope["outputs"]["run"]["headline"]["table4_gbasic"]

* **HTTP** — ``repro serve`` exposes the same service over the routes
  in :data:`repro.service.http.ROUTES`: scenario submission
  (``POST /v1/runs``, ``POST /v1/sweeps``), job status and
  cancellation (``GET``/``DELETE /v1/jobs/<id>``), named dataset
  management (``PUT``/``GET``/``DELETE /v1/datasets/<name>``), and
  result retrieval — whole, ``?fields=headline``, paginated
  ``?section=...&page=N``, or NDJSON slice streaming
  (``/v1/results/<fp>/slices``).  See ``docs/API.md``.
* **CLI** — ``repro run/sweep/rebalance/report`` are thin clients that
  render the same envelopes (``--format json`` prints them verbatim);
  ``repro datasets/results/cancel`` speak to a running server.

Identical concurrent requests are deduplicated by spec fingerprint;
completed envelopes persist in a :class:`ResultsStore`; uploaded
datasets live in a content-digested :class:`DatasetStore`; all
pipeline work shares one :class:`~repro.pipeline.cache.StageCache`.
Every one of those stores — plus the :class:`JobStore` journal that
makes jobs survive restarts — is a thin adapter over one namespace of
the pluggable storage subsystem (:mod:`repro.store`), rooted together
under ``ExpansionService(store_dir=...)`` / ``repro serve
--store-dir``.
"""

from .bytescache import BytesLRU, CachedBytes
from .datasets import DatasetStore
from .http import ROUTES, ServiceHTTPServer, make_server
from .jobs import CANCELLED, DONE, FAILED, PENDING, RUNNING, Job, JobStore
from .prefork import serve_prefork
from .service import ExpansionService, canonical_envelope
from .spec import (
    ALL_OUTPUTS,
    OUTPUT_REBALANCE,
    OUTPUT_REPORT,
    OUTPUT_RUN,
    OUTPUT_SWEEP,
    DatasetRef,
    ScenarioSpec,
)
from .store import ResultsStore

__all__ = [
    "ALL_OUTPUTS",
    "BytesLRU",
    "CANCELLED",
    "CachedBytes",
    "DONE",
    "DatasetRef",
    "DatasetStore",
    "ExpansionService",
    "FAILED",
    "Job",
    "JobStore",
    "OUTPUT_REBALANCE",
    "OUTPUT_REPORT",
    "OUTPUT_RUN",
    "OUTPUT_SWEEP",
    "PENDING",
    "ROUTES",
    "RUNNING",
    "ResultsStore",
    "ScenarioSpec",
    "ServiceHTTPServer",
    "canonical_envelope",
    "make_server",
    "serve_prefork",
]
