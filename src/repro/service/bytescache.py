"""`BytesLRU`: the warm-path byte tier of the serving stack.

Stored result envelopes are canonical bytes on disk; serving them used
to mean re-reading (and, for the narrowed views, re-parsing multi-MB
JSON) per request.  A :class:`BytesLRU` keeps the *rendered response
payloads* — the full envelope, the ``?fields=headline`` reduction,
each paginated ``?section=`` page, a dataset's metadata document — as
ready-to-write UTF-8 bytes, keyed by ``(owner, view)``:

* ``owner`` is the cached resource's identity (a result fingerprint, a
  dataset name) — the unit of invalidation: storing or deleting the
  underlying entry drops *every* view rendered from it in one call;
* ``view`` is the representation (``"full"``, ``"headline"``,
  ``("section", path, page, page_size)``, …) — content-addressed
  owners never change bytes, so distinct views can only ever disagree
  by *which reduction* they are, never by freshness.

Each entry also carries the HTTP validators the front-end serves with
it — a strong ``etag`` and a ``last_modified`` stamp — so a warm
conditional GET answers 304 without touching storage or JSON at all.

Eviction is LRU over both a byte budget and an entry count (the full
paper-scale envelope is ~7 MB; a handful of hot fingerprints plus
hundreds of small views fit comfortably in the default 256 MB).  The
``hits``/``misses`` counters back the
``repro_results_bytes_cache_{hits,misses}_total`` metrics — the
"zero JSON parses after warm-up" regression gate reads them.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, NamedTuple

#: Default byte budget for one cache (roughly: a few dozen hot
#: paper-scale envelopes plus their narrowed views).
DEFAULT_MAX_BYTES = 256 << 20

#: Default entry budget (pages of a large section fan out fast).
DEFAULT_MAX_ENTRIES = 4096


class CachedBytes(NamedTuple):
    """One rendered payload plus the validators served with it."""

    payload: bytes
    #: Strong entity tag *value* (unquoted); the HTTP layer quotes it.
    etag: str
    #: POSIX timestamp rendered as the ``Last-Modified`` header.
    last_modified: float


class BytesLRU:
    """A byte-budgeted LRU of rendered response payloads.

    Thread-safe; every operation is O(1) except the eviction sweep,
    which is amortised by the byte budget.  ``max_bytes=0`` disables
    retention entirely (every :meth:`put` is a no-op) without changing
    any caller's control flow.
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_MAX_BYTES,
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ) -> None:
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        if max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self._entries: "OrderedDict[tuple[Hashable, Hashable], CachedBytes]" = (
            OrderedDict()
        )
        self._bytes = 0
        self._mutex = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------

    def get(self, owner: Hashable, view: Hashable) -> CachedBytes | None:
        """The cached payload for ``(owner, view)``, or ``None``."""
        key = (owner, view)
        with self._mutex:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(
        self,
        owner: Hashable,
        view: Hashable,
        payload: bytes,
        *,
        etag: str,
        last_modified: float,
    ) -> CachedBytes:
        """Cache one rendered payload; returns the stored entry.

        An oversized payload (alone over the byte budget) is returned
        but not retained — the caller still serves it, it just is not
        warm next time.
        """
        entry = CachedBytes(bytes(payload), etag, float(last_modified))
        if self.max_bytes == 0 or self.max_entries == 0:
            return entry
        if len(entry.payload) > self.max_bytes:
            return entry
        key = (owner, view)
        with self._mutex:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= len(old.payload)
            self._entries[key] = entry
            self._bytes += len(entry.payload)
            self.stores += 1
            while self._entries and (
                self._bytes > self.max_bytes
                or len(self._entries) > self.max_entries
            ):
                evicted_key, evicted = self._entries.popitem(last=False)
                if evicted_key == key:
                    # Never evict the entry just written; re-insert at
                    # the recent end and stop — everything older is gone.
                    self._entries[key] = evicted
                    break
                self._bytes -= len(evicted.payload)
                self.evictions += 1
        return entry

    def invalidate(self, owner: Hashable) -> int:
        """Drop every view rendered from ``owner``; returns the count.

        Called whenever the underlying store entry changes (a result
        overwrite on schema upgrade, a dataset re-push, a delete), so a
        moved ETag can never be served next to stale bytes.
        """
        with self._mutex:
            doomed = [key for key in self._entries if key[0] == owner]
            for key in doomed:
                self._bytes -= len(self._entries.pop(key).payload)
            self.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> None:
        with self._mutex:
            self._entries.clear()
            self._bytes = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)

    def total_bytes(self) -> int:
        with self._mutex:
            return self._bytes

    def stats(self) -> dict[str, Any]:
        """Live counters (healthz block / metrics scrape source)."""
        with self._mutex:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
