"""`ExpansionService`: the one engine behind every API surface.

The Python API, the CLI and the HTTP front-end all reduce to the same
three calls — build a :class:`~repro.service.spec.ScenarioSpec`,
``submit()`` it, ``wait()`` on the job — so behaviour (caching,
deduplication, result persistence) is defined here exactly once.

Request flow::

    submit(spec)
      └─ resolve dataset ref ──► content digest
           └─ spec.fingerprint(digest)
                ├─ identical job already in flight?  join it (dedup)
                ├─ envelope in the results store?    done, no compute
                └─ else: queue on the bounded worker pool
                     └─ PipelineRunner against the shared StageCache
                          └─ envelope ──► results store

Two clients racing on the same scenario therefore share one pipeline
execution, and a scenario computed by any surface is warm for all of
them — the stage cache dedupes *stage* work across different specs,
the results store and in-flight table dedupe *whole scenarios*.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Mapping

#: Resolved (dataset, digest) pairs kept in memory; a sweep over many
#: seeds must not accumulate full datasets without bound.
DATASET_CACHE_SLOTS = 8

from ..analysis.rebalancing import plan_weekend_rebalancing
from ..data import MobyDataset
from ..exceptions import PipelineCancelledError, ServiceError
from ..perf import StageTimer
from ..pipeline.cache import StageCache
from ..pipeline.fingerprint import dataset_digest
from ..pipeline.runner import PipelineRunner, run_sweep
from ..reporting import sweep_summary
from ..reporting.markdown import render_markdown_report
from ..serialize import ENVELOPE_VERSION, canonical_json
from ..synth import SyntheticMobyGenerator
from .datasets import DEFAULT_MAX_DATASET_BYTES, DatasetStore
from .jobs import Job
from .spec import (
    OUTPUT_REBALANCE,
    OUTPUT_REPORT,
    OUTPUT_RUN,
    OUTPUT_SWEEP,
    ScenarioSpec,
)
from .store import ResultsStore


class ExpansionService:
    """Runs scenario specs as deduplicated jobs over shared caches.

    Parameters
    ----------
    cache:
        A shared :class:`StageCache`; built from ``cache_dir`` /
        ``cache_bytes`` / ``cache_entries`` when omitted.
    results_dir:
        Directory persisting result envelopes by fingerprint (in-memory
        when omitted).
    max_workers:
        Bound on concurrently executing jobs.
    pipeline_jobs:
        Worker budget *inside* one pipeline run (stage/slice fan-out).
    pipeline_executor:
        ``"thread"`` or ``"process"`` — backend for the stage fan-out
        inside each run.  ``"process"`` keeps one slow scenario from
        starving the GIL-bound worker threads; it needs a disk-backed
        cache (``cache_dir``) to share stage values across processes,
        and falls back to a per-run temporary rendezvous otherwise.
    sweep_executor:
        ``"thread"`` or ``"process"`` — backend for sweep fan-out.
    retain_jobs:
        Keep at most this many *terminal* (done/failed/cancelled) jobs
        in the job table, pruned oldest-first; in-flight jobs never
        count against the limit.  ``None`` disables pruning.
    datasets:
        A :class:`DatasetStore` for ``named`` dataset refs; built from
        ``datasets_dir`` and the ``dataset*`` caps when omitted
        (memory-only without a directory).
    """

    def __init__(
        self,
        *,
        cache: StageCache | None = None,
        cache_dir: str | Path | None = None,
        cache_bytes: int | None = None,
        cache_entries: int | None = None,
        results_dir: str | Path | None = None,
        max_workers: int = 2,
        pipeline_jobs: int = 1,
        pipeline_executor: str = "thread",
        sweep_executor: str = "thread",
        retain_jobs: int | None = 1024,
        datasets: DatasetStore | None = None,
        datasets_dir: str | Path | None = None,
        max_dataset_bytes: int | None = DEFAULT_MAX_DATASET_BYTES,
        max_datasets_bytes: int | None = None,
        max_datasets: int | None = None,
    ) -> None:
        if max_workers < 1:
            raise ServiceError("max_workers must be at least 1")
        if pipeline_jobs < 1:
            raise ServiceError("pipeline_jobs must be at least 1")
        if retain_jobs is not None and retain_jobs < 1:
            raise ServiceError("retain_jobs must be positive (or None)")
        self.pipeline_executor = pipeline_executor
        self.sweep_executor = sweep_executor
        self.retain_jobs = retain_jobs
        self.cache = cache if cache is not None else StageCache(
            cache_dir, max_bytes=cache_bytes, max_entries=cache_entries
        )
        self.results = ResultsStore(results_dir)
        self.datasets = datasets if datasets is not None else DatasetStore(
            datasets_dir,
            max_dataset_bytes=max_dataset_bytes,
            max_total_bytes=max_datasets_bytes,
            max_datasets=max_datasets,
        )
        self.pipeline_jobs = pipeline_jobs
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-service"
        )
        self._mutex = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, Job] = {}
        self._datasets: OrderedDict[tuple, tuple[MobyDataset, str]] = (
            OrderedDict()
        )
        self._job_counter = 0
        #: How many times a pipeline actually executed (not deduplicated,
        #: not served from the results store).  The dedup tests and the
        #: ``/v1/healthz`` document read this.
        self.pipeline_executions = 0
        #: Terminal jobs dropped by the retention policy.
        self.jobs_pruned = 0

    # ------------------------------------------------------------------
    # Datasets
    # ------------------------------------------------------------------

    def register_dataset(self, name: str, dataset: MobyDataset) -> dict:
        """Store ``dataset`` under ``name`` for ``named`` refs.

        The metadata document returned is what ``PUT /v1/datasets/<name>``
        responds with (name, content digest, row counts, bytes).
        Overwrites replace content and digest; scenarios already
        resolved against the old content keep their results — the spec
        fingerprint tracks the digest, not the name.
        """
        return self.datasets.put(name, dataset)

    def delete_dataset(self, name: str) -> bool:
        """Drop a named dataset; returns whether it existed."""
        return self.datasets.delete(name)

    def _resolve_dataset(self, spec: ScenarioSpec) -> tuple[MobyDataset, str]:
        """(raw dataset, content digest) for a spec's dataset ref.

        Resolutions are memoised in a small LRU; csv entries are keyed
        by the files' identity (mtime/size) and named entries by the
        store's content digest, so editing a dataset on disk or
        overwriting a name invalidates the memo instead of serving
        stale results until restart.
        """
        ref = spec.dataset
        if ref.kind == "synthetic":
            key: tuple = ("synthetic", ref.seed)
        elif ref.kind == "csv":
            root = Path(ref.path).resolve()
            stamp = []
            for name in ("locations.csv", "rentals.csv"):
                try:
                    stat = (root / name).stat()
                    stamp.append((name, stat.st_mtime_ns, stat.st_size))
                except OSError:
                    stamp.append((name, None, None))
            key = ("csv", str(root), tuple(stamp))
        else:
            # The digest is only the memo key here; the pair actually
            # handed out below is taken atomically from the store, so a
            # racing overwrite costs at most a memo miss — never a
            # digest paired with the wrong rows.
            named_digest = self.datasets.digest(ref.name)
            if named_digest is None:
                raise ServiceError(f"no dataset registered as {ref.name!r}")
            key = ("named", ref.name, named_digest)
        with self._mutex:
            cached = self._datasets.get(key)
            if cached is not None:
                self._datasets.move_to_end(key)
                return cached
        if ref.kind == "synthetic":
            raw = SyntheticMobyGenerator(seed=ref.seed).generate()
            resolved = (raw, dataset_digest(raw))
        elif ref.kind == "csv":
            try:
                raw = MobyDataset.from_csv(ref.path)
            except Exception as error:
                raise ServiceError(
                    f"cannot load csv dataset from {ref.path!r}: {error}"
                ) from error
            resolved = (raw, dataset_digest(raw))
        else:
            # Atomic (rows, digest) — the store digested the rows at
            # put time under the same lock, so this never recomputes
            # and never mixes versions.  Re-key the memo on the digest
            # the pair actually carries.
            resolved = self.datasets.get_with_digest(ref.name)
            if resolved is None:
                raise ServiceError(f"no dataset registered as {ref.name!r}")
            key = ("named", ref.name, resolved[1])
        with self._mutex:
            self._datasets[key] = resolved
            self._datasets.move_to_end(key)
            while len(self._datasets) > DATASET_CACHE_SLOTS:
                self._datasets.popitem(last=False)
        return resolved

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, spec: ScenarioSpec | Mapping[str, Any]) -> Job:
        """Queue a scenario; identical in-flight requests share one job."""
        if isinstance(spec, Mapping):
            spec = ScenarioSpec.from_dict(spec)
        raw, digest = self._resolve_dataset(spec)
        fingerprint = spec.fingerprint(digest)
        with self._mutex:
            inflight = self._inflight.get(fingerprint)
            if inflight is not None:
                inflight.subscribers += 1
                return inflight
            self._job_counter += 1
            job = Job(
                job_id=f"job-{self._job_counter:06d}",
                spec=spec,
                fingerprint=fingerprint,
            )
            self._jobs[job.job_id] = job
            self._inflight[fingerprint] = job
            self._prune_jobs_locked()
        self._pool.submit(self._execute, job, raw, digest)
        return job

    def _prune_jobs_locked(self) -> None:
        """Drop the oldest terminal jobs beyond :attr:`retain_jobs`.

        Caller holds the mutex.  The job *table* is what grows without
        bound on a long-lived service — result envelopes live in the
        results store under their fingerprint, so pruning a job never
        loses a result, only its status document.
        """
        if self.retain_jobs is None:
            return
        # Only terminal jobs count against the limit — a burst of
        # in-flight work must never push finished documents out early.
        terminal = [
            job_id for job_id, job in self._jobs.items() if job.finished
        ]  # insertion = age order
        excess = len(terminal) - self.retain_jobs
        for job_id in terminal[:max(0, excess)]:
            del self._jobs[job_id]
            self.jobs_pruned += 1

    def run(
        self,
        spec: ScenarioSpec | Mapping[str, Any],
        timeout: float | None = None,
    ) -> dict:
        """Submit and wait; returns the result envelope."""
        return self.submit(spec).wait(timeout)

    def job(self, job_id: str) -> Job | None:
        """Look a job up by id."""
        with self._mutex:
            return self._jobs.get(job_id)

    def cancel(self, job_id: str) -> Job | None:
        """Request cooperative cancellation of a job.

        Returns the job (``None`` if unknown).  A queued job is
        cancelled before it starts; a running one stops at its next
        stage boundary, so every stage value already computed stays
        cached and consistent.  A job that finishes first simply stays
        ``done`` — losing the race never discards a result.  Note the
        cancel applies to the *job*, which deduplicated submissions may
        share: every waiter of a cancelled job sees
        :class:`~repro.exceptions.JobCancelledError`.
        """
        job = self.job(job_id)
        if job is not None:
            job.request_cancel()
        return job

    def stats(self) -> dict[str, Any]:
        """Service counters (the ``/v1/healthz`` document)."""
        with self._mutex:
            n_jobs = len(self._jobs)
            n_inflight = len(self._inflight)
        return {
            "status": "ok",
            "jobs": n_jobs,
            "jobs_pruned": self.jobs_pruned,
            "retain_jobs": self.retain_jobs,
            "in_flight": n_inflight,
            "pipeline_executions": self.pipeline_executions,
            "results_stored": len(self.results),
            "datasets": {
                "stored": len(self.datasets),
                "bytes": self.datasets.total_bytes(),
                "evictions": self.datasets.evictions,
            },
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "stores": self.cache.stores,
                "evictions": self.cache.evictions,
            },
        }

    def close(self) -> None:
        """Finish queued jobs and shut the worker pool down."""
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ExpansionService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _execute(self, job: Job, raw: MobyDataset, digest: str) -> None:
        try:
            if job.cancel_event.is_set():
                # Cancelled while queued: never starts, reports cancelled
                # (a stored result is deliberately NOT served — the
                # client asked this job to stop, not for its answer).
                job.mark_cancelled()
                return
            stored_text = self.results.raw(job.fingerprint)
            if stored_text is not None:
                stored = self._current_envelope(stored_text)
                if stored is not None:
                    job.canonical = stored_text
                    job.complete(stored)
                    return
                # Garbled or written by an older envelope schema (e.g.
                # v1 sweeps without child fingerprints): recompute and
                # overwrite, instead of silently serving a stale shape.
            job.mark_running()
            with self._mutex:
                self.pipeline_executions += 1
            timer = StageTimer()
            envelope = self._build_envelope(
                job.spec, raw, digest, timer, cancel=job.cancel_event.is_set
            )
            envelope["fingerprint"] = job.fingerprint
            # Timings are job metadata (they vary run to run), not part
            # of the canonical envelope — envelopes stay byte-identical
            # across surfaces and replays.
            job.timings = timer.report().to_dict()
            job.canonical = self.results.put(job.fingerprint, envelope)
            job.complete(envelope)
        except PipelineCancelledError:
            job.mark_cancelled()
        except Exception as error:
            job.fail(f"{type(error).__name__}: {error}")
        finally:
            with self._mutex:
                self._inflight.pop(job.fingerprint, None)

    @staticmethod
    def _current_envelope(stored_text: str) -> dict | None:
        """Parse a stored envelope; ``None`` unless it is current-schema.

        The envelope version is what makes the results store safe to
        persist across upgrades: a stale-shape envelope (or a truncated
        file) reads as a miss for *new submissions*, which recompute
        and overwrite it.  Direct ``GET /v1/results/<fp>`` still serves
        whatever bytes are stored — fetching by explicit fingerprint
        means "give me exactly that stored result".
        """
        try:
            stored = json.loads(stored_text)
        except ValueError:
            return None
        if not isinstance(stored, dict):
            return None
        if stored.get("envelope_version") != ENVELOPE_VERSION:
            return None
        return stored

    def _build_envelope(
        self,
        spec: ScenarioSpec,
        raw: MobyDataset,
        digest: str,
        timer: "StageTimer | None" = None,
        cancel: "Any | None" = None,
    ) -> dict[str, Any]:
        """Compute every requested output into one envelope dict."""
        config = spec.config()
        outputs: dict[str, Any] = {}
        result = None
        if {OUTPUT_RUN, OUTPUT_REBALANCE, OUTPUT_REPORT} & set(spec.outputs):
            runner = PipelineRunner(
                raw,
                config,
                cache=self.cache,
                jobs=self.pipeline_jobs,
                executor=self.pipeline_executor,
                raw_digest=digest,
                timer=timer,
                cancel=cancel,
            )
            result = runner.run()
        if OUTPUT_RUN in spec.outputs:
            run_output = result.to_dict()
            # Wall-clock timings are job metadata, not canonical result
            # content — drop them so envelopes replay byte-identically.
            run_output.pop("timings", None)
            outputs[OUTPUT_RUN] = run_output
        if OUTPUT_SWEEP in spec.outputs:
            outputs[OUTPUT_SWEEP] = self._sweep_output(
                spec, raw, digest, cancel=cancel
            )
        if OUTPUT_REBALANCE in spec.outputs:
            plan = plan_weekend_rebalancing(
                result.network,
                result.day.station_partition,
                spec.fleet_size,
            )
            outputs[OUTPUT_REBALANCE] = {
                "fleet_size": spec.fleet_size,
                "plan": plan.to_dict(),
            }
        if OUTPUT_REPORT in spec.outputs:
            outputs[OUTPUT_REPORT] = {
                "title": spec.report_title,
                "markdown": render_markdown_report(
                    result, title=spec.report_title
                ),
            }
        return {
            "type": "ResultEnvelope",
            "envelope_version": ENVELOPE_VERSION,
            "spec": spec.to_dict(),
            "dataset_digest": digest,
            "outputs": outputs,
        }

    def _sweep_output(
        self,
        spec: ScenarioSpec,
        raw: MobyDataset,
        digest: str,
        cancel: "Any | None" = None,
    ) -> dict[str, Any]:
        """The sweep block, with every child individually addressable.

        Each grid point is also persisted in the results store as a
        complete single-run envelope under the fingerprint of the
        equivalent run spec (base overrides merged with the grid
        point's).  The sweep block lists those fingerprints, so clients
        can fetch one child's full envelope — paginated or streamed —
        without re-downloading the sweep; and a later ``POST /v1/runs``
        for that exact scenario is served from the store, no compute.
        """
        grid = spec.sweep_grid()
        results = run_sweep(
            raw,
            [config for _, config in grid],
            cache=self.cache,
            jobs=self.pipeline_jobs,
            executor=self.sweep_executor,
            cancel=cancel,
        )
        labels = [
            ", ".join(f"{path}={value}" for path, value in overrides.items())
            or "paper defaults"
            for overrides, _ in grid
        ]
        scenarios = []
        for label, (overrides, _), result in zip(labels, grid, results):
            child_spec = ScenarioSpec(
                dataset=spec.dataset,
                overrides={**dict(spec.overrides), **overrides},
                outputs=(OUTPUT_RUN,),
            )
            child_fingerprint = child_spec.fingerprint(digest)
            child_run = result.to_dict()
            child_run.pop("timings", None)
            self.results.put(
                child_fingerprint,
                {
                    "type": "ResultEnvelope",
                    "envelope_version": ENVELOPE_VERSION,
                    "fingerprint": child_fingerprint,
                    "spec": child_spec.to_dict(),
                    "dataset_digest": digest,
                    "outputs": {OUTPUT_RUN: child_run},
                },
            )
            scenarios.append(
                {
                    "label": label,
                    "overrides": overrides,
                    "fingerprint": child_fingerprint,
                    "result_url": f"/v1/results/{child_fingerprint}",
                    "headline": result.headline(),
                }
            )
        return {
            "axes": {
                path: list(values) for path, values in sorted(spec.sweep_axes)
            },
            "scenarios": scenarios,
            "table": sweep_summary(
                list(zip(labels, results)),
                title=f"SCENARIO SWEEP ({len(results)} configs)",
            ),
        }


def canonical_envelope(envelope: dict) -> str:
    """The canonical text every surface serves for ``envelope``."""
    return canonical_json(envelope)
