"""`ExpansionService`: the one engine behind every API surface.

The Python API, the CLI and the HTTP front-end all reduce to the same
three calls — build a :class:`~repro.service.spec.ScenarioSpec`,
``submit()`` it, ``wait()`` on the job — so behaviour (caching,
deduplication, result persistence) is defined here exactly once.

Request flow::

    submit(spec)
      └─ resolve dataset ref ──► content digest
           └─ spec.fingerprint(digest)
                ├─ identical job already in flight?  join it (dedup)
                ├─ envelope in the results store?    done, no compute
                └─ else: queue on the bounded worker pool
                     └─ PipelineRunner against the shared StageCache
                          └─ envelope ──► results store

Two clients racing on the same scenario therefore share one pipeline
execution, and a scenario computed by any surface is warm for all of
them — the stage cache dedupes *stage* work across different specs,
the results store and in-flight table dedupe *whole scenarios*.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Mapping

#: Resolved (dataset, digest) pairs kept in memory; a sweep over many
#: seeds must not accumulate full datasets without bound.
DATASET_CACHE_SLOTS = 8

from ..analysis.rebalancing import plan_weekend_rebalancing
from ..data import MobyDataset
from ..exceptions import ServiceError
from ..perf import StageTimer
from ..pipeline.cache import StageCache
from ..pipeline.fingerprint import dataset_digest
from ..pipeline.runner import PipelineRunner, run_sweep
from ..reporting import sweep_summary
from ..reporting.markdown import render_markdown_report
from ..serialize import ENVELOPE_VERSION, canonical_json
from ..synth import SyntheticMobyGenerator
from .jobs import Job
from .spec import (
    OUTPUT_REBALANCE,
    OUTPUT_REPORT,
    OUTPUT_RUN,
    OUTPUT_SWEEP,
    ScenarioSpec,
)
from .store import ResultsStore


class ExpansionService:
    """Runs scenario specs as deduplicated jobs over shared caches.

    Parameters
    ----------
    cache:
        A shared :class:`StageCache`; built from ``cache_dir`` /
        ``cache_bytes`` / ``cache_entries`` when omitted.
    results_dir:
        Directory persisting result envelopes by fingerprint (in-memory
        when omitted).
    max_workers:
        Bound on concurrently executing jobs.
    pipeline_jobs:
        Worker budget *inside* one pipeline run (stage/slice fan-out).
    pipeline_executor:
        ``"thread"`` or ``"process"`` — backend for the stage fan-out
        inside each run.  ``"process"`` keeps one slow scenario from
        starving the GIL-bound worker threads; it needs a disk-backed
        cache (``cache_dir``) to share stage values across processes,
        and falls back to a per-run temporary rendezvous otherwise.
    sweep_executor:
        ``"thread"`` or ``"process"`` — backend for sweep fan-out.
    retain_jobs:
        Keep at most this many *terminal* (done/failed) jobs in the
        job table, pruned oldest-first; in-flight jobs never count
        against the limit.  ``None`` disables pruning.
    """

    def __init__(
        self,
        *,
        cache: StageCache | None = None,
        cache_dir: str | Path | None = None,
        cache_bytes: int | None = None,
        cache_entries: int | None = None,
        results_dir: str | Path | None = None,
        max_workers: int = 2,
        pipeline_jobs: int = 1,
        pipeline_executor: str = "thread",
        sweep_executor: str = "thread",
        retain_jobs: int | None = 1024,
    ) -> None:
        if max_workers < 1:
            raise ServiceError("max_workers must be at least 1")
        if pipeline_jobs < 1:
            raise ServiceError("pipeline_jobs must be at least 1")
        if retain_jobs is not None and retain_jobs < 1:
            raise ServiceError("retain_jobs must be positive (or None)")
        self.pipeline_executor = pipeline_executor
        self.sweep_executor = sweep_executor
        self.retain_jobs = retain_jobs
        self.cache = cache if cache is not None else StageCache(
            cache_dir, max_bytes=cache_bytes, max_entries=cache_entries
        )
        self.results = ResultsStore(results_dir)
        self.pipeline_jobs = pipeline_jobs
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-service"
        )
        self._mutex = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, Job] = {}
        self._named_datasets: dict[str, MobyDataset] = {}
        self._datasets: OrderedDict[tuple, tuple[MobyDataset, str]] = (
            OrderedDict()
        )
        self._job_counter = 0
        #: How many times a pipeline actually executed (not deduplicated,
        #: not served from the results store).  The dedup tests and the
        #: ``/v1/healthz`` document read this.
        self.pipeline_executions = 0
        #: Terminal jobs dropped by the retention policy.
        self.jobs_pruned = 0

    # ------------------------------------------------------------------
    # Datasets
    # ------------------------------------------------------------------

    def register_dataset(self, name: str, dataset: MobyDataset) -> None:
        """Expose an in-process dataset to ``named`` refs."""
        with self._mutex:
            self._named_datasets[name] = dataset
            self._datasets.pop(("named", name), None)

    def _resolve_dataset(self, spec: ScenarioSpec) -> tuple[MobyDataset, str]:
        """(raw dataset, content digest) for a spec's dataset ref.

        Resolutions are memoised in a small LRU; csv entries are keyed
        by the files' identity (mtime/size), so editing a dataset on
        disk invalidates the cached digest instead of serving stale
        results until restart.
        """
        ref = spec.dataset
        if ref.kind == "synthetic":
            key: tuple = ("synthetic", ref.seed)
        elif ref.kind == "csv":
            root = Path(ref.path).resolve()
            stamp = []
            for name in ("locations.csv", "rentals.csv"):
                try:
                    stat = (root / name).stat()
                    stamp.append((name, stat.st_mtime_ns, stat.st_size))
                except OSError:
                    stamp.append((name, None, None))
            key = ("csv", str(root), tuple(stamp))
        else:
            key = ("named", ref.name)
        with self._mutex:
            cached = self._datasets.get(key)
            if cached is not None:
                self._datasets.move_to_end(key)
                return cached
        if ref.kind == "synthetic":
            raw = SyntheticMobyGenerator(seed=ref.seed).generate()
        elif ref.kind == "csv":
            try:
                raw = MobyDataset.from_csv(ref.path)
            except Exception as error:
                raise ServiceError(
                    f"cannot load csv dataset from {ref.path!r}: {error}"
                ) from error
        else:
            with self._mutex:
                raw = self._named_datasets.get(ref.name)
            if raw is None:
                raise ServiceError(f"no dataset registered as {ref.name!r}")
        resolved = (raw, dataset_digest(raw))
        with self._mutex:
            self._datasets[key] = resolved
            self._datasets.move_to_end(key)
            while len(self._datasets) > DATASET_CACHE_SLOTS:
                self._datasets.popitem(last=False)
        return resolved

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, spec: ScenarioSpec | Mapping[str, Any]) -> Job:
        """Queue a scenario; identical in-flight requests share one job."""
        if isinstance(spec, Mapping):
            spec = ScenarioSpec.from_dict(spec)
        raw, digest = self._resolve_dataset(spec)
        fingerprint = spec.fingerprint(digest)
        with self._mutex:
            inflight = self._inflight.get(fingerprint)
            if inflight is not None:
                inflight.subscribers += 1
                return inflight
            self._job_counter += 1
            job = Job(
                job_id=f"job-{self._job_counter:06d}",
                spec=spec,
                fingerprint=fingerprint,
            )
            self._jobs[job.job_id] = job
            self._inflight[fingerprint] = job
            self._prune_jobs_locked()
        self._pool.submit(self._execute, job, raw, digest)
        return job

    def _prune_jobs_locked(self) -> None:
        """Drop the oldest terminal jobs beyond :attr:`retain_jobs`.

        Caller holds the mutex.  The job *table* is what grows without
        bound on a long-lived service — result envelopes live in the
        results store under their fingerprint, so pruning a job never
        loses a result, only its status document.
        """
        if self.retain_jobs is None:
            return
        # Only terminal jobs count against the limit — a burst of
        # in-flight work must never push finished documents out early.
        terminal = [
            job_id for job_id, job in self._jobs.items() if job.finished
        ]  # insertion = age order
        excess = len(terminal) - self.retain_jobs
        for job_id in terminal[:max(0, excess)]:
            del self._jobs[job_id]
            self.jobs_pruned += 1

    def run(
        self,
        spec: ScenarioSpec | Mapping[str, Any],
        timeout: float | None = None,
    ) -> dict:
        """Submit and wait; returns the result envelope."""
        return self.submit(spec).wait(timeout)

    def job(self, job_id: str) -> Job | None:
        """Look a job up by id."""
        with self._mutex:
            return self._jobs.get(job_id)

    def stats(self) -> dict[str, Any]:
        """Service counters (the ``/v1/healthz`` document)."""
        with self._mutex:
            n_jobs = len(self._jobs)
            n_inflight = len(self._inflight)
        return {
            "status": "ok",
            "jobs": n_jobs,
            "jobs_pruned": self.jobs_pruned,
            "retain_jobs": self.retain_jobs,
            "in_flight": n_inflight,
            "pipeline_executions": self.pipeline_executions,
            "results_stored": len(self.results),
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "stores": self.cache.stores,
                "evictions": self.cache.evictions,
            },
        }

    def close(self) -> None:
        """Finish queued jobs and shut the worker pool down."""
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ExpansionService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _execute(self, job: Job, raw: MobyDataset, digest: str) -> None:
        try:
            stored_text = self.results.raw(job.fingerprint)
            if stored_text is not None:
                job.canonical = stored_text
                job.complete(json.loads(stored_text))
                return
            job.mark_running()
            with self._mutex:
                self.pipeline_executions += 1
            timer = StageTimer()
            envelope = self._build_envelope(job.spec, raw, digest, timer)
            envelope["fingerprint"] = job.fingerprint
            # Timings are job metadata (they vary run to run), not part
            # of the canonical envelope — envelopes stay byte-identical
            # across surfaces and replays.
            job.timings = timer.report().to_dict()
            job.canonical = self.results.put(job.fingerprint, envelope)
            job.complete(envelope)
        except Exception as error:
            job.fail(f"{type(error).__name__}: {error}")
        finally:
            with self._mutex:
                self._inflight.pop(job.fingerprint, None)

    def _build_envelope(
        self,
        spec: ScenarioSpec,
        raw: MobyDataset,
        digest: str,
        timer: "StageTimer | None" = None,
    ) -> dict[str, Any]:
        """Compute every requested output into one envelope dict."""
        config = spec.config()
        outputs: dict[str, Any] = {}
        result = None
        if {OUTPUT_RUN, OUTPUT_REBALANCE, OUTPUT_REPORT} & set(spec.outputs):
            runner = PipelineRunner(
                raw,
                config,
                cache=self.cache,
                jobs=self.pipeline_jobs,
                executor=self.pipeline_executor,
                raw_digest=digest,
                timer=timer,
            )
            result = runner.run()
        if OUTPUT_RUN in spec.outputs:
            run_output = result.to_dict()
            # Wall-clock timings are job metadata, not canonical result
            # content — drop them so envelopes replay byte-identically.
            run_output.pop("timings", None)
            outputs[OUTPUT_RUN] = run_output
        if OUTPUT_SWEEP in spec.outputs:
            outputs[OUTPUT_SWEEP] = self._sweep_output(spec, raw, digest)
        if OUTPUT_REBALANCE in spec.outputs:
            plan = plan_weekend_rebalancing(
                result.network,
                result.day.station_partition,
                spec.fleet_size,
            )
            outputs[OUTPUT_REBALANCE] = {
                "fleet_size": spec.fleet_size,
                "plan": plan.to_dict(),
            }
        if OUTPUT_REPORT in spec.outputs:
            outputs[OUTPUT_REPORT] = {
                "title": spec.report_title,
                "markdown": render_markdown_report(
                    result, title=spec.report_title
                ),
            }
        return {
            "type": "ResultEnvelope",
            "envelope_version": ENVELOPE_VERSION,
            "spec": spec.to_dict(),
            "dataset_digest": digest,
            "outputs": outputs,
        }

    def _sweep_output(
        self, spec: ScenarioSpec, raw: MobyDataset, digest: str
    ) -> dict[str, Any]:
        grid = spec.sweep_grid()
        results = run_sweep(
            raw,
            [config for _, config in grid],
            cache=self.cache,
            jobs=self.pipeline_jobs,
            executor=self.sweep_executor,
        )
        labels = [
            ", ".join(f"{path}={value}" for path, value in overrides.items())
            or "paper defaults"
            for overrides, _ in grid
        ]
        return {
            "axes": {
                path: list(values) for path, values in sorted(spec.sweep_axes)
            },
            "scenarios": [
                {
                    "label": label,
                    "overrides": overrides,
                    "headline": result.headline(),
                }
                for label, (overrides, _), result in zip(labels, grid, results)
            ],
            "table": sweep_summary(
                list(zip(labels, results)),
                title=f"SCENARIO SWEEP ({len(results)} configs)",
            ),
        }


def canonical_envelope(envelope: dict) -> str:
    """The canonical text every surface serves for ``envelope``."""
    return canonical_json(envelope)
