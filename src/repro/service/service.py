"""`ExpansionService`: the one engine behind every API surface.

The Python API, the CLI and the HTTP front-end all reduce to the same
three calls — build a :class:`~repro.service.spec.ScenarioSpec`,
``submit()`` it, ``wait()`` on the job — so behaviour (caching,
deduplication, result persistence) is defined here exactly once.

Request flow::

    submit(spec)
      └─ resolve dataset ref ──► content digest
           └─ spec.fingerprint(digest)
                ├─ identical job already in flight?  join it (dedup)
                ├─ envelope in the results store?    done, no compute
                └─ else: queue on the bounded worker pool
                     └─ PipelineRunner against the shared StageCache
                          └─ envelope ──► results store

Two clients racing on the same scenario therefore share one pipeline
execution, and a scenario computed by any surface is warm for all of
them — the stage cache dedupes *stage* work across different specs,
the results store and in-flight table dedupe *whole scenarios*.

Storage is one pluggable subsystem (:mod:`repro.store`).  Constructed
with ``store_dir``/``store_backend`` the service roots its stage
cache, results store, dataset store *and job journal* in namespaces of
a single :class:`~repro.store.Store` — stop the process, start a new
one over the same directory, and prior jobs are listed, their results
served, and the jobs that were still queued (or interrupted mid-run)
are re-queued and resume against the warm stage cache.  The legacy
per-store parameters (``cache_dir``/``results_dir``/``datasets_dir``)
remain as deprecated aliases addressing the same layouts directly.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Mapping

#: Resolved (dataset, digest) pairs kept in memory; a sweep over many
#: seeds must not accumulate full datasets without bound.
DATASET_CACHE_SLOTS = 8

from ..analysis.rebalancing import plan_weekend_rebalancing
from ..data import MobyDataset
from ..exceptions import (
    PipelineCancelledError,
    ServiceError,
    ServiceOverloadedError,
)
from ..obs import (
    NULL_REGISTRY,
    JsonEventLog,
    MetricsRegistry,
    ServiceMetrics,
    new_trace_id,
)
from ..perf import StageTimer
from ..pipeline.cache import StageCache, stage_namespace
from ..resilience import CircuitBreaker, Watchdog
from ..pipeline.fingerprint import dataset_digest
from ..pipeline.runner import PipelineRunner, run_sweep
from ..reporting import sweep_summary
from ..reporting.markdown import render_markdown_report
from ..serialize import ENVELOPE_VERSION, canonical_json
from ..store import ObjectLRU, Store
from ..synth import SyntheticMobyGenerator
from .datasets import (
    DEFAULT_MAX_DATASET_BYTES,
    DatasetStore,
    datasets_namespace,
)
from .jobs import PENDING, RUNNING, TIMEOUT, Job, JobStore, jobs_namespace
from .spec import (
    OUTPUT_REBALANCE,
    OUTPUT_REPORT,
    OUTPUT_RUN,
    OUTPUT_SWEEP,
    DatasetRef,
    ScenarioSpec,
)
from .store import ResultsStore, results_namespace


class ExpansionService:
    """Runs scenario specs as deduplicated jobs over shared caches.

    Parameters
    ----------
    store / store_dir / store_backend:
        The shared storage subsystem.  ``store_dir`` roots every
        namespace (stage cache, results, datasets, job journal) in one
        :class:`~repro.store.Store` tree; ``store_backend`` picks the
        layout (``dir``, ``sharded``, or ``memory``).  With a job
        journal present the service restores prior jobs on
        construction and re-queues the ones a previous process left
        pending or running.
    cache:
        A shared :class:`StageCache`; built from ``cache_dir`` /
        ``cache_bytes`` / ``cache_entries`` (deprecated aliases) or
        the store's ``stage`` namespace when omitted.
    results_dir:
        Deprecated alias: directory persisting result envelopes by
        fingerprint directly (the store's ``results`` namespace, or
        memory, when omitted).
    max_workers:
        Bound on concurrently executing jobs.
    pipeline_jobs:
        Worker budget *inside* one pipeline run (stage/slice fan-out).
    pipeline_executor:
        ``"thread"`` or ``"process"`` — backend for the stage fan-out
        inside each run.  ``"process"`` keeps one slow scenario from
        starving the GIL-bound worker threads; it needs a disk-backed
        cache (``cache_dir``) to share stage values across processes,
        and falls back to a per-run temporary rendezvous otherwise.
    sweep_executor:
        ``"thread"`` or ``"process"`` — backend for sweep fan-out.
    retain_jobs:
        Keep at most this many *terminal* (done/failed/cancelled) jobs
        in the job table, pruned oldest-first; in-flight jobs never
        count against the limit.  ``None`` disables pruning.
    datasets:
        A :class:`DatasetStore` for ``named`` dataset refs; built from
        ``datasets_dir`` (deprecated alias) or the store's
        ``datasets`` namespace and the ``dataset*`` caps when omitted
        (memory-only without either).
    metrics:
        The observability registry: ``True`` (default) builds a fresh
        :class:`~repro.obs.MetricsRegistry`, ``False`` installs the
        no-op null registry, or pass a registry to share one across
        services.  Exposed as :attr:`registry` (what ``GET
        /v1/metrics`` renders); the instrument set is :attr:`obs`.
    healthz_ttl:
        Occupancy-scan cache TTL, in seconds, applied to every store
        namespace the service reports on (``/v1/healthz`` and the
        scrape-time store metrics read the same cached scan).  ``0``
        disables the cache; ``None`` keeps the namespace default.
    event_log:
        A :class:`~repro.obs.JsonEventLog` receiving one structured
        line per job lifecycle transition (``repro serve
        --access-log`` adds per-request lines through the same log).
    max_queue:
        Admission bound: at most this many jobs may be admitted but
        not yet finished (queued + running).  Past it, :meth:`submit`
        raises :class:`~repro.exceptions.ServiceOverloadedError` (the
        HTTP front-end turns that into 429 + Retry-After) instead of
        queueing without bound.  ``None`` (default) disables shedding.
        Joining an in-flight identical job never counts — dedup adds
        no load.
    breaker:
        The :class:`~repro.resilience.CircuitBreaker` observing result
        and journal writes; built with defaults when omitted.  While
        open the HTTP front-end serves read-only (mutating requests
        get 503 + Retry-After); state is in :meth:`stats` and the
        metrics scrape.
    watchdog_stale_s:
        Fail a *running* job whose stage-boundary heartbeat is older
        than this many seconds (the ``timeout`` terminal state), so a
        worker wedged inside a stage doesn't leak its pool slot.
        ``None`` (default) disables the watchdog — legitimate paper
        runs may spend minutes inside one stage.
    watchdog_interval_s:
        How often the watchdog thread scans the job table.
    """

    def __init__(
        self,
        *,
        store: Store | None = None,
        store_dir: str | Path | None = None,
        store_backend: str | None = None,
        cache: StageCache | None = None,
        cache_dir: str | Path | None = None,
        cache_bytes: int | None = None,
        cache_entries: int | None = None,
        results_dir: str | Path | None = None,
        max_workers: int = 2,
        pipeline_jobs: int = 1,
        pipeline_executor: str = "thread",
        sweep_executor: str = "thread",
        retain_jobs: int | None = 1024,
        datasets: DatasetStore | None = None,
        datasets_dir: str | Path | None = None,
        max_dataset_bytes: int | None = DEFAULT_MAX_DATASET_BYTES,
        max_datasets_bytes: int | None = None,
        max_datasets: int | None = None,
        resume_jobs: bool = True,
        metrics: MetricsRegistry | bool = True,
        healthz_ttl: float | None = None,
        event_log: JsonEventLog | None = None,
        max_queue: int | None = None,
        breaker: CircuitBreaker | None = None,
        watchdog_stale_s: float | None = None,
        watchdog_interval_s: float = 1.0,
        worker: int = 0,
    ) -> None:
        if max_workers < 1:
            raise ServiceError("max_workers must be at least 1")
        if pipeline_jobs < 1:
            raise ServiceError("pipeline_jobs must be at least 1")
        if retain_jobs is not None and retain_jobs < 1:
            raise ServiceError("retain_jobs must be positive (or None)")
        if healthz_ttl is not None and healthz_ttl < 0:
            raise ServiceError("healthz_ttl must be non-negative (or None)")
        if max_queue is not None and max_queue < 1:
            raise ServiceError("max_queue must be positive (or None)")
        if watchdog_stale_s is not None and watchdog_stale_s <= 0:
            raise ServiceError("watchdog_stale_s must be positive (or None)")
        if isinstance(metrics, MetricsRegistry):
            self.registry = metrics
        else:
            self.registry = MetricsRegistry() if metrics else NULL_REGISTRY
        #: Pre-fork worker index (0 for a single-process service); a
        #: ``worker`` label on healthz and metrics tells responses from
        #: the processes behind one ``SO_REUSEPORT`` port apart.
        self.worker = worker
        self.obs = ServiceMetrics(self.registry)
        self.obs.bind_worker(worker)
        self.event_log = event_log
        self.healthz_ttl = healthz_ttl
        self.pipeline_executor = pipeline_executor
        self.sweep_executor = sweep_executor
        self.retain_jobs = retain_jobs
        if store is None and (store_dir is not None or store_backend is not None):
            store = Store(store_dir, store_backend)
        self.store = store
        # Per component: an explicit object wins, then the deprecated
        # per-store directory alias, then the shared store's namespace,
        # then memory.  Aliases address the exact same on-disk layouts
        # the components wrote before storage was unified, so existing
        # directories keep working either way.
        if cache is not None:
            self.cache = cache
        elif cache_dir is not None or store is None or store.backend_kind == "memory":
            # A memory "durable" tier would just duplicate every stage
            # value as an unbounded in-RAM pickle next to the bounded
            # ObjectLRU — no durability bought; skip it entirely.
            self.cache = StageCache(
                cache_dir, max_bytes=cache_bytes, max_entries=cache_entries
            )
        else:
            self.cache = StageCache(
                namespace=stage_namespace(
                    store.backend("stage"),
                    max_bytes=cache_bytes,
                    max_entries=cache_entries,
                )
            )
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        if results_dir is not None or store is None:
            self.results = ResultsStore(results_dir, breaker=self.breaker)
        else:
            self.results = ResultsStore(
                namespace=results_namespace(store.backend("results")),
                breaker=self.breaker,
            )
        if datasets is not None:
            self.datasets = datasets
        elif datasets_dir is not None or store is None:
            self.datasets = DatasetStore(
                datasets_dir,
                max_dataset_bytes=max_dataset_bytes,
                max_total_bytes=max_datasets_bytes,
                max_datasets=max_datasets,
            )
        else:
            self.datasets = DatasetStore(
                namespace=datasets_namespace(
                    store.backend("datasets"),
                    max_dataset_bytes=max_dataset_bytes,
                    max_total_bytes=max_datasets_bytes,
                    max_datasets=max_datasets,
                )
            )
        self.jobstore = (
            JobStore(jobs_namespace(store.backend("jobs")), breaker=self.breaker)
            if store is not None
            else None
        )
        self.pipeline_jobs = pipeline_jobs
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-service"
        )
        self._mutex = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, Job] = {}
        self._datasets: ObjectLRU = ObjectLRU(DATASET_CACHE_SLOTS)
        self._job_counter = 0
        #: How many times a pipeline actually executed (not deduplicated,
        #: not served from the results store).  The dedup tests and the
        #: ``/v1/healthz`` document read this.
        self.pipeline_executions = 0
        #: How many of those executions ran in incremental mode (merged
        #: a parent lineage delta instead of recomputing from scratch).
        self.incremental_runs = 0
        #: Terminal jobs dropped by the retention policy.
        self.jobs_pruned = 0
        #: Jobs adopted from a previous process's journal, and how many
        #: of them were re-queued (pending/running at shutdown).
        self.jobs_restored = 0
        self.jobs_requeued = 0
        #: Submissions refused because the admission queue was full.
        self.jobs_shed = 0
        #: Running jobs the watchdog timed out on a stale heartbeat.
        self.watchdog_failures = 0
        self.max_queue = max_queue
        #: Jobs admitted to the pool and not yet finished (the number
        #: the admission bound compares against).
        self._pending = 0
        # The observability plane reads the same live objects healthz
        # does: namespaces at scrape time (their TTL-cached occupancy
        # scans), the job table under the mutex.
        namespaces: dict[str, Any] = {
            "results": self.results.namespace,
            "datasets": self.datasets.namespace,
        }
        if self.cache.namespace is not None:
            namespaces["stage"] = self.cache.namespace
        if self.jobstore is not None:
            namespaces["jobs"] = self.jobstore.namespace
        if healthz_ttl is not None:
            for namespace in namespaces.values():
                namespace.occupancy_ttl_s = float(healthz_ttl)
        self.obs.bind_namespaces(namespaces)
        self.obs.bind_job_table(self._jobs_by_state)
        self.obs.bind_breaker(self.breaker.snapshot)
        self.obs.bind_bytes_cache(self.results.bytes_cache.stats)
        self.obs.bind_ingestion(self.datasets.ingestion_stats)
        self.watchdog_stale_s = watchdog_stale_s
        self.watchdog: Watchdog | None = None
        if watchdog_stale_s is not None:
            self.watchdog = Watchdog(
                self._watchdog_scan, interval_s=watchdog_interval_s
            ).start()
        if self.jobstore is not None:
            self._restore_jobs(resume=resume_jobs)

    # ------------------------------------------------------------------
    # Datasets
    # ------------------------------------------------------------------

    def register_dataset(self, name: str, dataset: MobyDataset) -> dict:
        """Store ``dataset`` under ``name`` for ``named`` refs.

        The metadata document returned is what ``PUT /v1/datasets/<name>``
        responds with (name, content digest, row counts, bytes).
        Overwrites replace content and digest; scenarios already
        resolved against the old content keep their results — the spec
        fingerprint tracks the digest, not the name.
        """
        return self.datasets.put(name, dataset)

    def append_dataset(self, name: str, rentals: list) -> dict | None:
        """Append rental records onto a stored dataset (``PATCH``).

        Returns the updated metadata document (new chain digest, counts,
        append lineage) or ``None`` when no dataset is stored under
        ``name``.  The store rolls the content digest forward in O(delta)
        and re-chains only the temporal slices the delta touches, so a
        resubmitted scenario recomputes just those slices.  Cached
        byte-views and memoised resolutions keyed by the old digest miss
        naturally — the digest moved.
        """
        return self.datasets.append(name, rentals)

    def delete_dataset(self, name: str) -> bool:
        """Drop a named dataset; returns whether it existed."""
        return self.datasets.delete(name)

    def _resolve_dataset(self, spec: ScenarioSpec) -> tuple[MobyDataset, str]:
        """(raw dataset, content digest) for a spec's dataset ref."""
        return self._resolve_ref(spec.dataset)

    def _resolve_ref(self, ref: DatasetRef) -> tuple[MobyDataset, str]:
        """(raw dataset, content digest) for one dataset ref.

        Resolutions are memoised in a small LRU; csv entries are keyed
        by the files' identity (mtime/size) and named entries by the
        store's content digest, so editing a dataset on disk or
        overwriting a name invalidates the memo instead of serving
        stale results until restart.
        """
        if ref.kind == "synthetic":
            key: tuple = ("synthetic", ref.seed)
        elif ref.kind == "csv":
            root = Path(ref.path).resolve()
            stamp = []
            for name in ("locations.csv", "rentals.csv"):
                try:
                    stat = (root / name).stat()
                    stamp.append((name, stat.st_mtime_ns, stat.st_size))
                except OSError:
                    stamp.append((name, None, None))
            key = ("csv", str(root), tuple(stamp))
        else:
            # The digest is only the memo key here; the pair actually
            # handed out below is taken atomically from the store, so a
            # racing overwrite costs at most a memo miss — never a
            # digest paired with the wrong rows.
            named_digest = self.datasets.digest(ref.name)
            if named_digest is None:
                raise ServiceError(f"no dataset registered as {ref.name!r}")
            key = ("named", ref.name, named_digest)
        cached = self._datasets.get(key)
        if cached is not None:
            return cached
        if ref.kind == "synthetic":
            raw = SyntheticMobyGenerator(seed=ref.seed).generate()
            resolved = (raw, dataset_digest(raw))
        elif ref.kind == "csv":
            try:
                raw = MobyDataset.from_csv(ref.path)
            except Exception as error:
                raise ServiceError(
                    f"cannot load csv dataset from {ref.path!r}: {error}"
                ) from error
            resolved = (raw, dataset_digest(raw))
        else:
            # Atomic (rows, digest) — the store digested the rows at
            # put time under the same lock, so this never recomputes
            # and never mixes versions.  Re-key the memo on the digest
            # the pair actually carries.
            resolved = self.datasets.get_with_digest(ref.name)
            if resolved is None:
                raise ServiceError(f"no dataset registered as {ref.name!r}")
            key = ("named", ref.name, resolved[1])
        self._datasets.put(key, resolved)
        return resolved

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self,
        spec: ScenarioSpec | Mapping[str, Any],
        trace_id: str | None = None,
    ) -> Job:
        """Queue a scenario; identical in-flight requests share one job.

        ``trace_id`` (minted when omitted) is journalled with the job
        and rides every observability signal the job emits; a
        submission that joins an in-flight job keeps that job's
        original trace id — one execution, one trace.
        """
        if isinstance(spec, Mapping):
            spec = ScenarioSpec.from_dict(spec)
        raw, digest, resolved, fingerprint = self._resolve_spec(spec)
        with self._mutex:
            inflight = self._inflight.get(fingerprint)
            if inflight is not None:
                inflight.subscribers += 1
                self.obs.dedup_hits.inc()
                return inflight
            self._check_admission_locked()
        job_id = self._claim_job_id()
        with self._mutex:
            inflight = self._inflight.get(fingerprint)
            if inflight is not None:
                # Lost the race to an identical submission while the id
                # was being claimed: join it (the claimed id is a gap).
                inflight.subscribers += 1
                self.obs.dedup_hits.inc()
                return inflight
            self._check_admission_locked()
            job = Job(
                job_id=job_id,
                spec=spec,
                fingerprint=fingerprint,
                trace_id=trace_id or new_trace_id(),
            )
            self._jobs[job.job_id] = job
            self._inflight[fingerprint] = job
            self._pending += 1
            pruned = self._prune_jobs_locked()
        # Journal I/O happens outside the mutex: unlinking pruned
        # documents (or a slow disk) must not stall concurrent
        # submissions and status lookups.
        if self.jobstore is not None:
            for job_id in pruned:
                self.jobstore.delete(job_id)
        self._journal(job)
        self._pool.submit(self._execute, job, raw, digest, resolved)
        return job

    def _check_admission_locked(self) -> None:
        """Shed the submission when the admission queue is full.

        Caller holds the mutex.  Dedup joins never reach here — an
        identical in-flight job absorbs the submission without adding
        load — so only genuinely new work is bounded.
        """
        if self.max_queue is None or self._pending < self.max_queue:
            return
        self.jobs_shed += 1
        self.obs.jobs_shed.inc()
        raise ServiceOverloadedError(
            f"admission queue is full ({self._pending} jobs admitted, "
            f"bound {self.max_queue}); retry shortly",
            retry_after_s=1.0,
        )

    def _claim_job_id(self) -> str:
        """Allocate the next unused job id.

        The counter moves under the mutex, but the journal probe — one
        backend stat per candidate, needed because another process on
        the same store (a one-shot CLI embedder next to a server) may
        have journalled ids this counter never saw — runs *outside* it,
        so a slow disk cannot stall concurrent status lookups.
        Overwriting a foreign document would silently erase history.
        """
        while True:
            with self._mutex:
                self._job_counter += 1
                candidate = f"job-{self._job_counter:06d}"
            if self.jobstore is None or candidate not in self.jobstore.namespace:
                return candidate

    def _resolve_spec(
        self, spec: ScenarioSpec
    ) -> tuple[MobyDataset, str, list | None, str]:
        """Resolve a spec's data and identity: (raw, digest, sweep, fp).

        For a dataset-axis sweep every named dataset is resolved up
        front — the fingerprint must track all of their content
        digests — and the resolved ``(name, raw, digest)`` triples ride
        along to execution so the envelope is built from exactly the
        content that was fingerprinted.
        """
        if spec.sweep_datasets:
            resolved = [
                (name, *self._resolve_ref(DatasetRef.named(name)))
                for name in spec.sweep_datasets
            ]
            fingerprint = spec.fingerprint(
                "",
                sweep_dataset_digests=[
                    (name, digest) for name, _, digest in resolved
                ],
            )
            _, raw, digest = resolved[0]
            return raw, digest, resolved, fingerprint
        raw, digest = self._resolve_dataset(spec)
        return raw, digest, None, spec.fingerprint(digest)

    def _journal(self, job: Job) -> None:
        """Persist ``job``'s current state to the job journal, if any.

        Every call also feeds the observability plane — but only when
        the status actually moved since the last journal write (cancel
        re-journals the same state), so the transition counter and the
        event log see each lifecycle edge exactly once.
        """
        if self.jobstore is not None:
            self.jobstore.put(job)
        status = job.status
        if getattr(job, "_obs_status", None) == status:
            return
        job._obs_status = status
        self.obs.observe_transition(status)
        if self.event_log is not None:
            self.event_log.emit(
                "job",
                trace_id=job.trace_id or "",
                job_id=job.job_id,
                status=status,
                fingerprint=job.fingerprint,
                subscribers=job.subscribers,
                error=job.error,
            )

    def _restore_jobs(self, resume: bool = True) -> None:
        """Adopt a previous process's journalled jobs (constructor path).

        Terminal jobs come back as status documents whose envelopes the
        results store still serves; jobs that were pending or running
        at shutdown are re-queued — re-resolved and executed afresh,
        resuming from whatever the stage cache already holds.  One-shot
        embedders (the CLI subcommands) pass ``resume=False`` so a
        short-lived service over a long-lived store never hijacks
        another process's backlog; the jobs stay pending in the journal
        for the next resuming service.
        """
        assert self.jobstore is not None
        requeue: list[Job] = []
        self._job_counter = max(self._job_counter, self.jobstore.max_counter())
        for job in self.jobstore.load():
            self._jobs[job.job_id] = job
            self.jobs_restored += 1
            if job.status in (PENDING, RUNNING) and resume:
                job.status = PENDING
                job.started_at = None
                requeue.append(job)
        for job in requeue:
            self.jobs_requeued += 1
            with self._mutex:
                self._pending += 1  # restored backlog counts as admitted
            self._journal(job)  # back to pending before the pool runs it
            self._pool.submit(self._execute_restored, job)

    def _execute_restored(self, job: Job) -> None:
        """Re-run one re-queued job: resolve late, then execute normally.

        Dataset resolution happens here (on the worker) rather than in
        the constructor so a large backlog cannot stall startup; a
        dataset that no longer resolves fails the job instead of the
        restart.  A fresh submission racing a restored job on the same
        fingerprint may execute alongside it — the shared stage cache's
        per-key locks make the overlap cheap and both land the same
        envelope — while dedup bookkeeping stays correct: each job only
        clears its own in-flight registration.
        """
        try:
            raw, digest, resolved, fingerprint = self._resolve_spec(job.spec)
        except Exception as error:
            job.fail(f"{type(error).__name__}: {error}")
            self._journal(job)
            with self._mutex:
                self._pending -= 1
            return
        job.fingerprint = fingerprint  # content may have moved meanwhile
        with self._mutex:
            self._inflight.setdefault(fingerprint, job)
        self._execute(job, raw, digest, resolved)

    def _prune_jobs_locked(self) -> list[str]:
        """Drop the oldest terminal jobs beyond :attr:`retain_jobs`.

        Caller holds the mutex and is responsible for deleting the
        returned ids from the job journal *after* releasing it.  The
        job *table* is what grows without bound on a long-lived service
        — result envelopes live in the results store under their
        fingerprint, so pruning a job never loses a result, only its
        status document.
        """
        if self.retain_jobs is None:
            return []
        # Only terminal jobs count against the limit — a burst of
        # in-flight work must never push finished documents out early.
        terminal = [
            job_id for job_id, job in self._jobs.items() if job.finished
        ]  # insertion = age order
        excess = len(terminal) - self.retain_jobs
        pruned = terminal[:max(0, excess)]
        for job_id in pruned:
            del self._jobs[job_id]
            self.jobs_pruned += 1
        return pruned

    def run(
        self,
        spec: ScenarioSpec | Mapping[str, Any],
        timeout: float | None = None,
    ) -> dict:
        """Submit and wait; returns the result envelope."""
        return self.submit(spec).wait(timeout)

    def job(self, job_id: str) -> Job | None:
        """Look a job up by id.

        Falls back to the shared job journal when the id is not in this
        process's table: under ``repro serve --workers N`` the worker
        that executed a job journals it, and any *other* worker
        answering ``GET /v1/jobs/<id>`` reads the document from the
        shared store — cross-worker job visibility without any
        inter-process channel beyond the journal itself.
        """
        with self._mutex:
            job = self._jobs.get(job_id)
        if job is not None:
            return job
        if self.jobstore is not None:
            return self.jobstore.get(job_id)
        return None

    def jobs(self) -> list[Job]:
        """Every retained job — including restored ones — oldest first."""
        with self._mutex:
            return list(self._jobs.values())

    def _jobs_by_state(self) -> dict[str, int]:
        """``{status: count}`` over the job table (scrape-time gauge)."""
        counts: dict[str, int] = {}
        with self._mutex:
            for job in self._jobs.values():
                counts[job.status] = counts.get(job.status, 0) + 1
        return counts

    def cancel(self, job_id: str) -> Job | None:
        """Request cooperative cancellation of a job.

        Returns the job (``None`` if unknown).  A queued job is
        cancelled before it starts; a running one stops at its next
        stage boundary, so every stage value already computed stays
        cached and consistent.  A job that finishes first simply stays
        ``done`` — losing the race never discards a result.  Note the
        cancel applies to the *job*, which deduplicated submissions may
        share: every waiter of a cancelled job sees
        :class:`~repro.exceptions.JobCancelledError`.
        """
        job = self.job(job_id)
        if job is not None:
            job.request_cancel()
            # Journal the request so a cancel of a queued job survives a
            # restart instead of resurrecting the revoked scenario.
            self._journal(job)
            if job.finished:
                # The worker's terminal write may have landed *before*
                # our snapshot: re-journal so the record can never end
                # as "running + cancel requested" for a job that in
                # fact completed (a restart would wrongly cancel it).
                self._journal(job)
        return job

    def _watchdog_scan(self) -> None:
        """Fail running jobs whose stage-boundary heartbeat went stale.

        A wedged worker (hung syscall, deadlocked extension) never
        reaches the next stage boundary, so its own deadline check
        never fires; this is the backstop that frees its waiters.  The
        pool *thread* may stay wedged — threads cannot be killed — but
        the job reports ``timeout`` and releases everyone blocked on
        it.  Terminal transitions are first-wins, so a worker that
        wakes up late cannot overwrite the verdict.
        """
        assert self.watchdog_stale_s is not None
        now = time.monotonic()
        with self._mutex:
            running = [
                job for job in self._jobs.values() if job.status == RUNNING
            ]
        for job in running:
            last = job.heartbeat
            if last is None or now - last <= self.watchdog_stale_s:
                continue
            job.mark_timed_out(
                f"heartbeat stale for {now - last:.1f}s "
                f"(watchdog bound {self.watchdog_stale_s}s)"
            )
            if job.status == TIMEOUT:  # we won the terminal race
                self.watchdog_failures += 1
                self.obs.watchdog_failures.inc()
                self._journal(job)

    def stats(self) -> dict[str, Any]:
        """Service counters (the ``/v1/healthz`` document)."""
        with self._mutex:
            n_jobs = len(self._jobs)
            n_inflight = len(self._inflight)
            n_pending = self._pending
        # Occupancy numbers come from the namespaces' TTL-cached scans
        # (see Namespace.stats), never fresh per-request directory
        # walks — healthz must stay cheap under monitoring pollers.
        results_stats = self.results.namespace.stats()
        datasets_stats = self.datasets.namespace.stats()
        breaker = self.breaker.snapshot()
        return {
            "status": "degraded" if breaker["state"] == "open" else "ok",
            "worker": self.worker,
            "healthz_ttl_s": self.results.namespace.occupancy_ttl_s,
            "jobs": n_jobs,
            "jobs_pruned": self.jobs_pruned,
            "jobs_restored": self.jobs_restored,
            "jobs_requeued": self.jobs_requeued,
            "retain_jobs": self.retain_jobs,
            "in_flight": n_inflight,
            "queue": {
                "pending": n_pending,
                "max_queue": self.max_queue,
                "jobs_shed": self.jobs_shed,
            },
            "breaker": breaker,
            "watchdog": {
                "stale_s": self.watchdog_stale_s,
                "failures": self.watchdog_failures,
            },
            "pipeline_executions": self.pipeline_executions,
            "results_stored": results_stats["entries"],
            "datasets": {
                "stored": datasets_stats["entries"],
                "bytes": datasets_stats["bytes"],
                "evictions": self.datasets.evictions,
            },
            "ingestion": {
                **self.datasets.ingestion_stats(),
                "incremental_runs": self.incremental_runs,
            },
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "stores": self.cache.stores,
                "evictions": self.cache.evictions,
            },
            "bytes_cache": self.results.bytes_cache.stats(),
            "store": self._store_stats(),
        }

    def _store_stats(self) -> dict[str, Any]:
        """Per-namespace occupancy of the storage subsystem.

        Every namespace the service persists through reports its
        entries/bytes and hit/store/eviction counters — regardless of
        whether it came from one ``--store-dir`` tree, a deprecated
        per-store directory alias, or memory.
        """
        blocks: dict[str, Any] = {
            "backend": (
                self.store.backend_kind if self.store is not None else None
            ),
            "results": self.results.namespace.stats(),
            "datasets": self.datasets.namespace.stats(),
        }
        if self.cache.namespace is not None:
            blocks["stage"] = self.cache.namespace.stats()
        if self.jobstore is not None:
            blocks["jobs"] = self.jobstore.namespace.stats()
        return blocks

    def close(self) -> None:
        """Finish queued jobs and shut the worker pool down."""
        if self.watchdog is not None:
            self.watchdog.stop()
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ExpansionService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _execute(
        self,
        job: Job,
        raw: MobyDataset,
        digest: str,
        resolved: list | None = None,
    ) -> None:
        try:
            if job.cancel_event.is_set():
                # Cancelled while queued: never starts, reports cancelled
                # (a stored result is deliberately NOT served — the
                # client asked this job to stop, not for its answer).
                job.mark_cancelled()
                return
            stored_text = self.results.raw(job.fingerprint)
            if stored_text is not None:
                stored = self._current_envelope(stored_text)
                if stored is not None:
                    job.canonical = stored_text
                    self.obs.store_served.inc()
                    job.complete(stored)
                    return
                # Garbled or written by an older envelope schema (e.g.
                # v1 sweeps without child fingerprints): recompute and
                # overwrite, instead of silently serving a stale shape.
            job.mark_running()
            job.heartbeat = time.monotonic()
            self._journal(job)
            with self._mutex:
                self.pipeline_executions += 1
            self.obs.pipeline_executions.inc()
            # The stage-boundary cancel poll doubles as the liveness
            # and deadline check: every poll stamps the heartbeat the
            # watchdog watches, then enforces cancel and (execution-
            # measured) deadline.  Deadline expiry surfaces as the same
            # PipelineCancelledError cancellation does — stages never
            # stop mid-body, so the stage cache stays consistent — and
            # is reclassified below.
            started_monotonic = time.monotonic()
            deadline_s = job.spec.deadline_s
            deadline_hit = threading.Event()

            def check_cancel() -> bool:
                job.heartbeat = time.monotonic()
                if job.cancel_event.is_set():
                    return True
                if (
                    deadline_s is not None
                    and time.monotonic() - started_monotonic > deadline_s
                ):
                    deadline_hit.set()
                    return True
                return False

            timer = StageTimer()
            incremental: dict[str, Any] = {}
            envelope = self._build_envelope(
                job.spec,
                raw,
                digest,
                timer,
                cancel=check_cancel,
                sweep_resolved=resolved,
                incremental_out=incremental,
            )
            envelope["fingerprint"] = job.fingerprint
            # Timings are job metadata (they vary run to run), not part
            # of the canonical envelope — envelopes stay byte-identical
            # across surfaces and replays.  The incremental block rides
            # along: slices_reused/slices_recomputed describe *this*
            # execution, not the result.
            timings = timer.report().to_dict()
            if incremental:
                timings["incremental"] = incremental
            job.timings = timings
            job.canonical = self.results.put(job.fingerprint, envelope)
            job.complete(envelope)
        except PipelineCancelledError:
            if job.cancel_event.is_set():
                job.mark_cancelled()  # an explicit cancel wins the tie
            elif deadline_hit.is_set():
                job.mark_timed_out(
                    f"deadline of {deadline_s}s exceeded at a stage boundary"
                )
            else:
                job.mark_cancelled()
        except Exception as error:
            job.fail(f"{type(error).__name__}: {error}")
        finally:
            self._journal(job)
            with self._mutex:
                self._pending -= 1
                # Only clear the entry this job owns: a restored job
                # racing a fresh identical submission must not evict the
                # other job's in-flight registration (that would break
                # dedup for later submissions of the same scenario).
                if self._inflight.get(job.fingerprint) is job:
                    del self._inflight[job.fingerprint]

    @staticmethod
    def _current_envelope(stored_text: str) -> dict | None:
        """Parse a stored envelope; ``None`` unless it is current-schema.

        The envelope version is what makes the results store safe to
        persist across upgrades: a stale-shape envelope (or a truncated
        file) reads as a miss for *new submissions*, which recompute
        and overwrite it.  Direct ``GET /v1/results/<fp>`` still serves
        whatever bytes are stored — fetching by explicit fingerprint
        means "give me exactly that stored result".
        """
        try:
            stored = json.loads(stored_text)
        except ValueError:
            return None
        if not isinstance(stored, dict):
            return None
        if stored.get("envelope_version") != ENVELOPE_VERSION:
            return None
        return stored

    def _build_envelope(
        self,
        spec: ScenarioSpec,
        raw: MobyDataset,
        digest: str,
        timer: "StageTimer | None" = None,
        cancel: "Any | None" = None,
        sweep_resolved: list | None = None,
        incremental_out: dict | None = None,
    ) -> dict[str, Any]:
        """Compute every requested output into one envelope dict.

        ``incremental_out``, when given, receives the runner's
        :meth:`~repro.pipeline.runner.PipelineRunner.incremental_report`
        — run metadata (like timings), never envelope content, so
        incremental and cold envelopes stay byte-identical.
        """
        config = spec.config()
        outputs: dict[str, Any] = {}
        result = None
        if {OUTPUT_RUN, OUTPUT_REBALANCE, OUTPUT_REPORT} & set(spec.outputs):
            # Named datasets carry append lineage; the runner validates
            # it against the digest it was handed (a raced overwrite or
            # append just reads as "no lineage" → a cold run).
            lineage = None
            if spec.dataset.kind == "named":
                lineage = self.datasets.lineage(spec.dataset.name)
            runner = PipelineRunner(
                raw,
                config,
                cache=self.cache,
                jobs=self.pipeline_jobs,
                executor=self.pipeline_executor,
                raw_digest=digest,
                timer=timer,
                cancel=cancel,
                stage_observer=self.obs.observe_stage,
                lineage=lineage,
            )
            result = runner.run()
            report = runner.incremental_report()
            if report.get("mode") == "incremental":
                with self._mutex:
                    self.incremental_runs += 1
            self.obs.observe_incremental(report)
            if incremental_out is not None:
                incremental_out.update(report)
        if OUTPUT_RUN in spec.outputs:
            run_output = result.to_dict()
            # Wall-clock timings are job metadata, not canonical result
            # content — drop them so envelopes replay byte-identically.
            run_output.pop("timings", None)
            outputs[OUTPUT_RUN] = run_output
        if OUTPUT_SWEEP in spec.outputs:
            outputs[OUTPUT_SWEEP] = self._sweep_output(
                spec, raw, digest, cancel=cancel, resolved=sweep_resolved
            )
        if OUTPUT_REBALANCE in spec.outputs:
            plan = plan_weekend_rebalancing(
                result.network,
                result.day.station_partition,
                spec.fleet_size,
            )
            outputs[OUTPUT_REBALANCE] = {
                "fleet_size": spec.fleet_size,
                "plan": plan.to_dict(),
            }
        if OUTPUT_REPORT in spec.outputs:
            outputs[OUTPUT_REPORT] = {
                "title": spec.report_title,
                "markdown": render_markdown_report(
                    result, title=spec.report_title
                ),
            }
        envelope: dict[str, Any] = {
            "type": "ResultEnvelope",
            "envelope_version": ENVELOPE_VERSION,
            "spec": spec.to_dict(),
            "dataset_digest": digest,
            "outputs": outputs,
        }
        if spec.sweep_datasets and sweep_resolved is not None:
            # A dataset-axis sweep has no single base dataset; identity
            # is the per-name digest map.
            del envelope["dataset_digest"]
            envelope["dataset_digests"] = {
                name: ds_digest for name, _, ds_digest in sweep_resolved
            }
        return envelope

    def _sweep_output(
        self,
        spec: ScenarioSpec,
        raw: MobyDataset,
        digest: str,
        cancel: "Any | None" = None,
        resolved: list | None = None,
    ) -> dict[str, Any]:
        """The sweep block, with every child individually addressable.

        Each grid point is also persisted in the results store as a
        complete single-run envelope under the fingerprint of the
        equivalent run spec (base overrides merged with the grid
        point's).  The sweep block lists those fingerprints, so clients
        can fetch one child's full envelope — paginated or streamed —
        without re-downloading the sweep; and a later ``POST /v1/runs``
        for that exact scenario is served from the store, no compute.

        With ``sweep_datasets`` the config grid additionally crosses a
        dataset axis (``resolved``: one ``(name, raw, digest)`` per
        swept dataset): all datasets share one stage cache, children
        carry a ``dataset`` field, and the block gains a ``datasets``
        list pairing each name with the content digest it resolved to.
        """
        grid = spec.sweep_grid()
        axes = resolved if resolved is not None else [(None, raw, digest)]
        scenarios = []
        labelled: list[tuple[str, Any]] = []
        for name, axis_raw, axis_digest in axes:
            results = run_sweep(
                axis_raw,
                [config for _, config in grid],
                cache=self.cache,
                jobs=self.pipeline_jobs,
                executor=self.sweep_executor,
                cancel=cancel,
                stage_observer=self.obs.observe_stage,
            )
            for (overrides, _), result in zip(grid, results):
                label_parts = [
                    f"{path}={value}" for path, value in overrides.items()
                ]
                if name is not None:
                    label_parts.insert(0, f"dataset={name}")
                label = ", ".join(label_parts) or "paper defaults"
                child_spec = ScenarioSpec(
                    dataset=(
                        DatasetRef.named(name)
                        if name is not None
                        else spec.dataset
                    ),
                    overrides={**dict(spec.overrides), **overrides},
                    outputs=(OUTPUT_RUN,),
                )
                child_fingerprint = child_spec.fingerprint(axis_digest)
                child_run = result.to_dict()
                child_run.pop("timings", None)
                self.results.put(
                    child_fingerprint,
                    {
                        "type": "ResultEnvelope",
                        "envelope_version": ENVELOPE_VERSION,
                        "fingerprint": child_fingerprint,
                        "spec": child_spec.to_dict(),
                        "dataset_digest": axis_digest,
                        "outputs": {OUTPUT_RUN: child_run},
                    },
                )
                scenario = {
                    "label": label,
                    "overrides": overrides,
                    "fingerprint": child_fingerprint,
                    "result_url": f"/v1/results/{child_fingerprint}",
                    "headline": result.headline(),
                }
                if name is not None:
                    scenario["dataset"] = name
                scenarios.append(scenario)
                labelled.append((label, result))
        block: dict[str, Any] = {
            "axes": {
                path: list(values) for path, values in sorted(spec.sweep_axes)
            },
            "scenarios": scenarios,
            "table": sweep_summary(
                labelled,
                title=f"SCENARIO SWEEP ({len(labelled)} configs)",
            ),
        }
        if resolved is not None:
            block["datasets"] = [
                {"name": name, "digest": axis_digest}
                for name, _, axis_digest in resolved
            ]
        return block


def canonical_envelope(envelope: dict) -> str:
    """The canonical text every surface serves for ``envelope``."""
    return canonical_json(envelope)
