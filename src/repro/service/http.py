"""The stdlib HTTP front-end over :class:`ExpansionService`.

``repro serve`` binds a :class:`ThreadingHTTPServer` (one thread per
connection, no third-party dependencies) whose handler translates five
routes onto the service:

* ``POST /v1/runs`` — submit a run scenario.  With ``"wait": true``
  (the default) the response is the result envelope itself, in
  canonical JSON — byte-identical to what the CLI's ``--format json``
  prints and ``GET /v1/results/<fp>`` serves.  With ``"wait": false``
  the response is ``202 Accepted`` with the job document.
* ``POST /v1/sweeps`` — same, for sweep scenarios (``sweep_axes``).
* ``GET /v1/jobs/<id>`` — job status document.
* ``GET /v1/results/<fingerprint>`` — a stored envelope's bytes.
* ``GET /v1/healthz`` — service counters (executions, cache, jobs).

Bodies are :class:`ScenarioSpec` dicts; the ``type`` tag and the
``outputs`` list may be omitted (each endpoint fills in its default),
so ``{"dataset": {"kind": "synthetic", "seed": 7}}`` is a complete
request.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs

from ..exceptions import JobFailedError, ReproError
from ..serialize import canonical_json
from .jobs import Job
from .spec import OUTPUT_RUN, OUTPUT_SWEEP, ScenarioSpec
from .service import ExpansionService

#: Cap request bodies well above any realistic spec.
MAX_BODY_BYTES = 1 << 20


def _headline_view(envelope: dict) -> dict:
    """A ``fields=headline`` reduction of a stored result envelope.

    Keeps the request/identity metadata and each output's headline-size
    content; the multi-MB blocks (the expanded network, the
    ``slice_partition`` of every temporal structure, the hierarchy
    levels) are dropped.  First step of the ROADMAP's envelope
    streaming/pagination item.
    """
    slim: dict[str, Any] = {
        key: envelope[key]
        for key in (
            "type",
            "envelope_version",
            "fingerprint",
            "spec",
            "dataset_digest",
        )
        if key in envelope
    }
    slim["fields"] = "headline"
    outputs: dict[str, Any] = {}
    for name, payload in envelope.get("outputs", {}).items():
        if name == "run":
            outputs[name] = {"headline": payload.get("headline")}
        elif name == "sweep":
            outputs[name] = {
                "axes": payload.get("axes"),
                "scenarios": [
                    {
                        "label": scenario.get("label"),
                        "overrides": scenario.get("overrides"),
                        "headline": scenario.get("headline"),
                    }
                    for scenario in payload.get("scenarios", [])
                ],
            }
        elif name == "rebalance":
            outputs[name] = payload  # already headline-sized
        elif name == "report":
            outputs[name] = {"title": payload.get("title")}
        else:
            outputs[name] = payload
    slim["outputs"] = outputs
    return slim


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ExpansionService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: ExpansionService):
        super().__init__(address, _Handler)
        self.service = service
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Background lifecycle (tests and embedded use)
    # ------------------------------------------------------------------

    def start_background(self) -> "ServiceHTTPServer":
        """Serve on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and join the background thread."""
        self.shutdown()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.server_close()

    @property
    def url(self) -> str:
        """Base URL of the bound socket (useful with port 0)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer
    protocol_version = "HTTP/1.1"

    # Quiet by default: the CLI prints one line per request instead of
    # BaseHTTPRequestHandler's stderr chatter.
    def log_message(self, format: str, *args: Any) -> None:
        pass

    @property
    def service(self) -> ExpansionService:
        return self.server.service

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def do_GET(self) -> None:
        path, _, query = self.path.partition("?")
        path = path.rstrip("/")
        if path == "/v1/healthz":
            self._send_json(200, self.service.stats())
        elif path.startswith("/v1/jobs/"):
            self._get_job(path.removeprefix("/v1/jobs/"))
        elif path.startswith("/v1/results/"):
            self._get_result(path.removeprefix("/v1/results/"), query)
        else:
            self._send_error(404, f"no such resource: {path}")

    def do_POST(self) -> None:
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/v1/runs":
            self._submit(default_outputs=(OUTPUT_RUN,))
        elif path == "/v1/sweeps":
            self._submit(default_outputs=(OUTPUT_SWEEP,))
        else:
            self._send_error(404, f"no such resource: {path}")

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------

    def _submit(self, default_outputs: tuple[str, ...]) -> None:
        try:
            body = self._read_body()
            wait = bool(body.pop("wait", True))
            timeout = body.pop("timeout", None)
            if timeout is not None:
                timeout = float(timeout)
            body.setdefault("outputs", list(default_outputs))
            spec = ScenarioSpec.from_dict(body)
        except (ReproError, ValueError, TypeError, KeyError) as error:
            self._send_error(400, str(error))
            return
        try:
            job = self.service.submit(spec)
        except ReproError as error:
            self._send_error(400, str(error))
            return
        if not wait:
            self._send_json(202, job.to_dict())
            return
        try:
            envelope = job.wait(timeout)
        except JobFailedError as error:
            self._send_error(500, str(error))
            return
        except ReproError as error:  # timeout
            self._send_json(202, job.to_dict(), note=str(error))
            return
        # Serve the stored canonical bytes; envelopes are multi-MB, so
        # re-serialising per request would dominate warm latency.
        self._send_text(200, job.canonical or canonical_json(envelope))

    def _get_job(self, job_id: str) -> None:
        job: Job | None = self.service.job(job_id)
        if job is None:
            self._send_error(404, f"no such job: {job_id}")
        else:
            self._send_json(200, job.to_dict())

    def _get_result(self, fingerprint: str, query: str = "") -> None:
        try:
            fields = self._fields_param(query)
        except ValueError as error:
            self._send_error(400, str(error))
            return
        try:
            text = self.service.results.raw(fingerprint)
        except ValueError as error:
            self._send_error(400, str(error))
            return
        if text is None:
            self._send_error(404, f"no result stored for {fingerprint}")
        elif fields == "headline":
            self._send_text(200, canonical_json(_headline_view(json.loads(text))))
        else:
            self._send_text(200, text)

    @staticmethod
    def _fields_param(query: str) -> str | None:
        """The validated ``fields`` query parameter, or None."""
        values = parse_qs(query).get("fields")
        if not values:
            return None
        if values != ["headline"]:
            raise ValueError(
                f"unsupported fields selection {values!r}; "
                "only fields=headline is available"
            )
        return "headline"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            # The body stays unread; drop the connection after the 400
            # so keep-alive does not parse those bytes as a request.
            self.close_connection = True
            raise ValueError(f"request body over {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b"{}"
        payload = json.loads(raw.decode("utf-8") or "{}")
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _send_text(
        self, status: int, text: str, content_type: str = "application/json"
    ) -> None:
        data = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_json(self, status: int, payload: dict, note: str | None = None) -> None:
        if note is not None:
            payload = {**payload, "note": note}
        self._send_text(status, canonical_json(payload))

    def _send_error(self, status: int, message: str) -> None:
        self._send_text(status, canonical_json({"error": message}))


def make_server(
    service: ExpansionService, host: str = "127.0.0.1", port: int = 8722
) -> ServiceHTTPServer:
    """Bind (but do not start) the HTTP front-end.

    ``port=0`` binds an ephemeral port — read it back from ``.url``.
    """
    return ServiceHTTPServer((host, port), service)
