"""The stdlib HTTP front-end over :class:`ExpansionService`.

``repro serve`` binds a :class:`ThreadingHTTPServer` (one thread per
connection, no third-party dependencies) whose handler translates the
routes in :data:`ROUTES` onto the service.  The full request/response
reference with curl examples lives in ``docs/API.md``; a test diffs
that document against :data:`ROUTES` so the two cannot drift.

Scenario submission bodies are :class:`ScenarioSpec` dicts; the
``type`` tag and the ``outputs`` list may be omitted (each endpoint
fills in its default), so ``{"dataset": {"kind": "synthetic",
"seed": 7}}`` is a complete request.

Result delivery scales down from "the whole envelope" — multi-MB at
paper scale — through three progressively narrower views:

* ``?fields=headline``: a ~1.5 KB summary (identity + headline blocks);
* ``?section=<dotted.path>[&page=N&page_size=M]``: one addressed
  subtree, list sections paginated so a client reassembles exactly the
  bytes of the stored envelope without one oversized response;
* ``/v1/results/<fp>/slices``: the per-slice community assignment as
  NDJSON, written chunk by chunk — the serialised whole never exists
  on either side of the socket.

The warm read path serves *pre-rendered bytes*: results and dataset
metadata come out of the service's byte caches
(:mod:`repro.service.bytescache`) with strong validators — ``ETag``
(the fingerprint / content digest) and ``Last-Modified`` — so a warm
``GET`` writes cached bytes straight to the socket without touching
storage or JSON, a conditional ``GET`` (``If-None-Match`` /
``If-Modified-Since``) collapses to an empty 304, and ``HEAD`` answers
with exactly a ``GET``'s headers.  Every response carries
``Content-Length`` (the streaming NDJSON route excepted — it declares
``Transfer-Encoding: chunked`` instead), so HTTP/1.1 keep-alive holds
across every route and error path.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import re
import threading
import time
from email.utils import formatdate, parsedate_to_datetime
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Iterable, Iterator
from urllib.parse import parse_qs

from ..data import MobyDataset, rental_records_from_rows
from ..exceptions import (
    DatasetConflictError,
    DatasetTooLargeError,
    JobCancelledError,
    JobFailedError,
    JobTimeoutError,
    ReproError,
    ServiceOverloadedError,
)
from ..obs import TRACE_HEADER, JsonEventLog, is_trace_id, new_trace_id
from ..serialize import (
    DEFAULT_PAGE_SIZE,
    canonical_json,
    paginate,
    resolve_section,
)
from .bytescache import CachedBytes
from .jobs import Job
from .spec import OUTPUT_RUN, OUTPUT_SWEEP, ScenarioSpec
from .service import ExpansionService

#: Cap scenario request bodies well above any realistic spec.
MAX_BODY_BYTES = 1 << 20

#: Cap dataset upload bodies; the JSON row form of the paper-scale
#: dataset is ~10 MB, so this leaves an order of magnitude of headroom
#: while still bounding per-request memory.
MAX_DATASET_BODY_BYTES = 128 << 20

#: Every route the front-end serves, as ``(method, path template)``.
#: This is the registry ``docs/API.md`` is diffed against — add the
#: handler and the documentation together.
ROUTES: tuple[tuple[str, str], ...] = (
    ("GET", "/v1/healthz"),
    ("GET", "/v1/metrics"),
    ("POST", "/v1/runs"),
    ("POST", "/v1/sweeps"),
    ("GET", "/v1/jobs"),
    ("GET", "/v1/jobs/<id>"),
    ("DELETE", "/v1/jobs/<id>"),
    ("GET", "/v1/results/<fingerprint>"),
    ("GET", "/v1/results/<fingerprint>/slices"),
    ("GET", "/v1/datasets"),
    ("GET", "/v1/datasets/<name>"),
    ("PUT", "/v1/datasets/<name>"),
    ("PATCH", "/v1/datasets/<name>"),
    ("DELETE", "/v1/datasets/<name>"),
)

#: ``Content-Range: bytes <start>-<end>/<total>`` — the only form the
#: ranged dataset upload accepts (``*`` totals are rejected: the store
#: pre-flights the size cap against the declared total).
_CONTENT_RANGE = re.compile(r"bytes (\d+)-(\d+)/(\d+)")

#: Client integrity header: hex SHA-256 of the request body.  Verified
#: against the streamed digest when present; mismatch is a 400.
INTEGRITY_HEADER = "X-Repro-Content-SHA256"

#: The temporal blocks ``/slices`` can stream, in envelope order.
_SLICE_BLOCKS = ("day", "hour")


def route_template(method: str, path: str) -> str:
    """The :data:`ROUTES` template matching one request path.

    Metrics and access logs label by *template* (``/v1/jobs/<id>``),
    never by raw path — per-id label values would grow the label set
    without bound.  Unmatched requests share one bucket.  ``HEAD``
    matches its ``GET`` route: same handler, same resource, no body.
    """
    if method == "HEAD":
        method = "GET"
    path = path.split("?", 1)[0].rstrip("/") or "/"
    segments = path.split("/")
    for route_method, template in ROUTES:
        if route_method != method:
            continue
        parts = template.split("/")
        if len(parts) != len(segments):
            continue
        if all(
            part.startswith("<") or part == segment
            for part, segment in zip(parts, segments)
        ):
            return template
    return "(unmatched)"


def _headline_view(envelope: dict) -> dict:
    """A ``fields=headline`` reduction of a stored result envelope.

    Keeps the request/identity metadata and each output's headline-size
    content; the multi-MB blocks (the expanded network, the
    ``slice_partition`` of every temporal structure, the hierarchy
    levels) are dropped.
    """
    slim: dict[str, Any] = {
        key: envelope[key]
        for key in (
            "type",
            "envelope_version",
            "fingerprint",
            "spec",
            "dataset_digest",
        )
        if key in envelope
    }
    slim["fields"] = "headline"
    outputs: dict[str, Any] = {}
    for name, payload in envelope.get("outputs", {}).items():
        if name == "run":
            outputs[name] = {"headline": payload.get("headline")}
        elif name == "sweep":
            outputs[name] = {
                "axes": payload.get("axes"),
                "scenarios": [
                    {
                        "label": scenario.get("label"),
                        "overrides": scenario.get("overrides"),
                        "fingerprint": scenario.get("fingerprint"),
                        "result_url": scenario.get("result_url"),
                        "headline": scenario.get("headline"),
                    }
                    for scenario in payload.get("scenarios", [])
                ],
            }
        elif name == "rebalance":
            outputs[name] = payload  # already headline-sized
        elif name == "report":
            outputs[name] = {"title": payload.get("title")}
        else:
            outputs[name] = payload
    slim["outputs"] = outputs
    return slim


def _slice_stream_lines(
    envelope: dict, fingerprint: str, output: str, block: str
) -> Iterator[str]:
    """NDJSON lines for one temporal block's per-slice assignment.

    The first line is a header (stream identity plus slice/entry
    counts); each following line carries one slice's share of the
    ``slice_partition`` assignment, pairs in their stored order.
    Concatenating every line's ``assignment`` and sorting by the JSON
    encoding of the node key reproduces the envelope's assignment list
    exactly (that is the canonical order it was stored in).
    """
    outputs = envelope.get("outputs", {})
    if output not in outputs:
        raise KeyError(f"envelope has no {output!r} output")
    if block not in _SLICE_BLOCKS:
        raise KeyError(
            f"unknown temporal block {block!r}; expected one of "
            f"{_SLICE_BLOCKS}"
        )
    temporal = outputs[output].get(block)
    if not isinstance(temporal, dict) or "slice_partition" not in temporal:
        raise KeyError(
            f"output {output!r} carries no {block!r} slice partition "
            "(headline-only or non-run output?)"
        )
    pairs = temporal["slice_partition"]["assignment"]
    by_slice: dict[int, list] = {}
    for pair in pairs:
        # Node keys are encoded (station, slice) tuples — slice last.
        by_slice.setdefault(pair[0][-1], []).append(pair)
    compact = {"sort_keys": True, "separators": (",", ":")}
    yield json.dumps(
        {
            "type": "SliceStream",
            "fingerprint": fingerprint,
            "output": output,
            "block": block,
            "n_slices": temporal.get("n_slices", len(by_slice)),
            "total_entries": len(pairs),
        },
        **compact,
    ) + "\n"
    for index in sorted(by_slice):
        yield json.dumps(
            {"slice": index, "assignment": by_slice[index]}, **compact
        ) + "\n"


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ExpansionService`."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: ExpansionService,
        access_log: JsonEventLog | None = None,
        *,
        sock=None,
    ):
        if sock is not None:
            # Adopt an externally prepared socket (the pre-fork path:
            # each worker binds its own SO_REUSEPORT socket, or inherits
            # the parent's accept socket).  Listening on an
            # already-listening socket just refreshes the backlog.
            super().__init__(address, _Handler, bind_and_activate=False)
            self.socket.close()
            self.socket = sock
            self.server_address = sock.getsockname()[:2]
            # server_bind() never ran; fill in what it would have set.
            self.server_name, self.server_port = self.server_address
            self.server_activate()
        else:
            super().__init__(address, _Handler)
        self.service = service
        #: Structured request log (``repro serve --access-log``); the
        #: opener owns closing it — the server only writes lines.
        self.access_log = access_log
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Background lifecycle (tests and embedded use)
    # ------------------------------------------------------------------

    def start_background(self) -> "ServiceHTTPServer":
        """Serve on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and join the background thread."""
        self.shutdown()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.server_close()

    @property
    def url(self) -> str:
        """Base URL of the bound socket (useful with port 0)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer
    protocol_version = "HTTP/1.1"

    # TCP_NODELAY: headers and a small body leave as separate writes;
    # with Nagle on, the body write stalls ~40ms behind the peer's
    # delayed ACK — which would dwarf a warm byte-cache response.
    disable_nagle_algorithm = True

    #: Suppress the response body (``HEAD``); headers — including the
    #: exact ``Content-Length`` the ``GET`` would carry — still go out.
    _head_only = False

    # Quiet by default: the CLI prints one line per request instead of
    # BaseHTTPRequestHandler's stderr chatter.
    def log_message(self, format: str, *args: Any) -> None:
        pass

    @property
    def service(self) -> ExpansionService:
        return self.server.service

    # ------------------------------------------------------------------
    # Observability envelope around every request
    # ------------------------------------------------------------------

    def send_response(self, code: int, message: str | None = None) -> None:
        super().send_response(code, message)
        self._status = int(code)
        trace = getattr(self, "trace_id", "")
        if trace:
            self.send_header(TRACE_HEADER, trace)

    def _handle(self, method: str, dispatch: Callable[[], None]) -> None:
        """Run one request with trace id, request metrics and log line.

        The trace id is adopted from the client's ``X-Repro-Trace-Id``
        header when it looks like one (so a caller's id follows the
        request through job, journal and logs) and minted otherwise;
        either way it is echoed on the response.
        """
        claimed = (self.headers.get(TRACE_HEADER) or "").strip().lower()
        self.trace_id = claimed if is_trace_id(claimed) else new_trace_id()
        self._status = 0
        self._head_only = method == "HEAD"
        start = time.perf_counter()
        try:
            dispatch()
        except ConnectionError:
            # The client went away mid-exchange; there is no socket
            # left to answer on.
            self.close_connection = True
        except Exception as error:  # the framing backstop
            # No handler error may leave a keep-alive client waiting on
            # a response that never comes: answer 500 with an exact
            # Content-Length if headers have not gone out, and drop the
            # connection either way (request state is unknown).
            self.close_connection = True
            if self._status == 0:
                try:
                    self._send_error(
                        500,
                        f"internal error: {type(error).__name__}: {error}",
                    )
                except OSError:
                    pass
        finally:
            elapsed = time.perf_counter() - start
            route = route_template(method, self.path)
            self.service.obs.observe_http(
                method, route, self._status, elapsed
            )
            log = self.server.access_log
            if log is not None:
                log.emit(
                    "http",
                    trace_id=self.trace_id,
                    method=method,
                    path=self.path,
                    route=route,
                    status=self._status,
                    duration_s=round(elapsed, 6),
                )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def do_GET(self) -> None:
        self._handle("GET", self._route_get)

    def do_HEAD(self) -> None:
        # HEAD runs the GET handlers end to end — same status, same
        # headers (Content-Length included) — with the body suppressed
        # at the send seam, so the two can never disagree.
        self._handle("HEAD", self._route_get)

    def do_POST(self) -> None:
        self._handle("POST", self._route_post)

    def do_PUT(self) -> None:
        self._handle("PUT", self._route_put)

    def do_PATCH(self) -> None:
        self._handle("PATCH", self._route_patch)

    def do_DELETE(self) -> None:
        self._handle("DELETE", self._route_delete)

    def _route_get(self) -> None:
        path, _, query = self.path.partition("?")
        path = path.rstrip("/")
        if path == "/v1/healthz":
            self._send_json(200, self.service.stats())
        elif path == "/v1/metrics":
            self._get_metrics()
        elif path == "/v1/datasets":
            self._send_json(
                200,
                {"type": "DatasetList", "datasets": self.service.datasets.list()},
            )
        elif path.startswith("/v1/datasets/"):
            self._get_dataset(path.removeprefix("/v1/datasets/"))
        elif path == "/v1/jobs":
            self._list_jobs()
        elif path.startswith("/v1/jobs/"):
            self._get_job(path.removeprefix("/v1/jobs/"))
        elif path.startswith("/v1/results/"):
            rest = path.removeprefix("/v1/results/")
            if rest.endswith("/slices"):
                self._stream_slices(rest.removesuffix("/slices"), query)
            else:
                self._get_result(rest, query)
        else:
            self._send_error(404, f"no such resource: {path}")

    def _route_post(self) -> None:
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/v1/runs":
            if self._refuse_degraded():
                return
            self._submit(default_outputs=(OUTPUT_RUN,))
        elif path == "/v1/sweeps":
            if self._refuse_degraded():
                return
            self._submit(default_outputs=(OUTPUT_SWEEP,))
        else:
            self._send_error(404, f"no such resource: {path}")

    def _route_put(self) -> None:
        path = self.path.split("?", 1)[0].rstrip("/")
        if path.startswith("/v1/datasets/"):
            if self._refuse_degraded():
                return
            self._put_dataset(path.removeprefix("/v1/datasets/"))
        else:
            self._send_error(404, f"no such resource: {path}")

    def _route_patch(self) -> None:
        path = self.path.split("?", 1)[0].rstrip("/")
        if path.startswith("/v1/datasets/"):
            if self._refuse_degraded():
                return
            self._append_dataset(path.removeprefix("/v1/datasets/"))
        else:
            self._send_error(404, f"no such resource: {path}")

    def _refuse_degraded(self) -> bool:
        """503 + Retry-After when the store-write breaker is open.

        Mutating requests are refused while the service is degraded;
        warm reads (results, datasets, jobs, healthz, metrics) keep
        being served — they never write.  The ``allow()`` probe that
        fails here is also what arms half-open recovery: once the
        reset timeout passes, one request is admitted and its store
        writes decide whether the breaker closes again.
        """
        if self.service.breaker.allow():
            return False
        retry_after = max(1, round(self.service.breaker.retry_after_s()))
        self._send_error(
            503,
            "service is in read-only degraded mode (store writes are "
            "failing); warm results and datasets are still served",
            headers={"Retry-After": str(retry_after)},
        )
        return True

    def _route_delete(self) -> None:
        path = self.path.split("?", 1)[0].rstrip("/")
        if path.startswith("/v1/jobs/"):
            self._cancel_job(path.removeprefix("/v1/jobs/"))
        elif path.startswith("/v1/datasets/"):
            self._delete_dataset(path.removeprefix("/v1/datasets/"))
        else:
            self._send_error(404, f"no such resource: {path}")

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def _get_metrics(self) -> None:
        registry = self.service.registry
        if not registry.enabled:
            self._send_error(
                404, "metrics are disabled on this server (metrics=False)"
            )
            return
        self._send_text(
            200,
            registry.render(),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    # ------------------------------------------------------------------
    # Scenario submission
    # ------------------------------------------------------------------

    def _submit(self, default_outputs: tuple[str, ...]) -> None:
        try:
            body = self._read_body()
            wait = bool(body.pop("wait", True))
            # Opt-in: responses carry a ``meta`` block (trace/job ids).
            # Off by default so the response body stays byte-identical
            # to the stored envelope every other surface serves.
            want_meta = bool(body.pop("meta", False))
            timeout = body.pop("timeout", None)
            if timeout is not None:
                timeout = float(timeout)
            body.setdefault("outputs", list(default_outputs))
            spec = ScenarioSpec.from_dict(body)
        except (ReproError, ValueError, TypeError, KeyError) as error:
            self._send_error(400, str(error))
            return
        try:
            job = self.service.submit(spec, trace_id=self.trace_id)
        except ServiceOverloadedError as error:
            self._send_error(
                429,
                str(error),
                headers={
                    "Retry-After": str(max(1, round(error.retry_after_s)))
                },
            )
            return
        except ReproError as error:
            self._send_error(400, str(error))
            return
        if not wait:
            self._send_json(202, job.to_dict())
            return
        try:
            envelope = job.wait(timeout)
        except JobTimeoutError as error:
            # The *job* hit its deadline_s (or the watchdog reaped it) —
            # distinct from the request-level wait timeout below, which
            # leaves the job running and answers 202.
            self._send_json(504, job.to_dict(), note=str(error))
            return
        except JobFailedError as error:
            self._send_error(500, str(error))
            return
        except JobCancelledError:
            # Another client cancelled the job this request had joined.
            self._send_json(409, job.to_dict(), note="job was cancelled")
            return
        except ReproError as error:  # timeout
            self._send_json(202, job.to_dict(), note=str(error))
            return
        if want_meta:
            # The stored envelope is never touched — only this response
            # body gains the block (a deduplicated submission reports
            # the executing job's trace id, not this request's).
            self._send_text(
                200,
                canonical_json(
                    {
                        **envelope,
                        "meta": {
                            "job_id": job.job_id,
                            "trace_id": job.trace_id,
                        },
                    }
                ),
            )
            return
        # Serve the stored canonical bytes; envelopes are multi-MB, so
        # re-serialising per request would dominate warm latency.
        self._send_text(200, job.canonical or canonical_json(envelope))

    # ------------------------------------------------------------------
    # Jobs
    # ------------------------------------------------------------------

    def _list_jobs(self) -> None:
        """Every retained job document, oldest first.

        Over a shared ``--store-dir`` this includes jobs journalled by
        previous processes — the restart-visibility listing.
        """
        self._send_json(
            200,
            {
                "type": "JobList",
                "jobs": [job.to_dict() for job in self.service.jobs()],
            },
        )

    def _get_job(self, job_id: str) -> None:
        job: Job | None = self.service.job(job_id)
        if job is None:
            self._send_error(404, f"no such job: {job_id}")
        else:
            self._send_json(200, job.to_dict())

    def _cancel_job(self, job_id: str) -> None:
        job = self.service.cancel(job_id)
        if job is None:
            # Unknown id: 404, distinct from the already-terminal 409
            # below so clients can tell "never existed / pruned" from
            # "exists but can no longer be cancelled".
            self._send_error(404, f"no such job: {job_id}")
        elif job.finished and job.status != "cancelled":
            # Already terminal (done/failed/timeout) — the cancel has
            # nothing to act on and the job's outcome stands.
            self._send_json(
                409,
                job.to_dict(),
                note=f"job already finished as {job.status!r}; "
                "cancel has no effect",
            )
        else:
            self._send_json(202, job.to_dict())

    # ------------------------------------------------------------------
    # Results: whole, headline, paginated section, NDJSON slices
    # ------------------------------------------------------------------

    def _get_result(self, fingerprint: str, query: str = "") -> None:
        params = parse_qs(query)
        try:
            fields = self._single_param(params, "fields")
            section = self._single_param(params, "section")
            if fields is not None and fields != "headline":
                raise ValueError(
                    f"unsupported fields selection {fields!r}; "
                    "only fields=headline is available"
                )
            if fields is not None and section is not None:
                raise ValueError("fields and section are mutually exclusive")
            if section is not None:
                self._get_section(fingerprint, section, params)
                return
            if fields == "headline":
                entry = self.service.results.view_entry(
                    fingerprint,
                    "headline",
                    lambda envelope: canonical_json(
                        _headline_view(envelope)
                    ).encode("utf-8"),
                )
            else:
                entry = self.service.results.raw_entry(fingerprint)
        except ValueError as error:
            self._send_error(400, str(error))
            return
        if entry is None:
            self._send_error(404, f"no result stored for {fingerprint}")
            return
        self._serve_entry(entry)

    def _get_section(
        self, fingerprint: str, section: str, params: dict
    ) -> None:
        try:
            page_param = self._single_param(params, "page")
            page_size_param = self._single_param(params, "page_size")
            page = int(page_param) if page_param is not None else None
            if page is None and page_size_param is not None:
                raise ValueError("page_size without page")
            page_size = (
                int(page_size_param)
                if page_size_param is not None
                else DEFAULT_PAGE_SIZE
            )
        except ValueError as error:
            self._send_error(400, str(error))
            return

        def build(envelope: dict) -> bytes:
            # Runs only on a cold (fingerprint, section, page) view;
            # warm pages are served as cached bytes without a parse.
            value = resolve_section(envelope, section)
            document: dict[str, Any] = {
                "type": "ResultSection",
                "fingerprint": fingerprint,
                "section": section,
            }
            if page is not None:
                document.update(paginate(value, page=page, page_size=page_size))
            else:
                document["value"] = value
            return canonical_json(document).encode("utf-8")

        try:
            entry = self.service.results.view_entry(
                fingerprint, ("section", section, page, page_size), build
            )
        except KeyError as error:
            self._send_error(404, str(error.args[0]))
            return
        except ValueError as error:
            self._send_error(400, str(error))
            return
        if entry is None:
            self._send_error(404, f"no result stored for {fingerprint}")
            return
        self._serve_entry(entry)

    def _stream_slices(self, fingerprint: str, query: str) -> None:
        params = parse_qs(query)
        try:
            output = self._single_param(params, "output") or "run"
            block = self._single_param(params, "block") or "day"
            entry = self.service.results.raw_entry(fingerprint)
        except ValueError as error:
            self._send_error(400, str(error))
            return
        if entry is None:
            self._send_error(404, f"no result stored for {fingerprint}")
            return
        try:
            lines = _slice_stream_lines(
                json.loads(entry.payload), fingerprint, output, block
            )
            first = next(lines)  # resolve errors before any bytes go out
        except KeyError as error:
            self._send_error(404, str(error.args[0]))
            return
        self._send_chunked([first], lines)

    # ------------------------------------------------------------------
    # Datasets
    # ------------------------------------------------------------------

    def _get_dataset(self, name: str) -> None:
        entry = self.service.datasets.meta_bytes(name)
        if entry is None:
            self._send_error(404, f"no dataset named {name!r}")
        else:
            self._serve_entry(entry)

    def _put_dataset(self, name: str) -> None:
        if self.headers.get("Content-Range"):
            self._put_dataset_fragment(name)
            return
        try:
            body = self._read_body(limit=MAX_DATASET_BODY_BYTES)
            dataset = MobyDataset.from_dict(body)
        except (ReproError, ValueError, TypeError, KeyError) as error:
            self._send_error(400, str(error))
            return
        try:
            overwrote = name in self.service.datasets
            meta = self.service.register_dataset(name, dataset)
        except DatasetTooLargeError as error:
            self._send_error(413, str(error))
            return
        except ReproError as error:
            self._send_error(400, str(error))
            return
        self._send_json(200 if overwrote else 201, meta)

    def _put_dataset_fragment(self, name: str) -> None:
        """One ``Content-Range`` fragment of a resumable dataset upload.

        Fragments must arrive in order; the session buffers them (spool
        file past 8 MB, so a 100 MB+ body never materialises in memory)
        and the assembled JSON is parsed and stored when the last byte
        lands.  Intermediate fragments answer ``202`` with the received
        count; a non-sequential offset answers ``416`` carrying the
        offset to resume from.
        """
        header = self.headers.get("Content-Range", "")
        match = _CONTENT_RANGE.fullmatch(header.strip())
        if match is None:
            self._send_error(
                400,
                f"malformed Content-Range {header!r}; expected "
                "'bytes <start>-<end>/<total>'",
            )
            return
        start, end, total = (int(group) for group in match.groups())
        if total > MAX_DATASET_BODY_BYTES:
            self.close_connection = True
            self._send_error(
                413, f"dataset body over {MAX_DATASET_BODY_BYTES} bytes"
            )
            return
        try:
            data = self._read_raw_body(limit=MAX_DATASET_BODY_BYTES)
            overwrote = name in self.service.datasets
            doc = self.service.datasets.upload_fragment(
                name, data, start=start, end=end, total=total
            )
        except DatasetConflictError as error:
            self._send_error(416, str(error))
            return
        except DatasetTooLargeError as error:
            self._send_error(413, str(error))
            return
        except (ReproError, ValueError, TypeError, KeyError) as error:
            self._send_error(400, str(error))
            return
        if doc.get("complete"):
            self._send_json(200 if overwrote else 201, doc)
        else:
            self._send_json(202, doc)

    def _append_dataset(self, name: str) -> None:
        """``PATCH /v1/datasets/<name>``: append rentals onto a dataset.

        The body is ``{"rentals": [[id, bike_id, started_at, ended_at,
        rental_location_id, return_location_id], ...]}`` — the row shape
        of the full upload.  Appended ids must strictly exceed every
        stored id (``409`` otherwise); the response is the updated
        metadata document with the rolled-forward chain digest, so the
        resource's ``ETag`` moves with every accepted append.
        """
        try:
            body = self._read_body(limit=MAX_DATASET_BODY_BYTES)
            rentals = rental_records_from_rows(body.get("rentals", []))
        except (ReproError, ValueError, TypeError, KeyError) as error:
            self._send_error(400, str(error))
            return
        try:
            meta = self.service.append_dataset(name, rentals)
        except DatasetConflictError as error:
            self._send_error(409, str(error))
            return
        except DatasetTooLargeError as error:
            self._send_error(413, str(error))
            return
        except ReproError as error:
            self._send_error(400, str(error))
            return
        if meta is None:
            self._send_error(404, f"no dataset named {name!r}")
        else:
            self._send_json(200, meta)

    def _delete_dataset(self, name: str) -> None:
        if self.service.delete_dataset(name):
            self._send_json(200, {"deleted": name})
        else:
            self._send_error(404, f"no dataset named {name!r}")

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    @staticmethod
    def _single_param(params: dict, name: str) -> str | None:
        """The at-most-once query parameter ``name``, or None."""
        values = params.get(name)
        if not values:
            return None
        if len(values) > 1:
            raise ValueError(f"query parameter {name!r} given twice")
        return values[0]

    def _read_raw_body(self, limit: int = MAX_BODY_BYTES) -> bytes:
        """Drain the request body in 64 KiB chunks with a rolling digest.

        Large dataset bodies never pass through one giant
        ``rfile.read`` buffer-doubling call, and the digest comes for
        free on the way past: when the client sent
        ``X-Repro-Content-SHA256``, a mismatch (truncated proxy, bit
        rot) is a ``400`` before any of the bytes are acted on.
        """
        length = int(self.headers.get("Content-Length") or 0)
        if length > limit:
            # The body stays unread; drop the connection after the 400
            # so keep-alive does not parse those bytes as a request.
            self.close_connection = True
            raise ValueError(f"request body over {limit} bytes")
        sha = hashlib.sha256()
        chunks: list[bytes] = []
        remaining = length
        while remaining:
            chunk = self.rfile.read(min(remaining, 64 * 1024))
            if not chunk:
                self.close_connection = True
                raise ValueError(
                    f"request body truncated at {length - remaining} "
                    f"of {length} bytes"
                )
            sha.update(chunk)
            chunks.append(chunk)
            remaining -= len(chunk)
        claimed = (self.headers.get(INTEGRITY_HEADER) or "").strip().lower()
        if claimed and claimed != sha.hexdigest():
            raise ValueError(
                f"{INTEGRITY_HEADER} does not match the received body"
            )
        return b"".join(chunks)

    def _read_body(self, limit: int = MAX_BODY_BYTES) -> dict:
        raw = self._read_raw_body(limit)
        payload = json.loads(raw.decode("utf-8") or "{}")
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _send_bytes(
        self,
        status: int,
        data: bytes,
        content_type: str | None = "application/json",
        headers: dict[str, str] | None = None,
    ) -> None:
        """The one seam every non-streaming response goes through.

        Guarantees the keep-alive invariants: an exact
        ``Content-Length`` on every response, an explicit
        ``Connection: close`` whenever the handler decided to drop the
        connection (so clients stop waiting instead of timing out on a
        dead socket), and body suppression for ``HEAD`` *after* the
        headers are computed — a ``HEAD`` carries exactly the headers
        of its ``GET``.
        """
        self.send_response(status)
        if content_type is not None:
            self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        if data and not self._head_only:
            self.wfile.write(data)

    def _send_text(
        self,
        status: int,
        text: str,
        content_type: str = "application/json",
        headers: dict[str, str] | None = None,
    ) -> None:
        self._send_bytes(
            status, text.encode("utf-8"), content_type, headers
        )

    def _not_modified(self, entry: CachedBytes) -> bool:
        """Whether the request's validators match ``entry``.

        ``If-None-Match`` wins over ``If-Modified-Since`` when both are
        present (RFC 9110 §13.1.3).  Comparison is the weak one: a
        ``W/`` prefix on a client tag is stripped, because the cached
        tags are strong and a weak match suffices for 304.
        """
        inm = self.headers.get("If-None-Match")
        if inm is not None:
            for candidate in inm.split(","):
                tag = candidate.strip()
                if tag == "*":
                    return True
                if tag.startswith("W/"):
                    tag = tag[2:]
                if tag.strip('"') == entry.etag:
                    return True
            return False
        ims = self.headers.get("If-Modified-Since")
        if ims is not None:
            try:
                since = parsedate_to_datetime(ims).timestamp()
            except (TypeError, ValueError, OverflowError):
                return False
            # Last-Modified is served at whole-second resolution, so
            # compare the truncated stamp against the parsed header.
            return int(entry.last_modified) <= since
        return False

    def _serve_entry(
        self,
        entry: CachedBytes,
        content_type: str = "application/json",
    ) -> None:
        """Serve cached bytes with validators, honouring conditionals."""
        validators = {
            "ETag": f'"{entry.etag}"',
            "Last-Modified": formatdate(entry.last_modified, usegmt=True),
        }
        if self._not_modified(entry):
            self._send_bytes(304, b"", None, validators)
        else:
            self._send_bytes(200, entry.payload, content_type, validators)

    def _send_chunked(
        self,
        head: Iterable[str],
        rest: Iterator[str],
        content_type: str = "application/x-ndjson",
    ) -> None:
        """Stream ``head`` then ``rest`` with chunked transfer encoding.

        One chunk per NDJSON line: the full response body never exists
        as a single string, which is the point of the streaming route.
        """
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Transfer-Encoding", "chunked")
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        if self._head_only:
            return
        for line in itertools.chain(head, rest):
            data = line.encode("utf-8")
            self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
            self.wfile.write(data)
            self.wfile.write(b"\r\n")
        self.wfile.write(b"0\r\n\r\n")

    def _send_json(self, status: int, payload: dict, note: str | None = None) -> None:
        if note is not None:
            payload = {**payload, "note": note}
        self._send_text(status, canonical_json(payload))

    def _send_error(
        self,
        status: int,
        message: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        self._send_text(
            status, canonical_json({"error": message}), headers=headers
        )


def make_server(
    service: ExpansionService,
    host: str = "127.0.0.1",
    port: int = 8722,
    access_log: JsonEventLog | None = None,
) -> ServiceHTTPServer:
    """Bind (but do not start) the HTTP front-end.

    ``port=0`` binds an ephemeral port — read it back from ``.url``.
    """
    return ServiceHTTPServer((host, port), service, access_log=access_log)
