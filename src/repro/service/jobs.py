"""Job objects: one submitted scenario moving through the service.

A job is the unit the HTTP API reports on (``GET /v1/jobs/<id>``) and
the handle :meth:`ExpansionService.submit` hands back.  Identical
concurrent submissions share one job — the fingerprint, not the job
id, is a result's durable identity (``GET /v1/results/<fp>``), so job
metadata (timestamps, status) deliberately stays *outside* the result
envelope, keeping envelopes byte-identical across surfaces.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

from ..exceptions import JobFailedError, ServiceError
from .spec import ScenarioSpec

#: Job lifecycle states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


@dataclass
class Job:
    """One scenario submission and its (eventual) result envelope."""

    job_id: str
    spec: ScenarioSpec
    fingerprint: str
    status: str = PENDING
    error: str | None = None
    created_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    #: How many submissions this job absorbed (1 + deduplicated ones).
    subscribers: int = 1
    _event: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )
    _envelope: dict | None = field(default=None, repr=False, compare=False)
    #: The envelope's canonical-JSON text, set by the service alongside
    #: :meth:`complete` so surfaces can serve the stored bytes without
    #: re-serialising multi-MB envelopes per request.
    canonical: str | None = field(default=None, repr=False, compare=False)
    #: Per-stage wall-clock block (a ``PerfReport`` envelope) recorded
    #: while the job's pipeline ran.  Job metadata only — never part of
    #: the result envelope, which stays byte-identical across surfaces.
    timings: dict | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Lifecycle (driven by the service)
    # ------------------------------------------------------------------

    def mark_running(self) -> None:
        self.status = RUNNING
        self.started_at = time.time()

    def complete(self, envelope: dict) -> None:
        self._envelope = envelope
        self.status = DONE
        self.finished_at = time.time()
        self._event.set()

    def fail(self, error: str) -> None:
        self.error = error
        self.status = FAILED
        self.finished_at = time.time()
        self._event.set()

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    @property
    def finished(self) -> bool:
        """True once the job is done or failed."""
        return self.status in (DONE, FAILED)

    def wait(self, timeout: float | None = None) -> dict:
        """Block until the job finishes and return its envelope.

        Raises :class:`JobFailedError` if the job failed and
        :class:`ServiceError` on timeout.
        """
        if not self._event.wait(timeout):
            raise ServiceError(
                f"job {self.job_id} did not finish within {timeout}s"
            )
        if self.status == FAILED:
            raise JobFailedError(
                f"job {self.job_id} failed: {self.error}"
            )
        assert self._envelope is not None
        return self._envelope

    def envelope(self) -> dict | None:
        """The result envelope, or ``None`` while unfinished/failed."""
        return self._envelope

    def to_dict(self) -> dict[str, Any]:
        """Job status document (the ``/v1/jobs/<id>`` body)."""
        payload: dict[str, Any] = {
            "type": "Job",
            "job_id": self.job_id,
            "fingerprint": self.fingerprint,
            "status": self.status,
            "spec": self.spec.to_dict(),
            "subscribers": self.subscribers,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.error is not None:
            payload["error"] = self.error
        if self.timings is not None:
            payload["timings"] = self.timings
        if self.status == DONE:
            payload["result_url"] = f"/v1/results/{self.fingerprint}"
        return payload
