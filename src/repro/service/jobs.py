"""Job objects: one submitted scenario moving through the service.

A job is the unit the HTTP API reports on (``GET /v1/jobs/<id>``) and
the handle :meth:`ExpansionService.submit` hands back.  Identical
concurrent submissions share one job — the fingerprint, not the job
id, is a result's durable identity (``GET /v1/results/<fp>``), so job
metadata (timestamps, status) deliberately stays *outside* the result
envelope, keeping envelopes byte-identical across surfaces.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

from ..exceptions import JobCancelledError, JobFailedError, ServiceError
from .spec import ScenarioSpec

#: Job lifecycle states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"


@dataclass
class Job:
    """One scenario submission and its (eventual) result envelope."""

    job_id: str
    spec: ScenarioSpec
    fingerprint: str
    status: str = PENDING
    error: str | None = None
    created_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    #: How many submissions this job absorbed (1 + deduplicated ones).
    subscribers: int = 1
    _event: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )
    _envelope: dict | None = field(default=None, repr=False, compare=False)
    #: The envelope's canonical-JSON text, set by the service alongside
    #: :meth:`complete` so surfaces can serve the stored bytes without
    #: re-serialising multi-MB envelopes per request.
    canonical: str | None = field(default=None, repr=False, compare=False)
    #: Per-stage wall-clock block (a ``PerfReport`` envelope) recorded
    #: while the job's pipeline ran.  Job metadata only — never part of
    #: the result envelope, which stays byte-identical across surfaces.
    timings: dict | None = field(default=None, repr=False, compare=False)
    #: Set by :meth:`request_cancel`; the pipeline polls it at stage
    #: boundaries (cancellation is cooperative — a running stage body
    #: always finishes, so the stage cache never holds a torn value).
    cancel_event: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    # Lifecycle (driven by the service)
    # ------------------------------------------------------------------

    def mark_running(self) -> None:
        """Transition pending -> running (the worker picked the job up)."""
        self.status = RUNNING
        self.started_at = time.time()

    def complete(self, envelope: dict) -> None:
        """Terminal success: record the envelope and release waiters."""
        self._envelope = envelope
        self.status = DONE
        self.finished_at = time.time()
        self._event.set()

    def fail(self, error: str) -> None:
        """Terminal failure: record the message and release waiters."""
        self.error = error
        self.status = FAILED
        self.finished_at = time.time()
        self._event.set()

    def request_cancel(self) -> None:
        """Flag the job for cooperative cancellation.

        A no-op once the job is terminal — cancelling a finished job
        never un-finishes it (the race a client loses gracefully).
        """
        if not self.finished:
            self.cancel_event.set()

    def mark_cancelled(self) -> None:
        """Terminal cancellation: no envelope; waiters get the error."""
        self.status = CANCELLED
        self.finished_at = time.time()
        self._event.set()

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    @property
    def finished(self) -> bool:
        """True once the job is done, failed or cancelled."""
        return self.status in (DONE, FAILED, CANCELLED)

    @property
    def cancel_requested(self) -> bool:
        """True while a cancel is pending but the job is not terminal."""
        return self.cancel_event.is_set() and not self.finished

    def wait(self, timeout: float | None = None) -> dict:
        """Block until the job finishes and return its envelope.

        Raises :class:`JobFailedError` if the job failed,
        :class:`JobCancelledError` if it was cancelled, and
        :class:`ServiceError` on timeout.
        """
        if not self._event.wait(timeout):
            raise ServiceError(
                f"job {self.job_id} did not finish within {timeout}s"
            )
        if self.status == FAILED:
            raise JobFailedError(
                f"job {self.job_id} failed: {self.error}"
            )
        if self.status == CANCELLED:
            raise JobCancelledError(f"job {self.job_id} was cancelled")
        assert self._envelope is not None
        return self._envelope

    def envelope(self) -> dict | None:
        """The result envelope, or ``None`` while unfinished/failed."""
        return self._envelope

    def to_dict(self) -> dict[str, Any]:
        """Job status document (the ``/v1/jobs/<id>`` body)."""
        payload: dict[str, Any] = {
            "type": "Job",
            "job_id": self.job_id,
            "fingerprint": self.fingerprint,
            "status": self.status,
            "spec": self.spec.to_dict(),
            "subscribers": self.subscribers,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "cancel_requested": self.cancel_requested,
        }
        if self.error is not None:
            payload["error"] = self.error
        if self.timings is not None:
            payload["timings"] = self.timings
        if self.status == DONE:
            payload["result_url"] = f"/v1/results/{self.fingerprint}"
        return payload
