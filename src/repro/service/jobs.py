"""Job objects and the durable job journal.

A job is the unit the HTTP API reports on (``GET /v1/jobs/<id>``) and
the handle :meth:`ExpansionService.submit` hands back.  Identical
concurrent submissions share one job — the fingerprint, not the job
id, is a result's durable identity (``GET /v1/results/<fp>``), so job
metadata (timestamps, status) deliberately stays *outside* the result
envelope, keeping envelopes byte-identical across surfaces.

When the service runs over a shared store (``--store-dir``), every
lifecycle transition is journalled through a :class:`JobStore` — one
canonical-JSON job document per id in a ``jobs`` namespace — so a
restarted ``repro serve`` lists prior jobs, serves their results from
the results store, and re-queues the jobs that were still pending (or
interrupted mid-run) at shutdown.
"""

from __future__ import annotations

import dataclasses
import json
import re
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..exceptions import (
    JobCancelledError,
    JobFailedError,
    JobTimeoutError,
    ServiceError,
)
from ..serialize import canonical_json
from ..store import Namespace
from .spec import ScenarioSpec

#: Job lifecycle states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
TIMEOUT = "timeout"


@dataclass
class Job:
    """One scenario submission and its (eventual) result envelope."""

    job_id: str
    spec: ScenarioSpec
    fingerprint: str
    status: str = PENDING
    error: str | None = None
    created_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    #: How many submissions this job absorbed (1 + deduplicated ones).
    subscribers: int = 1
    #: Trace id of the submission that created this job (see
    #: :mod:`repro.obs.trace`).  Journalled with the job, echoed as
    #: ``X-Repro-Trace-Id`` by the HTTP front-end, and stamped on every
    #: access-log line the job's lifecycle emits — the join key between
    #: a slow request and its per-stage ``timings`` block.
    trace_id: str | None = None
    _event: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )
    _envelope: dict | None = field(default=None, repr=False, compare=False)
    #: The envelope's canonical-JSON text, set by the service alongside
    #: :meth:`complete` so surfaces can serve the stored bytes without
    #: re-serialising multi-MB envelopes per request.
    canonical: str | None = field(default=None, repr=False, compare=False)
    #: Per-stage wall-clock block (a ``PerfReport`` envelope) recorded
    #: while the job's pipeline ran.  Job metadata only — never part of
    #: the result envelope, which stays byte-identical across surfaces.
    timings: dict | None = field(default=None, repr=False, compare=False)
    #: Set by :meth:`request_cancel`; the pipeline polls it at stage
    #: boundaries (cancellation is cooperative — a running stage body
    #: always finishes, so the stage cache never holds a torn value).
    cancel_event: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )
    #: Monotonic stamp of the job's last stage-boundary cancel poll —
    #: the liveness signal the watchdog compares against.  Runtime
    #: state only, never journalled.
    heartbeat: float | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Lifecycle (driven by the service)
    # ------------------------------------------------------------------
    # Terminal transitions are first-wins: a watchdog that timed a job
    # out must not be overwritten by the worker completing late, and
    # vice versa.

    def mark_running(self) -> None:
        """Transition pending -> running (the worker picked the job up)."""
        self.status = RUNNING
        self.started_at = time.time()

    def complete(self, envelope: dict) -> None:
        """Terminal success: record the envelope and release waiters."""
        if self.finished:
            return
        self._envelope = envelope
        self.status = DONE
        self.finished_at = time.time()
        self._event.set()

    def fail(self, error: str) -> None:
        """Terminal failure: record the message and release waiters."""
        if self.finished:
            return
        self.error = error
        self.status = FAILED
        self.finished_at = time.time()
        self._event.set()

    def mark_timed_out(self, reason: str) -> None:
        """Terminal timeout: deadline exceeded or heartbeat gone stale."""
        if self.finished:
            return
        self.error = reason
        self.status = TIMEOUT
        self.finished_at = time.time()
        self._event.set()

    def request_cancel(self) -> None:
        """Flag the job for cooperative cancellation.

        A no-op once the job is terminal — cancelling a finished job
        never un-finishes it (the race a client loses gracefully).
        """
        if not self.finished:
            self.cancel_event.set()

    def mark_cancelled(self) -> None:
        """Terminal cancellation: no envelope; waiters get the error."""
        if self.finished:
            return
        self.status = CANCELLED
        self.finished_at = time.time()
        self._event.set()

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    @property
    def finished(self) -> bool:
        """True once the job is done, failed, cancelled or timed out."""
        return self.status in (DONE, FAILED, CANCELLED, TIMEOUT)

    @property
    def cancel_requested(self) -> bool:
        """True while a cancel is pending but the job is not terminal."""
        return self.cancel_event.is_set() and not self.finished

    def wait(self, timeout: float | None = None) -> dict:
        """Block until the job finishes and return its envelope.

        Raises :class:`JobFailedError` if the job failed,
        :class:`JobTimeoutError` if it hit its deadline or went stale,
        :class:`JobCancelledError` if it was cancelled, and
        :class:`ServiceError` on (wait) timeout.
        """
        if not self._event.wait(timeout):
            raise ServiceError(
                f"job {self.job_id} did not finish within {timeout}s"
            )
        if self.status == TIMEOUT:
            raise JobTimeoutError(
                f"job {self.job_id} timed out: {self.error}"
            )
        if self.status == FAILED:
            raise JobFailedError(
                f"job {self.job_id} failed: {self.error}"
            )
        if self.status == CANCELLED:
            raise JobCancelledError(f"job {self.job_id} was cancelled")
        if self._envelope is None:
            # A job restored from the journal finished in a previous
            # process; its envelope lives in the results store.
            raise ServiceError(
                f"job {self.job_id} finished in a previous process; fetch "
                f"its envelope from the results store as {self.fingerprint}"
            )
        return self._envelope

    def envelope(self) -> dict | None:
        """The result envelope, or ``None`` while unfinished/failed."""
        return self._envelope

    def to_dict(self) -> dict[str, Any]:
        """Job status document (the ``/v1/jobs/<id>`` body)."""
        payload: dict[str, Any] = {
            "type": "Job",
            "job_id": self.job_id,
            "fingerprint": self.fingerprint,
            "status": self.status,
            "spec": self.spec.to_dict(),
            "subscribers": self.subscribers,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "cancel_requested": self.cancel_requested,
        }
        # The deadline is journalled as a *job* field: the spec's
        # to_dict stays canonical (it is embedded in result envelopes,
        # which must be byte-identical for every submitter regardless
        # of their deadline).
        if self.spec.deadline_s is not None:
            payload["deadline_s"] = self.spec.deadline_s
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
        if self.error is not None:
            payload["error"] = self.error
        if self.timings is not None:
            payload["timings"] = self.timings
        if self.status == DONE:
            payload["result_url"] = f"/v1/results/{self.fingerprint}"
        return payload

    @classmethod
    def from_document(cls, payload: dict[str, Any]) -> "Job":
        """Restore a job from its journalled :meth:`to_dict` document.

        Terminal jobs come back finished (waiters are released; the
        envelope itself lives in the results store under the job's
        fingerprint).  Derived fields (``cancel_requested``,
        ``result_url``) are recomputed, not read.
        """
        spec = ScenarioSpec.from_dict(payload["spec"])
        if payload.get("deadline_s") is not None:
            # Rehydrate the job-level deadline onto the spec so a
            # re-queued job keeps its budget across restarts.
            spec = dataclasses.replace(spec, deadline_s=payload["deadline_s"])
        job = cls(
            job_id=str(payload["job_id"]),
            spec=spec,
            fingerprint=str(payload["fingerprint"]),
            status=str(payload.get("status", PENDING)),
            error=payload.get("error"),
            created_at=float(payload.get("created_at") or time.time()),
            started_at=payload.get("started_at"),
            finished_at=payload.get("finished_at"),
            subscribers=int(payload.get("subscribers", 1)),
            trace_id=payload.get("trace_id"),
        )
        if job.status not in (PENDING, RUNNING, DONE, FAILED, CANCELLED, TIMEOUT):
            raise ServiceError(f"unknown job status {job.status!r}")
        job.timings = payload.get("timings")
        if payload.get("cancel_requested"):
            job.cancel_event.set()  # a journalled cancel survives restarts
        if job.finished:
            job._event.set()
        return job


# ---------------------------------------------------------------------------
# The durable job journal
# ---------------------------------------------------------------------------

#: Canonical job-id shape (``job-000001``); the journal's key encoding.
_JOB_ID = re.compile(r"^job-[0-9]{1,12}$")


def jobs_namespace(backend) -> Namespace:
    """The canonical job-journal namespace policy over ``backend``."""
    return Namespace(
        backend,
        key_pattern=_JOB_ID,
        key_label="job id",
        suffix=".json",
    )


class JobStore:
    """Job documents journalled through one ``jobs`` namespace.

    Writes are atomic whole-document replacements (last transition
    wins), so the journal always holds a parseable snapshot of every
    job's most recent state — exactly what a restarted service adopts.
    """

    def __init__(self, namespace: Namespace, *, breaker=None) -> None:
        self.namespace = namespace
        #: Optional :class:`~repro.resilience.breaker.CircuitBreaker`
        #: observing journal writes alongside the results store.
        self.breaker = breaker

    def put(self, job: Job) -> None:
        """Journal ``job``'s current state (best-effort on a full disk)."""
        try:
            self.namespace.put(
                job.job_id, canonical_json(job.to_dict()).encode("utf-8")
            )
        except OSError:
            if self.breaker is not None:
                self.breaker.record_failure()
        else:
            if self.breaker is not None:
                self.breaker.record_success()

    def delete(self, job_id: str) -> bool:
        """Drop one journalled document (retention pruning)."""
        return self.namespace.delete(job_id)

    def get(self, job_id: str) -> Job | None:
        """Load one journalled job by id, or ``None``.

        The cross-worker lookup path: a pre-fork sibling that never saw
        ``job_id`` submitted reads the owning worker's last journalled
        snapshot straight from the shared namespace.  Garbled or
        foreign documents read as absent, mirroring :meth:`load`.
        """
        if not _JOB_ID.match(job_id):
            return None
        data = self.namespace.get(job_id)
        if data is None:
            return None
        try:
            payload = json.loads(data.decode("utf-8"))
            if not isinstance(payload, dict) or payload.get("type") != "Job":
                return None
            return Job.from_document(payload)
        except (ServiceError, KeyError, TypeError, ValueError):
            return None

    def load(self) -> Iterator[Job]:
        """Restore every journalled job, oldest id first.

        Garbled documents (torn writes from a crash, foreign files) are
        skipped — losing one status document never blocks a restart.
        """
        def counter(job_id: str) -> int:
            try:
                return int(job_id.split("-", 1)[1])
            except ValueError:
                return 0

        for job_id in sorted(self.namespace.keys(), key=counter):
            data = self.namespace.get(job_id)
            if data is None:
                continue
            try:
                payload = json.loads(data.decode("utf-8"))
                if not isinstance(payload, dict) or payload.get("type") != "Job":
                    continue
                yield Job.from_document(payload)
            except (ServiceError, KeyError, TypeError, ValueError):
                continue

    def max_counter(self) -> int:
        """The highest numeric job-id suffix present (0 when empty)."""
        highest = 0
        for job_id in self.namespace.keys():
            try:
                highest = max(highest, int(job_id.split("-", 1)[1]))
            except ValueError:
                continue
        return highest
