"""Analytical graph projections (the GDS-style view of the store).

Community detection and network metrics do not want property maps and
relationship ids — they want compact weighted adjacency.  This module
provides :class:`WeightedGraph` (undirected, the shape Louvain and
modularity consume) and :class:`DirectedGraph` (for in/out flux), plus
projection functions that aggregate a :class:`~repro.graphdb.
property_graph.PropertyGraph`'s relationships into them.

Conventions match networkx so the test suite can use it as an oracle:
an undirected self-loop of weight *w* contributes *w* to the total
edge weight and *2 w* to its node's strength.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Iterator

from ..exceptions import GraphError
from .property_graph import PropertyGraph, Relationship

NodeKey = Hashable


class WeightedGraph:
    """An undirected weighted graph with O(1) adjacency access."""

    def __init__(self) -> None:
        self._adj: dict[NodeKey, dict[NodeKey, float]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_node(self, node: NodeKey) -> None:
        """Ensure a node exists (isolated until edges arrive)."""
        self._adj.setdefault(node, {})

    def add_edge(self, u: NodeKey, v: NodeKey, weight: float = 1.0) -> None:
        """Add (accumulate) undirected edge weight between u and v."""
        if weight < 0:
            raise GraphError("edge weights must be non-negative")
        self.add_node(u)
        self.add_node(v)
        self._adj[u][v] = self._adj[u].get(v, 0.0) + weight
        if u != v:
            self._adj[v][u] = self._adj[v].get(u, 0.0) + weight

    @classmethod
    def from_edges(
        cls, edges: Iterable[tuple[NodeKey, NodeKey, float]]
    ) -> "WeightedGraph":
        """Build from ``(u, v, weight)`` triples."""
        graph = cls()
        for u, v, weight in edges:
            graph.add_edge(u, v, weight)
        return graph

    def copy(self) -> "WeightedGraph":
        """Deep copy."""
        clone = WeightedGraph()
        for u, neighbours in self._adj.items():
            clone._adj[u] = dict(neighbours)
        return clone

    def subgraph(self, nodes: Iterable[NodeKey]) -> "WeightedGraph":
        """Induced subgraph on ``nodes`` (unknown keys are ignored)."""
        keep = {node for node in nodes if node in self._adj}
        sub = WeightedGraph()
        for u in keep:
            sub.add_node(u)
        seen: set[tuple[NodeKey, NodeKey]] = set()
        for u in keep:
            for v, weight in self._adj[u].items():
                if v not in keep or (v, u) in seen:
                    continue
                seen.add((u, v))
                sub.add_edge(u, v, weight)
        return sub

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def __contains__(self, node: NodeKey) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._adj)

    def nodes(self) -> Iterator[NodeKey]:
        """Iterate node keys (insertion order)."""
        return iter(self._adj)

    def has_edge(self, u: NodeKey, v: NodeKey) -> bool:
        """True when an edge (u, v) exists."""
        return u in self._adj and v in self._adj[u]

    def weight(self, u: NodeKey, v: NodeKey) -> float:
        """Weight of edge (u, v), 0 when absent."""
        return self._adj.get(u, {}).get(v, 0.0)

    def neighbours(self, node: NodeKey) -> dict[NodeKey, float]:
        """Adjacency map of ``node`` (includes a self-loop entry)."""
        return self._adj[node]

    def edges(self) -> Iterator[tuple[NodeKey, NodeKey, float]]:
        """Iterate each undirected edge once (loops included)."""
        seen: set[tuple[NodeKey, NodeKey]] = set()
        for u, neighbours in self._adj.items():
            for v, weight in neighbours.items():
                if (v, u) in seen:
                    continue
                seen.add((u, v))
                yield (u, v, weight)

    @property
    def edge_count(self) -> int:
        """Number of undirected edges (loops counted once)."""
        loops = sum(1 for u in self._adj if u in self._adj[u])
        non_loops = sum(
            len(neighbours) - (1 if u in neighbours else 0)
            for u, neighbours in self._adj.items()
        )
        return loops + non_loops // 2

    def degree(self, node: NodeKey) -> int:
        """Number of distinct neighbours, excluding a self-loop."""
        neighbours = self._adj[node]
        return len(neighbours) - (1 if node in neighbours else 0)

    def strength(self, node: NodeKey) -> float:
        """Weighted degree; a self-loop counts twice (networkx rule)."""
        neighbours = self._adj[node]
        total = sum(neighbours.values())
        return total + neighbours.get(node, 0.0)

    @property
    def total_weight(self) -> float:
        """Sum of edge weights, loops counted once (the *m* of modularity)."""
        return sum(self.strength(node) for node in self._adj) / 2.0

    def connected_components(self) -> list[set[NodeKey]]:
        """Connected components via BFS, largest first."""
        remaining = set(self._adj)
        components: list[set[NodeKey]] = []
        while remaining:
            seed = next(iter(remaining))
            frontier = [seed]
            component = {seed}
            remaining.discard(seed)
            while frontier:
                current = frontier.pop()
                for neighbour in self._adj[current]:
                    if neighbour in remaining:
                        remaining.discard(neighbour)
                        component.add(neighbour)
                        frontier.append(neighbour)
            components.append(component)
        components.sort(key=len, reverse=True)
        return components


class DirectedGraph:
    """A directed weighted graph (for trip flow and flux metrics)."""

    def __init__(self) -> None:
        self._out: dict[NodeKey, dict[NodeKey, float]] = {}
        self._in: dict[NodeKey, dict[NodeKey, float]] = {}

    def add_node(self, node: NodeKey) -> None:
        """Ensure a node exists."""
        self._out.setdefault(node, {})
        self._in.setdefault(node, {})

    def copy(self) -> "DirectedGraph":
        """Deep copy (node and edge insertion order preserved)."""
        clone = DirectedGraph()
        for u, successors in self._out.items():
            clone._out[u] = dict(successors)
        for v, predecessors in self._in.items():
            clone._in[v] = dict(predecessors)
        return clone

    def add_edge(self, u: NodeKey, v: NodeKey, weight: float = 1.0) -> None:
        """Add (accumulate) directed edge weight u -> v."""
        if weight < 0:
            raise GraphError("edge weights must be non-negative")
        self.add_node(u)
        self.add_node(v)
        self._out[u][v] = self._out[u].get(v, 0.0) + weight
        self._in[v][u] = self._in[v].get(u, 0.0) + weight

    def __contains__(self, node: NodeKey) -> bool:
        return node in self._out

    def __len__(self) -> int:
        return len(self._out)

    def nodes(self) -> Iterator[NodeKey]:
        """Iterate node keys."""
        return iter(self._out)

    def successors(self, node: NodeKey) -> dict[NodeKey, float]:
        """Outgoing adjacency of ``node``."""
        return self._out[node]

    def predecessors(self, node: NodeKey) -> dict[NodeKey, float]:
        """Incoming adjacency of ``node``."""
        return self._in[node]

    def weight(self, u: NodeKey, v: NodeKey) -> float:
        """Weight of edge u -> v, 0 when absent."""
        return self._out.get(u, {}).get(v, 0.0)

    def edges(self) -> Iterator[tuple[NodeKey, NodeKey, float]]:
        """Iterate directed edges."""
        for u, successors in self._out.items():
            for v, weight in successors.items():
                yield (u, v, weight)

    @property
    def edge_count(self) -> int:
        """Number of directed edges."""
        return sum(len(successors) for successors in self._out.values())

    def out_strength(self, node: NodeKey) -> float:
        """Total outgoing weight."""
        return sum(self._out[node].values())

    def in_strength(self, node: NodeKey) -> float:
        """Total incoming weight."""
        return sum(self._in[node].values())

    def flux(self, node: NodeKey) -> float:
        """Net flow: incoming minus outgoing weight."""
        return self.in_strength(node) - self.out_strength(node)

    def undirected(self) -> WeightedGraph:
        """Collapse directions, summing the two weights of each pair."""
        graph = WeightedGraph()
        for node in self._out:
            graph.add_node(node)
        done: set[tuple[NodeKey, NodeKey]] = set()
        for u, successors in self._out.items():
            for v in successors:
                if (v, u) in done or (u, v) in done:
                    continue
                done.add((u, v))
                weight = self.weight(u, v) + (self.weight(v, u) if u != v else 0.0)
                graph.add_edge(u, v, weight)
        return graph


def project_weighted(
    graph: PropertyGraph,
    rel_type: str,
    node_key: Callable[[int], NodeKey] | None = None,
    weight: Callable[[Relationship], float] | None = None,
) -> DirectedGraph:
    """Aggregate a relationship type into a directed weighted graph.

    ``node_key`` maps node ids to projection keys (identity by default);
    ``weight`` maps each relationship to its weight contribution
    (1.0 by default, i.e. counting).
    """
    key = node_key or (lambda node_id: node_id)
    weigh = weight or (lambda rel: 1.0)
    projected = DirectedGraph()
    for rel in graph.relationships(rel_type):
        projected.add_edge(key(rel.start), key(rel.end), weigh(rel))
    return projected
