"""Graph serialisation: JSON and GraphML exports.

Downstream users will want the candidate and selected graphs in tools
like Gephi or igraph; these exporters cover the two common interchange
formats for both the property graph and the analytical projections.
"""

from __future__ import annotations

import json
from pathlib import Path
from xml.sax.saxutils import escape

from .projection import DirectedGraph, WeightedGraph
from .property_graph import PropertyGraph


def property_graph_to_json(graph: PropertyGraph) -> str:
    """Serialise a property graph to a JSON document."""
    document = {
        "nodes": [
            {
                "id": node.node_id,
                "labels": sorted(node.labels),
                "properties": _jsonable(node.properties),
            }
            for node in graph.nodes()
        ],
        "relationships": [
            {
                "id": rel.rel_id,
                "type": rel.rel_type,
                "start": rel.start,
                "end": rel.end,
                "properties": _jsonable(rel.properties),
            }
            for rel in graph.relationships()
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def property_graph_from_json(text: str) -> PropertyGraph:
    """Rebuild a property graph from :func:`property_graph_to_json`."""
    document = json.loads(text)
    graph = PropertyGraph()
    for node in document["nodes"]:
        graph.create_node(
            labels=node["labels"],
            properties=node["properties"],
            node_id=node["id"],
        )
    for rel in document["relationships"]:
        graph.create_relationship(
            rel["start"], rel["type"], rel["end"], rel["properties"]
        )
    return graph


def _jsonable(properties: dict) -> dict:
    clean = {}
    for key, value in properties.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            clean[key] = value
        else:
            clean[key] = str(value)
    return clean


def weighted_graph_to_graphml(
    graph: WeightedGraph | DirectedGraph, path: str | Path | None = None
) -> str:
    """Serialise a projection to GraphML (weights as an edge key).

    Accepts either projection type; directedness is declared in the
    header.  When ``path`` is given, the document is also written there.
    """
    directed = isinstance(graph, DirectedGraph)
    lines = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        '<graphml xmlns="http://graphml.graphdrawing.org/xmlns">',
        '  <key id="w" for="edge" attr.name="weight" attr.type="double"/>',
        f'  <graph edgedefault="{"directed" if directed else "undirected"}">',
    ]
    for node in graph.nodes():
        lines.append(f'    <node id="{escape(str(node))}"/>')
    for u, v, weight in graph.edges():
        lines.append(
            f'    <edge source="{escape(str(u))}" target="{escape(str(v))}">'
            f'<data key="w">{weight}</data></edge>'
        )
    lines.append("  </graph>")
    lines.append("</graphml>")
    text = "\n".join(lines)
    if path is not None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return text
