"""An in-process property graph (the repo's Neo4j stand-in).

The model follows Neo4j's: *nodes* carry a set of labels and a property
map; *relationships* are directed, typed edges between two nodes with
their own property map.  Label and relationship-type indexes make the
access patterns the pipeline needs (all ``Station`` nodes, all ``TRIP``
relationships of a node) cheap.

Nothing here is persistent or transactional on purpose — the paper uses
the database as an analytical container, and so do we.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from ..exceptions import GraphError, MissingNodeError, MissingRelationshipError

NodeId = int
RelId = int


@dataclass
class Node:
    """A graph node: id, labels and properties."""

    node_id: NodeId
    labels: frozenset[str]
    properties: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.properties[key]

    def get(self, key: str, default: Any = None) -> Any:
        """Property lookup with default."""
        return self.properties.get(key, default)

    def has_label(self, label: str) -> bool:
        """True when the node carries ``label``."""
        return label in self.labels


@dataclass
class Relationship:
    """A directed, typed edge with properties."""

    rel_id: RelId
    rel_type: str
    start: NodeId
    end: NodeId
    properties: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.properties[key]

    def get(self, key: str, default: Any = None) -> Any:
        """Property lookup with default."""
        return self.properties.get(key, default)

    def other(self, node_id: NodeId) -> NodeId:
        """The endpoint that is not ``node_id`` (itself for loops)."""
        if node_id == self.start:
            return self.end
        if node_id == self.end:
            return self.start
        raise GraphError(f"node {node_id} is not an endpoint of rel {self.rel_id}")

    @property
    def is_loop(self) -> bool:
        """True for self-relationships."""
        return self.start == self.end


class PropertyGraph:
    """A mutable labelled property graph with index-backed scans."""

    def __init__(self) -> None:
        self._nodes: dict[NodeId, Node] = {}
        self._rels: dict[RelId, Relationship] = {}
        self._next_node_id: NodeId = 0
        self._next_rel_id: RelId = 0
        self._label_index: dict[str, set[NodeId]] = {}
        self._type_index: dict[str, set[RelId]] = {}
        self._outgoing: dict[NodeId, set[RelId]] = {}
        self._incoming: dict[NodeId, set[RelId]] = {}

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------

    def create_node(
        self,
        labels: Iterable[str] = (),
        properties: dict[str, Any] | None = None,
        node_id: NodeId | None = None,
    ) -> Node:
        """Create a node; an explicit ``node_id`` must be fresh."""
        if node_id is None:
            node_id = self._next_node_id
        if node_id in self._nodes:
            raise GraphError(f"node id {node_id} already exists")
        self._next_node_id = max(self._next_node_id, node_id + 1)
        node = Node(node_id, frozenset(labels), dict(properties or {}))
        self._nodes[node_id] = node
        for label in node.labels:
            self._label_index.setdefault(label, set()).add(node_id)
        self._outgoing[node_id] = set()
        self._incoming[node_id] = set()
        return node

    def node(self, node_id: NodeId) -> Node:
        """Fetch a node; raises :class:`MissingNodeError` when absent."""
        node = self._nodes.get(node_id)
        if node is None:
            raise MissingNodeError(f"no node with id {node_id}")
        return node

    def has_node(self, node_id: NodeId) -> bool:
        """True when the node exists."""
        return node_id in self._nodes

    def delete_node(self, node_id: NodeId) -> None:
        """Delete a node and every incident relationship."""
        node = self.node(node_id)
        for rel_id in list(self._outgoing[node_id] | self._incoming[node_id]):
            self.delete_relationship(rel_id)
        for label in node.labels:
            self._label_index[label].discard(node_id)
        del self._outgoing[node_id]
        del self._incoming[node_id]
        del self._nodes[node_id]

    def nodes(self, label: str | None = None) -> Iterator[Node]:
        """Iterate nodes, optionally restricted to one label (id order)."""
        if label is None:
            ids: Iterable[NodeId] = sorted(self._nodes)
        else:
            ids = sorted(self._label_index.get(label, ()))
        for node_id in ids:
            yield self._nodes[node_id]

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    def count_nodes(self, label: str) -> int:
        """Number of nodes with ``label``."""
        return len(self._label_index.get(label, ()))

    # ------------------------------------------------------------------
    # Relationships
    # ------------------------------------------------------------------

    def create_relationship(
        self,
        start: NodeId,
        rel_type: str,
        end: NodeId,
        properties: dict[str, Any] | None = None,
    ) -> Relationship:
        """Create a directed relationship ``start -[rel_type]-> end``."""
        if start not in self._nodes:
            raise MissingNodeError(f"start node {start} does not exist")
        if end not in self._nodes:
            raise MissingNodeError(f"end node {end} does not exist")
        rel = Relationship(
            self._next_rel_id, rel_type, start, end, dict(properties or {})
        )
        self._next_rel_id += 1
        self._rels[rel.rel_id] = rel
        self._type_index.setdefault(rel_type, set()).add(rel.rel_id)
        self._outgoing[start].add(rel.rel_id)
        self._incoming[end].add(rel.rel_id)
        return rel

    def relationship(self, rel_id: RelId) -> Relationship:
        """Fetch a relationship by id."""
        rel = self._rels.get(rel_id)
        if rel is None:
            raise MissingRelationshipError(f"no relationship with id {rel_id}")
        return rel

    def delete_relationship(self, rel_id: RelId) -> None:
        """Delete one relationship."""
        rel = self.relationship(rel_id)
        self._type_index[rel.rel_type].discard(rel_id)
        self._outgoing[rel.start].discard(rel_id)
        self._incoming[rel.end].discard(rel_id)
        del self._rels[rel_id]

    def relationships(self, rel_type: str | None = None) -> Iterator[Relationship]:
        """Iterate relationships, optionally of one type (id order)."""
        if rel_type is None:
            ids: Iterable[RelId] = sorted(self._rels)
        else:
            ids = sorted(self._type_index.get(rel_type, ()))
        for rel_id in ids:
            yield self._rels[rel_id]

    @property
    def relationship_count(self) -> int:
        """Number of relationships."""
        return len(self._rels)

    def count_relationships(self, rel_type: str) -> int:
        """Number of relationships of ``rel_type``."""
        return len(self._type_index.get(rel_type, ()))

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------

    def outgoing(
        self, node_id: NodeId, rel_type: str | None = None
    ) -> Iterator[Relationship]:
        """Relationships leaving ``node_id`` (id order)."""
        self.node(node_id)
        for rel_id in sorted(self._outgoing[node_id]):
            rel = self._rels[rel_id]
            if rel_type is None or rel.rel_type == rel_type:
                yield rel

    def incoming(
        self, node_id: NodeId, rel_type: str | None = None
    ) -> Iterator[Relationship]:
        """Relationships arriving at ``node_id`` (id order)."""
        self.node(node_id)
        for rel_id in sorted(self._incoming[node_id]):
            rel = self._rels[rel_id]
            if rel_type is None or rel.rel_type == rel_type:
                yield rel

    def incident(
        self, node_id: NodeId, rel_type: str | None = None
    ) -> Iterator[Relationship]:
        """All relationships touching ``node_id``; loops appear once."""
        self.node(node_id)
        for rel_id in sorted(self._outgoing[node_id] | self._incoming[node_id]):
            rel = self._rels[rel_id]
            if rel_type is None or rel.rel_type == rel_type:
                yield rel

    def neighbours(self, node_id: NodeId, rel_type: str | None = None) -> set[NodeId]:
        """Distinct adjacent node ids, ignoring direction and loops."""
        out: set[NodeId] = set()
        for rel in self.incident(node_id, rel_type):
            if not rel.is_loop:
                out.add(rel.other(node_id))
        return out

    def degree(
        self, node_id: NodeId, rel_type: str | None = None, count_loops: bool = False
    ) -> int:
        """Number of distinct neighbours (optionally +1 for a loop)."""
        degree = len(self.neighbours(node_id, rel_type))
        if count_loops and any(
            rel.is_loop for rel in self.incident(node_id, rel_type)
        ):
            degree += 1
        return degree

    # ------------------------------------------------------------------
    # Bulk helpers
    # ------------------------------------------------------------------

    def find_nodes(
        self, label: str, predicate: Callable[[Node], bool] | None = None
    ) -> list[Node]:
        """Nodes with ``label`` matching an optional predicate."""
        return [
            node
            for node in self.nodes(label)
            if predicate is None or predicate(node)
        ]
