"""Property-graph substrate: the in-process Neo4j stand-in."""

from .projection import (
    DirectedGraph,
    NodeKey,
    WeightedGraph,
    project_weighted,
)
from .io import (
    property_graph_from_json,
    property_graph_to_json,
    weighted_graph_to_graphml,
)
from .property_graph import Node, PropertyGraph, Relationship

__all__ = [
    "DirectedGraph",
    "Node",
    "NodeKey",
    "PropertyGraph",
    "Relationship",
    "WeightedGraph",
    "project_weighted",
    "property_graph_from_json",
    "property_graph_to_json",
    "weighted_graph_to_graphml",
]
