"""JSON-safe serialisation primitives shared by the result envelopes.

Every result type that can leave the process (see
:mod:`repro.service`) round-trips through plain dicts built from JSON
scalars, lists and string-keyed objects.  Three pieces of machinery
live here so the result modules do not have to import the service
layer:

* a node-key codec — graph node keys are ints, strings or (nested)
  tuples such as ``("station", 17)`` and ``(station_id, slice)``;
  tuples become JSON lists and are restored as tuples on decode;
* :func:`canonical_json` — the one serialisation used everywhere an
  envelope is stored, served or printed, so the Python API, the CLI's
  ``--format json`` and the HTTP front-end emit byte-identical bytes
  for the same envelope;
* section addressing (:func:`resolve_section`, :func:`paginate`) — the
  streaming/pagination layer of ``GET /v1/results/<fp>`` slices stored
  envelopes into deliverable pieces without ever re-shipping the
  multi-MB whole.
"""

from __future__ import annotations

import json
from typing import Any

#: Version stamp written into every envelope; bump on incompatible
#: envelope shape changes so stale stored results are rejected loudly.
#: v2: sweep scenarios carry per-child ``fingerprint``/``result_url``.
ENVELOPE_VERSION = 2

#: Default/maximum items per page of a paginated envelope section.
DEFAULT_PAGE_SIZE = 500
MAX_PAGE_SIZE = 10_000


def encode_node(node: Any) -> Any:
    """JSON-safe form of a graph node key (tuples become lists)."""
    if isinstance(node, tuple):
        return [encode_node(part) for part in node]
    if isinstance(node, (int, float, str, bool)) or node is None:
        return node
    raise TypeError(f"node key {node!r} is not JSON-serialisable")


def decode_node(encoded: Any) -> Any:
    """Inverse of :func:`encode_node` (lists become tuples)."""
    if isinstance(encoded, list):
        return tuple(decode_node(part) for part in encoded)
    return encoded


def encode_assignment(assignment: Any) -> list[list[Any]]:
    """A node->label mapping as a deterministically ordered pair list."""
    pairs = [
        [encode_node(node), label] for node, label in assignment.items()
    ]
    pairs.sort(key=lambda pair: json.dumps(pair[0]))
    return pairs


def decode_assignment(pairs: list[list[Any]]) -> dict[Any, int]:
    """Inverse of :func:`encode_assignment`."""
    return {decode_node(node): label for node, label in pairs}


def canonical_json(payload: Any) -> str:
    """The canonical text form of an envelope (stable key order)."""
    return json.dumps(
        payload, sort_keys=True, indent=2, ensure_ascii=False
    )


def resolve_section(envelope: Any, section: str) -> Any:
    """The subtree of ``envelope`` addressed by a dotted ``section`` path.

    Path components index dicts by key and lists by non-negative
    integer, e.g. ``outputs.run.day.slice_partition.assignment`` or
    ``outputs.sweep.scenarios.0``.  Raises :class:`KeyError` with a
    readable message when a component does not resolve — the HTTP layer
    maps that onto a 404.

    >>> resolve_section({"a": {"b": [10, 20]}}, "a.b.1")
    20
    """
    if not section:
        raise KeyError("empty section path")
    value = envelope
    walked: list[str] = []
    for part in section.split("."):
        walked.append(part)
        if isinstance(value, dict):
            if part not in value:
                raise KeyError(
                    f"no section {'.'.join(walked)!r} in this envelope"
                )
            value = value[part]
        elif isinstance(value, list):
            if not part.isdigit() or int(part) >= len(value):
                raise KeyError(
                    f"no section {'.'.join(walked)!r}: list index out of "
                    f"range (length {len(value)})"
                )
            value = value[int(part)]
        else:
            raise KeyError(
                f"no section {'.'.join(walked)!r}: "
                f"{type(value).__name__} is not traversable"
            )
    return value


def paginate(
    items: list, page: int, page_size: int = DEFAULT_PAGE_SIZE
) -> dict[str, Any]:
    """One 1-based ``page`` of ``items`` plus reassembly bookkeeping.

    The returned document carries everything a client needs to fetch
    the remaining pages and splice the section back together
    byte-identically: concatenating ``items`` across pages 1..``pages``
    reproduces the original list exactly.

    >>> page = paginate(list(range(5)), page=2, page_size=2)
    >>> (page["items"], page["pages"], page["total"])
    ([2, 3], 3, 5)
    """
    if not isinstance(items, list):
        raise ValueError(
            f"only list sections can be paginated, not {type(items).__name__}"
        )
    if page_size < 1 or page_size > MAX_PAGE_SIZE:
        raise ValueError(f"page_size must be in 1..{MAX_PAGE_SIZE}")
    pages = max(1, -(-len(items) // page_size))
    if page < 1 or page > pages:
        raise ValueError(f"page must be in 1..{pages}")
    start = (page - 1) * page_size
    return {
        "page": page,
        "pages": pages,
        "page_size": page_size,
        "total": len(items),
        "items": items[start : start + page_size],
    }


def check_envelope(payload: Any, expected_type: str) -> dict:
    """Validate an envelope's ``type`` tag before decoding it."""
    if not isinstance(payload, dict):
        raise TypeError(f"envelope must be a dict, got {type(payload).__name__}")
    found = payload.get("type")
    if found != expected_type:
        raise ValueError(
            f"expected a {expected_type!r} envelope, got {found!r}"
        )
    return payload
