"""JSON-safe serialisation primitives shared by the result envelopes.

Every result type that can leave the process (see
:mod:`repro.service`) round-trips through plain dicts built from JSON
scalars, lists and string-keyed objects.  Two pieces of machinery live
here so the result modules do not have to import the service layer:

* a node-key codec — graph node keys are ints, strings or (nested)
  tuples such as ``("station", 17)`` and ``(station_id, slice)``;
  tuples become JSON lists and are restored as tuples on decode;
* :func:`canonical_json` — the one serialisation used everywhere an
  envelope is stored, served or printed, so the Python API, the CLI's
  ``--format json`` and the HTTP front-end emit byte-identical bytes
  for the same envelope.
"""

from __future__ import annotations

import json
from typing import Any

#: Version stamp written into every envelope; bump on incompatible
#: envelope shape changes so stale stored results are rejected loudly.
ENVELOPE_VERSION = 1


def encode_node(node: Any) -> Any:
    """JSON-safe form of a graph node key (tuples become lists)."""
    if isinstance(node, tuple):
        return [encode_node(part) for part in node]
    if isinstance(node, (int, float, str, bool)) or node is None:
        return node
    raise TypeError(f"node key {node!r} is not JSON-serialisable")


def decode_node(encoded: Any) -> Any:
    """Inverse of :func:`encode_node` (lists become tuples)."""
    if isinstance(encoded, list):
        return tuple(decode_node(part) for part in encoded)
    return encoded


def encode_assignment(assignment: Any) -> list[list[Any]]:
    """A node->label mapping as a deterministically ordered pair list."""
    pairs = [
        [encode_node(node), label] for node, label in assignment.items()
    ]
    pairs.sort(key=lambda pair: json.dumps(pair[0]))
    return pairs


def decode_assignment(pairs: list[list[Any]]) -> dict[Any, int]:
    """Inverse of :func:`encode_assignment`."""
    return {decode_node(node): label for node, label in pairs}


def canonical_json(payload: Any) -> str:
    """The canonical text form of an envelope (stable key order)."""
    return json.dumps(
        payload, sort_keys=True, indent=2, ensure_ascii=False
    )


def check_envelope(payload: Any, expected_type: str) -> dict:
    """Validate an envelope's ``type`` tag before decoding it."""
    if not isinstance(payload, dict):
        raise TypeError(f"envelope must be a dict, got {type(payload).__name__}")
    found = payload.get("type")
    if found != expected_type:
        raise ValueError(
            f"expected a {expected_type!r} envelope, got {found!r}"
        )
    return payload
