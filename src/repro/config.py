"""Configuration objects for the expansion pipeline.

The paper fixes four rule thresholds (Section IV-B):

* Rule 1, *Cluster-Boundary*: locations inside one cluster may be at most
  100 m apart (complete-linkage diameter).
* Rule 2, *Cluster-Proximity*: cluster centroids must be at least 50 m
  apart.
* Rule 3, *Degree-Threshold*: a candidate's degree must reach the minimum
  degree found among the fixed stations.
* Rule 4, *Secondary-Distance*: a new station must be at least 250 m from
  every station.

All of them are exposed here so that the ablation benches can sweep them.
Distances are metres throughout the package unless a name says otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping

from .exceptions import ConfigError

#: Mean Earth radius in metres (IUGG value), used by every haversine call.
EARTH_RADIUS_M = 6_371_008.8


@dataclass(frozen=True)
class ClusteringConfig:
    """Parameters for the HAC condensation stage (paper Section IV-A).

    Attributes
    ----------
    cluster_boundary_m:
        Rule 1 — maximum distance between two locations in one cluster.
        Complete linkage cut at this threshold enforces it by construction.
    preassign_radius_m:
        Locations within this radius of a fixed station are assigned to
        that station before clustering (paper: 50 m).
    linkage:
        Linkage criterion; the paper uses ``"complete"``.  ``"single"``
        and ``"average"`` are provided for the ablation study.
    """

    cluster_boundary_m: float = 100.0
    preassign_radius_m: float = 50.0
    linkage: str = "complete"

    def __post_init__(self) -> None:
        if self.cluster_boundary_m <= 0:
            raise ConfigError("cluster_boundary_m must be positive")
        if self.preassign_radius_m < 0:
            raise ConfigError("preassign_radius_m must be non-negative")
        if self.linkage not in ("complete", "single", "average"):
            raise ConfigError(f"unknown linkage criterion: {self.linkage!r}")


@dataclass(frozen=True)
class SelectionConfig:
    """Parameters for Algorithm 1 (paper Section IV-B).

    Attributes
    ----------
    centroid_proximity_m:
        Rule 2 — minimum spacing between cluster centroids (paper: 50 m).
    secondary_distance_m:
        Rule 4 — minimum distance from a new station to any other
        station (paper: 250 m; Algorithm 1 writes it as 0.25 km).
    degree_threshold:
        Rule 3 override.  ``None`` (the default, and the paper's setting)
        means "use the minimum degree among the fixed stations".
    """

    centroid_proximity_m: float = 50.0
    secondary_distance_m: float = 250.0
    degree_threshold: int | None = None

    def __post_init__(self) -> None:
        if self.centroid_proximity_m < 0:
            raise ConfigError("centroid_proximity_m must be non-negative")
        if self.secondary_distance_m < 0:
            raise ConfigError("secondary_distance_m must be non-negative")
        if self.degree_threshold is not None and self.degree_threshold < 0:
            raise ConfigError("degree_threshold must be non-negative")


@dataclass(frozen=True)
class CommunityConfig:
    """Parameters for Louvain community detection (paper Section IV-C)."""

    resolution: float = 1.0
    seed: int = 7
    max_passes: int = 50

    def __post_init__(self) -> None:
        if self.resolution <= 0:
            raise ConfigError("resolution must be positive")
        if self.max_passes <= 0:
            raise ConfigError("max_passes must be positive")


@dataclass(frozen=True)
class TemporalCommunityConfig(CommunityConfig):
    """Parameters for multislice (temporal) community detection.

    ``coupling`` is the inter-slice coupling weight ω joining copies of
    the same station in adjacent (circularly ordered) time slices,
    expressed as a fraction of the station's mean incident trip weight.
    Smaller values let slices diverge — more, finer communities and
    higher modularity — which is exactly the paper's observed trend from
    G_Basic to G_Hour.
    """

    coupling: float = 0.12

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.coupling < 0:
            raise ConfigError("coupling must be non-negative")


@dataclass(frozen=True)
class PipelineConfig:
    """Bundle of every stage's configuration, with the paper's defaults."""

    clustering: ClusteringConfig = field(default_factory=ClusteringConfig)
    selection: SelectionConfig = field(default_factory=SelectionConfig)
    community: CommunityConfig = field(default_factory=CommunityConfig)
    temporal: TemporalCommunityConfig = field(
        default_factory=TemporalCommunityConfig
    )

    @classmethod
    def validate_override_path(cls, path: str) -> tuple[str, str]:
        """Split a dotted override key, rejecting unknown targets.

        Every consumer of ``section.field`` override keys — sweep-grid
        axes, :meth:`derive`, and ``repro.service.ScenarioSpec`` — goes
        through this one check, so an unknown key always fails with the
        same clear :class:`ConfigError` instead of being dropped.
        """
        sections = {f.name: f.default_factory for f in fields(cls)}
        section_name, _, field_name = path.partition(".")
        if section_name not in sections or not field_name:
            raise ConfigError(
                f"unknown config path {path!r}; expected "
                f"'<section>.<field>' with section in {sorted(sections)}"
            )
        valid_fields = sorted(
            f.name for f in fields(sections[section_name]())
        )
        if field_name not in valid_fields:
            raise ConfigError(
                f"section {section_name!r} has no field {field_name!r}; "
                f"valid fields: {valid_fields}"
            )
        return section_name, field_name

    def derive(self, overrides: Mapping[str, Any]) -> "PipelineConfig":
        """A copy with dotted-path ``overrides`` applied.

        Keys name a section and a field, e.g. ``"temporal.coupling"``
        or ``"selection.secondary_distance_m"``.  Sweep grids are built
        this way (see :func:`repro.pipeline.config_grid`).  Unknown
        keys raise :class:`ConfigError`; invalid values are rejected by
        the section's own ``__post_init__`` validation.

        >>> PAPER_CONFIG.derive({"temporal.coupling": 0.2}).temporal.coupling
        0.2
        """
        sections = {f.name: getattr(self, f.name) for f in fields(self)}
        for path, value in overrides.items():
            section_name, field_name = self.validate_override_path(path)
            section = sections[section_name]
            sections[section_name] = replace(section, **{field_name: value})
        return PipelineConfig(**sections)


#: The configuration used for every headline experiment in the paper.
PAPER_CONFIG = PipelineConfig()
