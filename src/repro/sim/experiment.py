"""Before/after expansion experiments on the fleet simulator.

:func:`compare_networks` replays identical demand against the original
92-station network and the expanded one, optionally with the
community-driven rebalancing plan active, and reports the service-rate
deltas — the operational pay-off the paper's optimiser promises.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime

from ..analysis import RebalancingPlan
from ..cluster import NearestStationAssigner
from ..core.expansion import ExpansionResult
from ..geo import GeoPoint
from .fleet import FleetSimulator, SimulationResult, requests_from_rentals


@dataclass(frozen=True)
class NetworkComparison:
    """Service metrics for one network configuration."""

    name: str
    n_stations: int
    result: SimulationResult


def _station_requests(
    result: ExpansionResult,
    station_points: dict[int, GeoPoint],
    cache: dict | None = None,
):
    """Map the cleaned rentals onto an arbitrary station set.

    Building the assigner and sweeping every cleaned location is the
    expensive part of a comparison, and several comparisons replay the
    same station set (e.g. "expanded" with and without rebalancing).
    ``cache`` memoises the request list per (cleaned dataset, station
    set with coordinates) so each set pays for one assignment pass;
    pass a dict kept across calls to share the pass between whole
    before/after experiments over the same result.
    """
    key = (id(result.cleaned), frozenset(station_points.items()))
    if cache is not None and key in cache:
        # The entry pins the cleaned dataset it was built from, so the
        # id() in the key cannot be recycled while the entry lives;
        # the identity check guards the impossible-in-practice rest.
        cached_source, requests = cache[key]
        if cached_source is result.cleaned:
            return requests
    assigner = NearestStationAssigner(station_points)
    location_to_station = {
        record.location_id: assigner.nearest(record.point())[0]
        for record in result.cleaned.locations()
    }
    requests = requests_from_rentals(
        result.cleaned.rentals(), location_to_station
    )
    if cache is not None:
        cache[key] = (result.cleaned, requests)
    return requests


def plan_to_hook(plan: RebalancingPlan):
    """Adapt a :class:`RebalancingPlan` into a simulator hook.

    The paper's plan is a *weekend shift*: bikes move towards the
    leisure communities on Friday night and must come back before the
    working week, or the fleet strands where weekday demand is low.
    The hook therefore applies the transfers forward on Fridays and in
    reverse on Sundays.
    """

    def _moves(reverse: bool) -> list[tuple[int, int, int]]:
        moves: list[tuple[int, int, int]] = []
        for transfer in plan.transfers:
            pickups = transfer.pickup_stations or []
            dropoffs = transfer.dropoff_stations or []
            if not pickups or not dropoffs:
                continue
            per_pair = max(1, transfer.n_bikes // len(pickups))
            for index, pickup in enumerate(pickups):
                dropoff = dropoffs[index % len(dropoffs)]
                if reverse:
                    moves.append((dropoff, pickup, per_pair))
                else:
                    moves.append((pickup, dropoff, per_pair))
        return moves

    def hook(now: datetime, bikes: dict[int, int]) -> list[tuple[int, int, int]]:
        if now.weekday() == 4:  # Friday night: stock the weekend spots.
            return _moves(reverse=False)
        if now.weekday() == 6:  # Sunday night: bring bikes back.
            return _moves(reverse=True)
        return []

    return hook


def compare_networks(
    result: ExpansionResult,
    n_bikes: int = 95,
    walk_radius_m: float = 300.0,
    rebalancing_plan: RebalancingPlan | None = None,
    request_cache: dict | None = None,
) -> list[NetworkComparison]:
    """Replay demand against the original and expanded networks.

    Returns comparisons for: the original fixed stations, the expanded
    network, and (when a plan is given) the expanded network with
    Friday-night rebalancing.  The two expanded comparisons share one
    nearest-station assignment pass; pass ``request_cache`` (any dict
    you keep around) to share passes across repeated calls too.
    """
    comparisons: list[NetworkComparison] = []
    if request_cache is None:
        request_cache = {}

    original_points = {
        sid: result.network.stations[sid].point
        for sid in result.network.fixed_station_ids
    }
    expanded_points = {
        sid: station.point for sid, station in result.network.stations.items()
    }

    for name, points, hook in (
        ("original", original_points, None),
        ("expanded", expanded_points, None),
        (
            "expanded+rebalancing",
            expanded_points,
            plan_to_hook(rebalancing_plan) if rebalancing_plan else None,
        ),
    ):
        if name.endswith("rebalancing") and hook is None:
            continue
        requests = _station_requests(result, points, cache=request_cache)
        demand_weights: dict[int, float] = {}
        for request in requests:
            demand_weights[request.origin] = (
                demand_weights.get(request.origin, 0.0) + 1.0
            )
        simulator = FleetSimulator(
            points, n_bikes, walk_radius_m=walk_radius_m, rebalancing=hook
        )
        outcome = simulator.run(
            requests, simulator.initial_bikes(demand_weights)
        )
        comparisons.append(
            NetworkComparison(
                name=name, n_stations=len(points), result=outcome
            )
        )
    return comparisons
