"""A discrete-event fleet simulator over a station network.

The paper motivates its expansion and community analysis with
operational efficiency — reduced bottlenecks, better redistribution —
but evaluates only on historical data.  This simulator closes the loop:
replay the trip demand against a *station-based* service model and
measure how much of it each network configuration can actually serve.

Model (documented simplifications):

* bikes live at stations; a request at station *s* is served when *s*
  holds a bike, or when some station within ``walk_radius_m`` does
  (counted separately as a walk-served request);
* served trips occupy a bike until the trip's duration elapses, then
  the bike docks at the destination station;
* unserved requests are lost (no queueing) — the paper's riders simply
  walk away;
* an optional nightly rebalancing hook moves bikes between stations.

This is deliberately a service-level model, not a traffic simulation:
it answers "how often does a rider find no bike nearby?", which is the
quantity the expansion is supposed to improve.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import Callable, Iterable, Sequence

from ..geo import GeoPoint, GridIndex


@dataclass(frozen=True)
class TripRequest:
    """One demand event: a rider wants a bike at ``origin``."""

    requested_at: datetime
    origin: int
    destination: int
    duration_minutes: float


@dataclass
class SimulationResult:
    """Aggregate service metrics of one run."""

    n_requests: int = 0
    served_direct: int = 0
    served_walk: int = 0
    unserved: int = 0
    stockout_minutes: dict[int, float] = field(default_factory=dict)
    bikes_moved_by_rebalancing: int = 0

    @property
    def served(self) -> int:
        """Requests served, directly or after a walk."""
        return self.served_direct + self.served_walk

    @property
    def service_rate(self) -> float:
        """Share of requests served."""
        if self.n_requests == 0:
            return 1.0
        return self.served / self.n_requests

    @property
    def walk_rate(self) -> float:
        """Share of served requests that required a walk."""
        if self.served == 0:
            return 0.0
        return self.served_walk / self.served


#: A rebalancing hook: given (date, bikes-per-station), return a list of
#: (from_station, to_station, n_bikes) moves to apply.
RebalancingHook = Callable[[datetime, dict[int, int]], list[tuple[int, int, int]]]


class FleetSimulator:
    """Replays trip requests against a station network."""

    def __init__(
        self,
        station_points: dict[int, GeoPoint],
        n_bikes: int,
        walk_radius_m: float = 300.0,
        rebalancing: RebalancingHook | None = None,
        rebalancing_hour: int = 3,
    ) -> None:
        if not station_points:
            raise ValueError("need at least one station")
        if n_bikes <= 0:
            raise ValueError("need a positive fleet size")
        self._stations = dict(station_points)
        self._n_bikes = n_bikes
        self._walk_radius_m = walk_radius_m
        self._rebalancing = rebalancing
        self._rebalancing_hour = rebalancing_hour
        self._index: GridIndex[int] = GridIndex(cell_m=max(100.0, walk_radius_m))
        for station_id, point in self._stations.items():
            self._index.insert(station_id, point)

    # ------------------------------------------------------------------
    # Initial fleet placement
    # ------------------------------------------------------------------

    def initial_bikes(
        self, weights: dict[int, float] | None = None
    ) -> dict[int, int]:
        """Distribute the fleet over stations.

        With ``weights`` (e.g. historical demand) the split is
        proportional via largest remainder; otherwise round-robin over
        station ids.
        """
        bikes = {station_id: 0 for station_id in self._stations}
        ids = sorted(self._stations)
        if weights is None:
            for i in range(self._n_bikes):
                bikes[ids[i % len(ids)]] += 1
            return bikes
        total = sum(max(0.0, weights.get(sid, 0.0)) for sid in ids) or 1.0
        shares = {
            sid: self._n_bikes * max(0.0, weights.get(sid, 0.0)) / total
            for sid in ids
        }
        for sid in ids:
            bikes[sid] = int(shares[sid])
        remainder = self._n_bikes - sum(bikes.values())
        for sid in sorted(ids, key=lambda s: shares[s] - int(shares[s]), reverse=True):
            if remainder <= 0:
                break
            bikes[sid] += 1
            remainder -= 1
        return bikes

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def run(
        self,
        requests: Sequence[TripRequest],
        initial_bikes: dict[int, int] | None = None,
    ) -> SimulationResult:
        """Replay ``requests`` (sorted by time) and return the metrics."""
        bikes = dict(initial_bikes) if initial_bikes else self.initial_bikes()
        unknown = set(bikes) - set(self._stations)
        if unknown:
            raise ValueError(f"bikes placed at unknown stations: {sorted(unknown)}")
        result = SimulationResult()
        # (arrival_time, sequence, destination) of in-flight bikes.
        in_flight: list[tuple[datetime, int, int]] = []
        sequence = 0
        last_rebalance_date = None

        for request in sorted(requests, key=lambda r: r.requested_at):
            now = request.requested_at
            # Land any bikes that have arrived.
            while in_flight and in_flight[0][0] <= now:
                _, _, destination = heapq.heappop(in_flight)
                bikes[destination] = bikes.get(destination, 0) + 1
            # Nightly rebalancing.
            if (
                self._rebalancing is not None
                and now.hour >= self._rebalancing_hour
                and last_rebalance_date != now.date()
            ):
                last_rebalance_date = now.date()
                for from_station, to_station, n_moved in self._rebalancing(
                    now, dict(bikes)
                ):
                    moved = min(n_moved, bikes.get(from_station, 0))
                    bikes[from_station] -= moved
                    bikes[to_station] = bikes.get(to_station, 0) + moved
                    result.bikes_moved_by_rebalancing += moved

            result.n_requests += 1
            source = self._find_bike(request.origin, bikes)
            if source is None:
                result.unserved += 1
                result.stockout_minutes[request.origin] = (
                    result.stockout_minutes.get(request.origin, 0.0)
                    + request.duration_minutes
                )
                continue
            if source == request.origin:
                result.served_direct += 1
            else:
                result.served_walk += 1
            bikes[source] -= 1
            arrival = now + timedelta(minutes=request.duration_minutes)
            sequence += 1
            heapq.heappush(in_flight, (arrival, sequence, request.destination))
        return result

    def _find_bike(self, origin: int, bikes: dict[int, int]) -> int | None:
        """The station to take a bike from, or None when stocked out."""
        if bikes.get(origin, 0) > 0:
            return origin
        for station_id, _ in self._index.within(
            self._stations[origin], self._walk_radius_m
        ):
            if bikes.get(station_id, 0) > 0:
                return station_id
        return None


def requests_from_rentals(
    rentals: Iterable,
    location_to_station: dict[int, int],
) -> list[TripRequest]:
    """Convert cleaned rental records into station-level requests."""
    requests = [
        TripRequest(
            requested_at=rental.started_at,
            origin=location_to_station[rental.rental_location_id],
            destination=location_to_station[rental.return_location_id],
            duration_minutes=max(1.0, rental.duration_minutes),
        )
        for rental in rentals
    ]
    requests.sort(key=lambda r: r.requested_at)
    return requests
