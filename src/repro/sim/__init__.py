"""Fleet simulation substrate: service-level evaluation of expansions."""

from .experiment import NetworkComparison, compare_networks, plan_to_hook
from .fleet import (
    FleetSimulator,
    SimulationResult,
    TripRequest,
    requests_from_rentals,
)

__all__ = [
    "FleetSimulator",
    "NetworkComparison",
    "SimulationResult",
    "TripRequest",
    "compare_networks",
    "plan_to_hook",
    "requests_from_rentals",
]
