"""Clustering substrate: HAC, geographic condensation and reassignment."""

from .alternatives import grid_condense, kmeans_condense
from .assignments import NearestStationAssigner
from .hac import (
    GeographicClustering,
    LocationCluster,
    cluster_diameter_m,
    cluster_locations,
    pairwise_haversine_matrix,
    preassign_to_stations,
    proximity_components,
)
from .linkage import (
    Dendrogram,
    LINKAGE_AVERAGE,
    LINKAGE_COMPLETE,
    LINKAGE_SINGLE,
    Merge,
    cluster_at_threshold,
    linkage_cluster,
)

__all__ = [
    "Dendrogram",
    "GeographicClustering",
    "LINKAGE_AVERAGE",
    "LINKAGE_COMPLETE",
    "LINKAGE_SINGLE",
    "LocationCluster",
    "Merge",
    "NearestStationAssigner",
    "cluster_at_threshold",
    "cluster_diameter_m",
    "cluster_locations",
    "grid_condense",
    "kmeans_condense",
    "linkage_cluster",
    "pairwise_haversine_matrix",
    "preassign_to_stations",
    "proximity_components",
]
