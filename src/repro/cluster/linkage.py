"""Hierarchical agglomerative clustering, from scratch.

The implementation uses the nearest-neighbour-chain algorithm with
Lance-Williams distance updates, which is exact for the *reducible*
linkage criteria implemented here (complete, single, average) and runs
in O(n^2) time over a full distance matrix.

The paper needs the dendrogram only to cut it at a distance threshold
(100 m, the Cluster-Boundary rule).  Because complete/single/average
linkage are monotone, a threshold cut is simply the union-find over all
merges whose height does not exceed the threshold.

Numpy accelerates the matrix row operations when it is installed; a
pure-Python fallback over lists of rows keeps the module fully
functional without it (same algorithm, same merge order).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

try:  # optional: the pure-Python fallback below covers its absence
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None

from ..exceptions import ClusteringError

LINKAGE_COMPLETE = "complete"
LINKAGE_SINGLE = "single"
LINKAGE_AVERAGE = "average"

_LINKAGES = (LINKAGE_COMPLETE, LINKAGE_SINGLE, LINKAGE_AVERAGE)


@dataclass(frozen=True)
class Merge:
    """One dendrogram merge: clusters ``a`` and ``b`` joined at ``height``.

    ``a`` and ``b`` are cluster indices: 0..n-1 are the input points,
    n..2n-2 the clusters created by earlier merges (scipy convention).
    """

    a: int
    b: int
    height: float
    size: int


@dataclass(frozen=True)
class Dendrogram:
    """A full agglomeration history over ``n_points`` points."""

    n_points: int
    merges: tuple[Merge, ...]

    def cut(self, height: float) -> list[list[int]]:
        """Clusters after applying every merge with height <= ``height``.

        Returns a partition of ``range(n_points)`` as lists of point
        indices, each sorted, ordered by their smallest member.
        """
        parent = list(range(self.n_points))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        # Map dendrogram cluster index -> representative point, in the
        # order the merges created those indices.
        representative: dict[int, int] = {i: i for i in range(self.n_points)}
        next_index = self.n_points
        for merge in self.merges:
            representative[next_index] = representative[merge.a]
            next_index += 1

        # Monotone linkages guarantee a merge's descendants are no
        # higher than it, so a flat union over qualifying merges
        # reproduces the threshold cut exactly.
        for merge in self.merges:
            if merge.height <= height:
                root_a = find(representative[merge.a])
                root_b = find(representative[merge.b])
                if root_a != root_b:
                    parent[root_b] = root_a

        groups: dict[int, list[int]] = {}
        for point in range(self.n_points):
            groups.setdefault(find(point), []).append(point)
        clusters = [sorted(members) for members in groups.values()]
        clusters.sort(key=lambda members: members[0])
        return clusters


def _validate_matrix(distances):
    if np is not None:
        matrix = np.asarray(distances, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ClusteringError("distance matrix must be square")
        if matrix.shape[0] == 0:
            raise ClusteringError("distance matrix must be non-empty")
        if np.any(matrix < 0):
            raise ClusteringError("distances must be non-negative")
        if not np.allclose(matrix, matrix.T, rtol=1e-8, atol=1e-8):
            raise ClusteringError("distance matrix must be symmetric")
        return matrix
    rows = [[float(value) for value in row] for row in distances]
    n = len(rows)
    if n == 0:
        raise ClusteringError("distance matrix must be non-empty")
    if any(len(row) != n for row in rows):
        raise ClusteringError("distance matrix must be square")
    for i in range(n):
        for j in range(n):
            if rows[i][j] < 0:
                raise ClusteringError("distances must be non-negative")
            # np.allclose's default comparison, spelled out.
            if abs(rows[i][j] - rows[j][i]) > 1e-8 + 1e-8 * abs(rows[j][i]):
                raise ClusteringError("distance matrix must be symmetric")
    return rows


def linkage_cluster(
    distances: np.ndarray,
    linkage: str = LINKAGE_COMPLETE,
    *,
    validate: bool = True,
) -> Dendrogram:
    """Run HAC over a full symmetric distance matrix.

    Parameters
    ----------
    distances:
        (n, n) symmetric matrix of pairwise dissimilarities.
    linkage:
        ``"complete"`` (paper's choice), ``"single"`` or ``"average"``.
    validate:
        Check shape/symmetry/non-negativity first.  Trusted internal
        callers building the matrix themselves (symmetric by
        construction, e.g. :func:`repro.cluster.hac.cluster_locations`)
        pass ``False``; validation never changes the result for valid
        input.

    Returns
    -------
    Dendrogram
        The n-1 merges in the order the algorithm found them; heights
        are the linkage distances.
    """
    if linkage not in _LINKAGES:
        raise ClusteringError(f"unknown linkage: {linkage!r}")
    if np is None:
        if validate:
            matrix_rows = _validate_matrix(distances)
        else:
            matrix_rows = [[float(value) for value in row] for row in distances]
        return _linkage_cluster_pure(matrix_rows, linkage)
    if validate:
        matrix = _validate_matrix(distances).copy()
    else:
        matrix = np.asarray(distances, dtype=np.float64).copy()
    n = matrix.shape[0]
    if n == 1:
        return Dendrogram(n_points=1, merges=())

    # Work in-place on the matrix; the diagonal must never be selected.
    np.fill_diagonal(matrix, np.inf)
    active = np.ones(n, dtype=bool)
    sizes = np.ones(n, dtype=np.int64)
    # cluster_label[i] is the dendrogram index of the cluster whose
    # working row is i.
    cluster_label = list(range(n))
    next_label = n
    merges: list[Merge] = []
    chain: list[int] = []

    for _ in range(n - 1):
        if not chain:
            chain.append(int(np.flatnonzero(active)[0]))
        while True:
            a = chain[-1]
            row = np.where(active, matrix[a], np.inf)
            row[a] = np.inf
            b = int(np.argmin(row))
            if len(chain) > 1 and b == chain[-2]:
                break
            chain.append(b)
        b = chain.pop()
        a = chain.pop()
        height = float(matrix[a, b])

        # Lance-Williams update into row a.
        if linkage == LINKAGE_COMPLETE:
            new_row = np.maximum(matrix[a], matrix[b])
        elif linkage == LINKAGE_SINGLE:
            new_row = np.minimum(matrix[a], matrix[b])
        else:  # average
            total = sizes[a] + sizes[b]
            new_row = (sizes[a] * matrix[a] + sizes[b] * matrix[b]) / total
        new_row[a] = np.inf
        matrix[a, :] = new_row
        matrix[:, a] = new_row
        active[b] = False
        merges.append(
            Merge(
                a=cluster_label[a],
                b=cluster_label[b],
                height=height,
                size=int(sizes[a] + sizes[b]),
            )
        )
        sizes[a] += sizes[b]
        cluster_label[a] = next_label
        next_label += 1

    return Dendrogram(n_points=n, merges=tuple(merges))


def _linkage_cluster_pure(matrix: list[list[float]], linkage: str) -> Dendrogram:
    """The nearest-neighbour-chain algorithm over plain list rows.

    Mirrors the numpy path operation for operation (same chain walk,
    same Lance-Williams updates, same tie-breaking argmin) so the two
    produce identical dendrograms for identical input values.
    """
    n = len(matrix)
    if n == 1:
        return Dendrogram(n_points=1, merges=())
    inf = math.inf
    for i in range(n):
        matrix[i][i] = inf
    active = [True] * n
    sizes = [1] * n
    cluster_label = list(range(n))
    next_label = n
    merges: list[Merge] = []
    chain: list[int] = []

    for _ in range(n - 1):
        if not chain:
            chain.append(next(i for i in range(n) if active[i]))
        while True:
            a = chain[-1]
            row_a = matrix[a]
            # argmin over active columns, first index wins ties (as
            # np.argmin does).
            b = -1
            best = inf
            for j in range(n):
                if active[j] and j != a and row_a[j] < best:
                    best = row_a[j]
                    b = j
            if b < 0:  # all remaining distances are inf: merge any pair
                b = next(j for j in range(n) if active[j] and j != a)
            if len(chain) > 1 and b == chain[-2]:
                break
            chain.append(b)
        b = chain.pop()
        a = chain.pop()
        height = float(matrix[a][b])

        row_a, row_b = matrix[a], matrix[b]
        if linkage == LINKAGE_COMPLETE:
            new_row = [max(x, y) for x, y in zip(row_a, row_b)]
        elif linkage == LINKAGE_SINGLE:
            new_row = [min(x, y) for x, y in zip(row_a, row_b)]
        else:  # average
            total = sizes[a] + sizes[b]
            new_row = [
                (sizes[a] * x + sizes[b] * y) / total
                for x, y in zip(row_a, row_b)
            ]
        new_row[a] = inf
        matrix[a] = new_row
        for i in range(n):
            matrix[i][a] = new_row[i]
        active[b] = False
        merges.append(
            Merge(
                a=cluster_label[a],
                b=cluster_label[b],
                height=height,
                size=sizes[a] + sizes[b],
            )
        )
        sizes[a] += sizes[b]
        cluster_label[a] = next_label
        next_label += 1

    return Dendrogram(n_points=n, merges=tuple(merges))


def cluster_at_threshold(
    distances: np.ndarray, threshold: float, linkage: str = LINKAGE_COMPLETE
) -> list[list[int]]:
    """HAC + threshold cut in one call."""
    return linkage_cluster(distances, linkage).cut(threshold)
