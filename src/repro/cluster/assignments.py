"""Nearest-station reassignment (paper Section IV-B, step 3).

After selection, every location belonging to an unconverted candidate
cluster is redirected to the nearest station (pre-existing or newly
selected), so the total number of trips is preserved while the node set
shrinks to the station set.
"""

from __future__ import annotations

from ..exceptions import ClusteringError
from ..geo import GeoPoint, GridIndex


class NearestStationAssigner:
    """Answers "which station serves this point?" queries."""

    def __init__(self, station_points: dict[int, GeoPoint]) -> None:
        if not station_points:
            raise ClusteringError("cannot assign against zero stations")
        self._index: GridIndex[int] = GridIndex(cell_m=250.0)
        for station_id, point in station_points.items():
            self._index.insert(station_id, point)

    def nearest(self, point: GeoPoint) -> tuple[int, float]:
        """The nearest station id and its distance in metres."""
        return self._index.nearest(point)

    def assign_all(self, points: dict[int, GeoPoint]) -> dict[int, int]:
        """Map each input id to its nearest station id (batch query)."""
        point_ids = list(points)
        results = self._index.nearest_many([points[pid] for pid in point_ids])
        return {
            point_id: station_id
            for point_id, (station_id, _) in zip(point_ids, results)
        }
