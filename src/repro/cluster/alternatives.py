"""Alternative condensation strategies (the paper's future work).

"Further research should also investigate the effect of different graph
optimisation strategies" — this module provides two standard
alternatives to complete-linkage HAC for condensing dockless locations:

* :func:`grid_condense` — snap locations to a uniform grid of cell size
  ``cell_m`` and merge everything sharing a cell: O(n), no geometry
  guarantees (a cluster's diameter can approach ``cell_m * sqrt(2)``
  and near-cell-border neighbours split);
* :func:`kmeans_condense` — Lloyd's algorithm with k-means++ seeding on
  the locally projected plane: balanced clusters, but no diameter bound
  at all.

Both return the same :class:`~repro.cluster.hac.GeographicClustering`
shape as the HAC path, so the selection stage and the ablation bench
can consume them interchangeably.
"""

from __future__ import annotations

import math
import random

from ..config import ClusteringConfig
from ..geo import GeoPoint, centroid, local_projector, meters_per_degree
from .hac import GeographicClustering, LocationCluster, preassign_to_stations


def grid_condense(
    location_points: dict[int, GeoPoint],
    station_points: dict[int, GeoPoint],
    cell_m: float = 100.0,
    config: ClusteringConfig | None = None,
) -> GeographicClustering:
    """Condense by snapping to a ``cell_m`` uniform grid."""
    cfg = config or ClusteringConfig()
    station_members, leftover = preassign_to_stations(
        location_points, station_points, cfg.preassign_radius_m
    )
    reference_lat = (
        next(iter(location_points.values())).lat if location_points else 53.35
    )
    per_lat, per_lon = meters_per_degree(reference_lat)
    lat_step = cell_m / per_lat
    lon_step = cell_m / per_lon

    cells: dict[tuple[int, int], list[int]] = {}
    for location_id in leftover:
        point = location_points[location_id]
        key = (
            math.floor(point.lat / lat_step),
            math.floor(point.lon / lon_step),
        )
        cells.setdefault(key, []).append(location_id)

    result = GeographicClustering(station_members=station_members)
    for cluster_id, key in enumerate(sorted(cells)):
        members = sorted(cells[key])
        result.clusters.append(
            LocationCluster(
                cluster_id=cluster_id,
                centroid=centroid(location_points[i] for i in members),
                member_location_ids=members,
            )
        )
    return result


def _kmeans_plus_plus(
    points: list[tuple[float, float]], k: int, rng: random.Random
) -> list[tuple[float, float]]:
    """k-means++ initial centres."""
    centres = [points[rng.randrange(len(points))]]
    distances = [math.inf] * len(points)
    while len(centres) < k:
        cx, cy = centres[-1]
        total = 0.0
        for i, (x, y) in enumerate(points):
            d = (x - cx) ** 2 + (y - cy) ** 2
            if d < distances[i]:
                distances[i] = d
            total += distances[i]
        if total <= 0:
            centres.append(points[rng.randrange(len(points))])
            continue
        target = rng.random() * total
        running = 0.0
        chosen = len(points) - 1
        for i, d in enumerate(distances):
            running += d
            if running >= target:
                chosen = i
                break
        centres.append(points[chosen])
    return centres


def kmeans_condense(
    location_points: dict[int, GeoPoint],
    station_points: dict[int, GeoPoint],
    k: int,
    config: ClusteringConfig | None = None,
    seed: int = 7,
    max_iters: int = 50,
) -> GeographicClustering:
    """Condense the non-station locations into ``k`` k-means clusters."""
    if k <= 0:
        raise ValueError("k must be positive")
    cfg = config or ClusteringConfig()
    station_members, leftover = preassign_to_stations(
        location_points, station_points, cfg.preassign_radius_m
    )
    result = GeographicClustering(station_members=station_members)
    if not leftover:
        return result
    k = min(k, len(leftover))

    origin = location_points[leftover[0]]
    project = local_projector(origin)
    coords = [project(location_points[i]) for i in leftover]
    rng = random.Random(seed)
    centres = _kmeans_plus_plus(coords, k, rng)

    assignment = [0] * len(coords)
    for _ in range(max_iters):
        changed = False
        for i, (x, y) in enumerate(coords):
            best = min(
                range(len(centres)),
                key=lambda c: (x - centres[c][0]) ** 2 + (y - centres[c][1]) ** 2,
            )
            if best != assignment[i]:
                assignment[i] = best
                changed = True
        sums = [[0.0, 0.0, 0] for _ in centres]
        for i, (x, y) in enumerate(coords):
            sums[assignment[i]][0] += x
            sums[assignment[i]][1] += y
            sums[assignment[i]][2] += 1
        for c, (sx, sy, count) in enumerate(sums):
            if count:
                centres[c] = (sx / count, sy / count)
        if not changed:
            break

    groups: dict[int, list[int]] = {}
    for i, location_id in enumerate(leftover):
        groups.setdefault(assignment[i], []).append(location_id)
    for cluster_id, c in enumerate(sorted(groups)):
        members = sorted(groups[c])
        result.clusters.append(
            LocationCluster(
                cluster_id=cluster_id,
                centroid=centroid(location_points[i] for i in members),
                member_location_ids=members,
            )
        )
    return result
