"""Geographic HAC with immovable fixed stations (paper Section IV-A).

The paper's preprocessing pins every fixed station as its own group's
centroid and pre-assigns any location within 50 m of a station to that
station's group, excluding it from clustering.  The remaining locations
are clustered with complete-linkage HAC under the haversine distance
and the dendrogram is cut at the 100 m Cluster-Boundary rule.

Scaling note: cutting a monotone linkage at threshold *t* can never
produce a cluster spanning two connected components of the "within *t*"
proximity graph (a complete-linkage merge at height <= t needs *every*
cross pair within *t*).  We therefore partition the points into those
components first and run HAC inside each — exact, and it turns one
O(n^2) problem over ~10k points into thousands of tiny ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

try:  # optional: scalar fallbacks below cover its absence
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None

from ..config import EARTH_RADIUS_M, ClusteringConfig
from ..geo import GeoPoint, GridIndex, centroid
from .linkage import linkage_cluster


@dataclass
class LocationCluster:
    """One HAC output cluster of dockless locations."""

    cluster_id: int
    centroid: GeoPoint
    member_location_ids: list[int]

    @property
    def size(self) -> int:
        """Number of member locations."""
        return len(self.member_location_ids)


@dataclass
class GeographicClustering:
    """Full result of the condensation stage.

    ``station_members`` maps each fixed-station location id to the
    locations pre-assigned to it (within the 50 m radius); ``clusters``
    are the HAC clusters over everything else.
    """

    station_members: dict[int, list[int]] = field(default_factory=dict)
    clusters: list[LocationCluster] = field(default_factory=list)

    @property
    def n_clusters(self) -> int:
        """Number of non-station clusters."""
        return len(self.clusters)

    def assignment(self) -> dict[int, tuple[str, int]]:
        """Map every input location id to its group.

        Values are ``("station", station_id)`` or
        ``("cluster", cluster_id)``.
        """
        assigned: dict[int, tuple[str, int]] = {}
        for station_id, members in self.station_members.items():
            for location_id in members:
                assigned[location_id] = ("station", station_id)
        for cluster in self.clusters:
            for location_id in cluster.member_location_ids:
                assigned[location_id] = ("cluster", cluster.cluster_id)
        return assigned


def pairwise_haversine_matrix(points: list[GeoPoint]):
    """Vectorised (n, n) haversine distance matrix in metres.

    Every operation mirrors the textbook broadcast formula but runs
    in-place on two (n, n) buffers, so the values (and the dendrograms
    cut from them) are bit-identical while peak temporary memory and
    runtime drop by roughly half.  Without numpy the same formula runs
    scalar over list rows (values may differ from the vectorised path
    in the last ulp of ``arcsin``; on the numpy leg nothing changes).
    """
    if np is None:
        return _pairwise_haversine_rows(points)
    lats = np.radians(np.array([point.lat for point in points], dtype=np.float64))
    lons = np.radians(np.array([point.lon for point in points], dtype=np.float64))
    # h = sin^2(dlat/2) + cos(lat_i) cos(lat_j) sin^2(dlon/2)
    h = np.subtract(lats[:, None], lats[None, :])
    np.divide(h, 2.0, out=h)
    np.sin(h, out=h)
    np.square(h, out=h)
    cross = np.subtract(lons[:, None], lons[None, :])
    np.divide(cross, 2.0, out=cross)
    np.sin(cross, out=cross)
    np.square(cross, out=cross)
    cos_lats = np.cos(lats)
    np.multiply(np.multiply(cos_lats[:, None], cos_lats[None, :]), cross, out=cross)
    np.add(h, cross, out=h)
    np.clip(h, 0.0, 1.0, out=h)
    np.sqrt(h, out=h)
    np.arcsin(h, out=h)
    np.multiply(h, 2.0 * EARTH_RADIUS_M, out=h)
    return h


def _pairwise_haversine_rows(points: list[GeoPoint]) -> list[list[float]]:
    """Scalar haversine matrix as list rows (the no-numpy fallback)."""
    lats = [math.radians(point.lat) for point in points]
    lons = [math.radians(point.lon) for point in points]
    cos_lats = [math.cos(lat) for lat in lats]
    n = len(points)
    rows = [[0.0] * n for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            sin_dlat = math.sin((lats[i] - lats[j]) / 2.0)
            sin_dlon = math.sin((lons[i] - lons[j]) / 2.0)
            # Same association order as the broadcast path: square the
            # half-angle sines first, then scale by cos(i)*cos(j).
            h = sin_dlat * sin_dlat + (cos_lats[i] * cos_lats[j]) * (sin_dlon * sin_dlon)
            h = min(1.0, max(0.0, h))
            d = 2.0 * EARTH_RADIUS_M * math.asin(math.sqrt(h))
            rows[i][j] = d
            rows[j][i] = d
    return rows


def proximity_components(
    ids: list[int], points: dict[int, GeoPoint], threshold_m: float
) -> list[list[int]]:
    """Connected components of the "within ``threshold_m``" graph.

    BFS over a grid index; returns components as lists of location
    ids, each sorted, ordered by smallest member.
    """
    # Components of the threshold graph are order-independent sets, so
    # union-find over each within-threshold *pair* (enumerated once by
    # the grid) replaces the BFS that ran a full sorted ``within``
    # query per point — identical components, roughly a quarter of the
    # distance evaluations.
    index: GridIndex[int] = GridIndex(cell_m=max(25.0, threshold_m))
    for location_id in ids:
        index.insert(location_id, points[location_id])
    parent: dict[int, int] = {location_id: location_id for location_id in ids}

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for a, b in index.neighbour_pairs(threshold_m):
        root_a = find(a)
        root_b = find(b)
        if root_a != root_b:
            parent[root_b] = root_a

    groups: dict[int, list[int]] = {}
    for location_id in ids:
        groups.setdefault(find(location_id), []).append(location_id)
    components = [sorted(members) for members in groups.values()]
    components.sort(key=lambda component: component[0])
    return components


def preassign_to_stations(
    location_points: dict[int, GeoPoint],
    station_points: dict[int, GeoPoint],
    radius_m: float,
) -> tuple[dict[int, list[int]], list[int]]:
    """Split locations into station groups and the to-cluster remainder.

    A location within ``radius_m`` of any station joins the *nearest*
    such station's group.  Station location ids themselves are assigned
    to their own group.
    """
    index: GridIndex[int] = GridIndex(cell_m=max(50.0, radius_m))
    for station_id, point in station_points.items():
        index.insert(station_id, point)
    station_members: dict[int, list[int]] = {
        station_id: [] for station_id in station_points
    }
    ordered = sorted(location_points)
    # One membership test per location, reused by both the batch query
    # build and the assignment loop below, so the two can never skew.
    is_station = [location_id in station_points for location_id in ordered]
    hits_per_location = iter(
        index.within_many(
            [
                location_points[location_id]
                for location_id, skip in zip(ordered, is_station)
                if not skip
            ],
            radius_m,
        )
    )
    leftover: list[int] = []
    for location_id, skip in zip(ordered, is_station):
        if skip:
            station_members[location_id].append(location_id)
            continue
        hits = next(hits_per_location)
        if hits:
            nearest_station, _ = hits[0]
            station_members[nearest_station].append(location_id)
        else:
            leftover.append(location_id)
    return station_members, leftover


def cluster_locations(
    location_points: dict[int, GeoPoint],
    station_points: dict[int, GeoPoint],
    config: ClusteringConfig | None = None,
) -> GeographicClustering:
    """Run the paper's full condensation stage.

    Parameters
    ----------
    location_points:
        Every cleaned location id -> position (station ids included).
    station_points:
        The fixed stations' location id -> position.
    config:
        Thresholds and linkage; defaults to the paper's settings.
    """
    cfg = config or ClusteringConfig()
    station_members, leftover = preassign_to_stations(
        location_points, station_points, cfg.preassign_radius_m
    )

    result = GeographicClustering(station_members=station_members)
    components = proximity_components(
        leftover, location_points, cfg.cluster_boundary_m
    )
    next_cluster_id = 0
    for component in components:
        if len(component) == 1:
            groups = [[0]]
        else:
            points = [location_points[location_id] for location_id in component]
            matrix = pairwise_haversine_matrix(points)
            # Built symmetric by construction; skip re-validation.
            dendrogram = linkage_cluster(matrix, cfg.linkage, validate=False)
            groups = dendrogram.cut(cfg.cluster_boundary_m)
        for group in groups:
            member_ids = [component[i] for i in group]
            result.clusters.append(
                LocationCluster(
                    cluster_id=next_cluster_id,
                    centroid=centroid(
                        location_points[location_id] for location_id in member_ids
                    ),
                    member_location_ids=member_ids,
                )
            )
            next_cluster_id += 1
    return result


def cluster_diameter_m(
    cluster: LocationCluster, location_points: dict[int, GeoPoint]
) -> float:
    """Largest pairwise distance inside a cluster (Rule-1 audit)."""
    if cluster.size <= 1:
        return 0.0
    points = [location_points[location_id] for location_id in cluster.member_location_ids]
    matrix = pairwise_haversine_matrix(points)
    largest = (
        float(np.max(matrix)) if np is not None else max(map(max, matrix))
    )
    return largest if math.isfinite(largest) else 0.0
