"""Geographic HAC with immovable fixed stations (paper Section IV-A).

The paper's preprocessing pins every fixed station as its own group's
centroid and pre-assigns any location within 50 m of a station to that
station's group, excluding it from clustering.  The remaining locations
are clustered with complete-linkage HAC under the haversine distance
and the dendrogram is cut at the 100 m Cluster-Boundary rule.

Scaling note: cutting a monotone linkage at threshold *t* can never
produce a cluster spanning two connected components of the "within *t*"
proximity graph (a complete-linkage merge at height <= t needs *every*
cross pair within *t*).  We therefore partition the points into those
components first and run HAC inside each — exact, and it turns one
O(n^2) problem over ~10k points into thousands of tiny ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..config import EARTH_RADIUS_M, ClusteringConfig
from ..geo import GeoPoint, GridIndex, centroid
from .linkage import linkage_cluster


@dataclass
class LocationCluster:
    """One HAC output cluster of dockless locations."""

    cluster_id: int
    centroid: GeoPoint
    member_location_ids: list[int]

    @property
    def size(self) -> int:
        """Number of member locations."""
        return len(self.member_location_ids)


@dataclass
class GeographicClustering:
    """Full result of the condensation stage.

    ``station_members`` maps each fixed-station location id to the
    locations pre-assigned to it (within the 50 m radius); ``clusters``
    are the HAC clusters over everything else.
    """

    station_members: dict[int, list[int]] = field(default_factory=dict)
    clusters: list[LocationCluster] = field(default_factory=list)

    @property
    def n_clusters(self) -> int:
        """Number of non-station clusters."""
        return len(self.clusters)

    def assignment(self) -> dict[int, tuple[str, int]]:
        """Map every input location id to its group.

        Values are ``("station", station_id)`` or
        ``("cluster", cluster_id)``.
        """
        assigned: dict[int, tuple[str, int]] = {}
        for station_id, members in self.station_members.items():
            for location_id in members:
                assigned[location_id] = ("station", station_id)
        for cluster in self.clusters:
            for location_id in cluster.member_location_ids:
                assigned[location_id] = ("cluster", cluster.cluster_id)
        return assigned


def pairwise_haversine_matrix(points: list[GeoPoint]) -> np.ndarray:
    """Vectorised (n, n) haversine distance matrix in metres."""
    lats = np.radians(np.array([point.lat for point in points], dtype=np.float64))
    lons = np.radians(np.array([point.lon for point in points], dtype=np.float64))
    dlat = lats[:, None] - lats[None, :]
    dlon = lons[:, None] - lons[None, :]
    sin_dlat = np.sin(dlat / 2.0)
    sin_dlon = np.sin(dlon / 2.0)
    h = sin_dlat**2 + np.cos(lats)[:, None] * np.cos(lats)[None, :] * sin_dlon**2
    np.clip(h, 0.0, 1.0, out=h)
    return 2.0 * EARTH_RADIUS_M * np.arcsin(np.sqrt(h))


def proximity_components(
    ids: list[int], points: dict[int, GeoPoint], threshold_m: float
) -> list[list[int]]:
    """Connected components of the "within ``threshold_m``" graph.

    BFS over a grid index; returns components as lists of location
    ids, each sorted, ordered by smallest member.
    """
    index: GridIndex[int] = GridIndex(cell_m=max(25.0, threshold_m))
    for location_id in ids:
        index.insert(location_id, points[location_id])
    remaining = set(ids)
    components: list[list[int]] = []
    for seed in ids:
        if seed not in remaining:
            continue
        remaining.discard(seed)
        component = [seed]
        frontier = [seed]
        while frontier:
            current = frontier.pop()
            for neighbour_id, _ in index.within(points[current], threshold_m):
                if neighbour_id in remaining:
                    remaining.discard(neighbour_id)
                    component.append(neighbour_id)
                    frontier.append(neighbour_id)
        components.append(sorted(component))
    components.sort(key=lambda component: component[0])
    return components


def preassign_to_stations(
    location_points: dict[int, GeoPoint],
    station_points: dict[int, GeoPoint],
    radius_m: float,
) -> tuple[dict[int, list[int]], list[int]]:
    """Split locations into station groups and the to-cluster remainder.

    A location within ``radius_m`` of any station joins the *nearest*
    such station's group.  Station location ids themselves are assigned
    to their own group.
    """
    index: GridIndex[int] = GridIndex(cell_m=max(50.0, radius_m))
    for station_id, point in station_points.items():
        index.insert(station_id, point)
    station_members: dict[int, list[int]] = {
        station_id: [] for station_id in station_points
    }
    leftover: list[int] = []
    for location_id in sorted(location_points):
        if location_id in station_points:
            station_members[location_id].append(location_id)
            continue
        hits = index.within(location_points[location_id], radius_m)
        if hits:
            nearest_station, _ = hits[0]
            station_members[nearest_station].append(location_id)
        else:
            leftover.append(location_id)
    return station_members, leftover


def cluster_locations(
    location_points: dict[int, GeoPoint],
    station_points: dict[int, GeoPoint],
    config: ClusteringConfig | None = None,
) -> GeographicClustering:
    """Run the paper's full condensation stage.

    Parameters
    ----------
    location_points:
        Every cleaned location id -> position (station ids included).
    station_points:
        The fixed stations' location id -> position.
    config:
        Thresholds and linkage; defaults to the paper's settings.
    """
    cfg = config or ClusteringConfig()
    station_members, leftover = preassign_to_stations(
        location_points, station_points, cfg.preassign_radius_m
    )

    result = GeographicClustering(station_members=station_members)
    components = proximity_components(
        leftover, location_points, cfg.cluster_boundary_m
    )
    next_cluster_id = 0
    for component in components:
        if len(component) == 1:
            groups = [[0]]
        else:
            points = [location_points[location_id] for location_id in component]
            matrix = pairwise_haversine_matrix(points)
            dendrogram = linkage_cluster(matrix, cfg.linkage)
            groups = dendrogram.cut(cfg.cluster_boundary_m)
        for group in groups:
            member_ids = [component[i] for i in group]
            result.clusters.append(
                LocationCluster(
                    cluster_id=next_cluster_id,
                    centroid=centroid(
                        location_points[location_id] for location_id in member_ids
                    ),
                    member_location_ids=member_ids,
                )
            )
            next_cluster_id += 1
    return result


def cluster_diameter_m(
    cluster: LocationCluster, location_points: dict[int, GeoPoint]
) -> float:
    """Largest pairwise distance inside a cluster (Rule-1 audit)."""
    if cluster.size <= 1:
        return 0.0
    points = [location_points[location_id] for location_id in cluster.member_location_ids]
    matrix = pairwise_haversine_matrix(points)
    return float(np.max(matrix)) if math.isfinite(np.max(matrix)) else 0.0
