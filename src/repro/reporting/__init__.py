"""Reporting: paper-style tables, experiment runners, comparisons."""

from .comparison import PAPER, Comparison, compare, comparison_rows
from .experiments import (
    ExperimentOutput,
    experiment_fig5,
    experiment_fig7,
    experiment_table1,
    experiment_table2,
    experiment_table3,
    experiment_table4,
    experiment_table5,
    experiment_table6,
    sweep_summary,
)
from .markdown import render_markdown_report, write_markdown_report
from .tables import format_series, format_table

__all__ = [
    "Comparison",
    "ExperimentOutput",
    "PAPER",
    "compare",
    "comparison_rows",
    "experiment_fig5",
    "experiment_fig7",
    "experiment_table1",
    "experiment_table2",
    "experiment_table3",
    "experiment_table4",
    "experiment_table5",
    "experiment_table6",
    "format_series",
    "format_table",
    "render_markdown_report",
    "sweep_summary",
    "write_markdown_report",
]
