"""Plain-text table formatting in the paper's style."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an ASCII table with right-aligned numeric columns."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def render_row(values: Sequence[str]) -> str:
        parts = []
        for index, value in enumerate(values):
            if _is_numeric(values[index]) and index > 0:
                parts.append(value.rjust(widths[index]))
            else:
                parts.append(value.ljust(widths[index]))
        return "| " + " | ".join(parts) + " |"

    rule = "+-" + "-+-".join("-" * width for width in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(rule)
    lines.append(render_row(list(headers)))
    lines.append(rule)
    for row in cells:
        lines.append(render_row(row))
    lines.append(rule)
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        return f"{value:,.3f}" if abs(value) < 100 else f"{value:,.1f}"
    return str(value)


def _is_numeric(text: str) -> bool:
    stripped = text.replace(",", "").replace(".", "").replace("-", "")
    return stripped.isdigit() and bool(stripped)


def format_series(
    name: str, labels: Sequence[str], values: Sequence[float]
) -> str:
    """Render one figure series as ``name: label=value ...``."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    body = " ".join(
        f"{label}={value:.3f}" for label, value in zip(labels, values)
    )
    return f"{name}: {body}"
