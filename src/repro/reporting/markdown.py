"""Markdown report generation.

:func:`write_markdown_report` renders a full pipeline result — every
paper table plus the comparison columns — into one self-contained
markdown document, the artifact a user hands to a reviewer.  Used by
``python -m repro report``.
"""

from __future__ import annotations

from pathlib import Path

from ..core.expansion import ExpansionResult
from ..core.validation import validate_expansion
from .experiments import (
    ExperimentOutput,
    experiment_fig5,
    experiment_fig7,
    experiment_table1,
    experiment_table2,
    experiment_table3,
    experiment_table4,
    experiment_table5,
    experiment_table6,
)


def _markdown_comparisons(output: ExperimentOutput) -> list[str]:
    comparisons = output.comparisons()
    if not comparisons:
        return []
    lines = [
        "",
        "| Measure | Paper | Measured | Ratio |",
        "|---|---|---|---|",
    ]
    for item in comparisons:
        lines.append(
            f"| {item.measure} | {item.expected:,.6g} | "
            f"{item.measured:,.6g} | {item.ratio:.2f}x |"
        )
    return lines


def render_markdown_report(result: ExpansionResult, title: str | None = None) -> str:
    """Render the full paper-vs-measured report as markdown."""
    sections: list[tuple[str, ExperimentOutput]] = [
        ("Table I — dataset overview", experiment_table1(result.cleaning_report)),
        ("Table II — candidate graph (HAC)", experiment_table2(result)),
        ("Table III — selected graph", experiment_table3(result)),
        ("Table IV — G_Basic communities", experiment_table4(result)),
        ("Table V — G_Day communities", experiment_table5(result)),
        ("Table VI — G_Hour communities", experiment_table6(result)),
        ("Figure 5 — daily patterns", experiment_fig5(result)),
        ("Figure 7 — hourly patterns", experiment_fig7(result)),
    ]
    lines = [f"# {title or 'Expansion pipeline report'}", ""]
    lines.append(
        f"- stations: {result.cleaning_report.after.n_stations} fixed "
        f"+ {result.n_new_stations} selected = {result.n_total_stations}"
    )
    lines.append(
        "- modularity (basic / day / hour): "
        f"{result.basic.modularity:.3f} / {result.day.modularity:.3f} / "
        f"{result.hour.modularity:.3f}"
    )
    validation = validate_expansion(result)
    lines.append(
        f"- validation: {'ALL PASSED' if validation.all_passed else 'FAILED: ' + ', '.join(validation.failures())}"
    )
    lines.append("")
    for heading, output in sections:
        lines.append(f"## {heading}")
        lines.append("")
        lines.append("```")
        lines.append(output.text)
        lines.append("```")
        lines.extend(_markdown_comparisons(output))
        lines.append("")
    return "\n".join(lines)


def write_markdown_report(
    result: ExpansionResult, path: str | Path, title: str | None = None
) -> Path:
    """Write the report to ``path`` and return it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_markdown_report(result, title))
    return path
