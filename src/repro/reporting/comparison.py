"""Paper-reported reference values and shape comparisons.

``PAPER`` records every number the paper's tables report, so benches
and EXPERIMENTS.md can put measured values side by side with them.
:func:`within_factor` is the repo's notion of "the shape holds":
measured and expected agree within a multiplicative factor.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Every reference number from the paper's evaluation section.
PAPER: dict[str, dict[str, float]] = {
    "table1": {
        "original_stations": 95,
        "original_rentals": 62_324,
        "original_locations": 14_239,
        "cleaned_stations": 92,
        "cleaned_rentals": 61_872,
        "cleaned_locations": 14_156,
    },
    "table2": {
        "nodes": 1_172,
        "undirected_edges": 8_240,
        "undirected_edges_no_loops": 7_820,
        "directed_edges": 16_042,
        "directed_edges_no_loops": 15_604,
        "trips": 61_872,
    },
    "table3": {
        "pre_existing_stations": 92,
        "selected_stations": 146,
        "total_stations": 238,
        "trips_from_pre_existing": 54_670,
        "trips_to_pre_existing": 54_727,
        "trips_from_selected": 7_202,
        "trips_to_selected": 7_145,
        "edges_from_pre_existing": 6_437,
        "edges_to_pre_existing": 6_310,
        "edges_from_selected": 2_072,
        "edges_to_selected": 2_199,
        "total_edges": 8_509,
    },
    "table4": {
        "n_communities": 3,
        "modularity": 0.25,
        "self_containment": 0.74,
    },
    "table5": {
        "n_communities": 7,
        "modularity": 0.32,
    },
    "table6": {
        "n_communities": 10,
        "modularity": 0.54,
    },
}


@dataclass(frozen=True)
class Comparison:
    """One paper-vs-measured data point."""

    experiment: str
    measure: str
    expected: float
    measured: float

    @property
    def ratio(self) -> float:
        """measured / expected (inf when expected is 0)."""
        if self.expected == 0:
            return float("inf") if self.measured else 1.0
        return self.measured / self.expected

    def within_factor(self, factor: float) -> bool:
        """True when measured is within ``factor``x of expected."""
        if factor < 1.0:
            raise ValueError("factor must be >= 1")
        if self.expected == 0:
            return self.measured == 0
        return 1.0 / factor <= self.ratio <= factor

    def to_dict(self) -> dict[str, float | str]:
        """JSON-safe envelope."""
        return {
            "experiment": self.experiment,
            "measure": self.measure,
            "expected": self.expected,
            "measured": self.measured,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Comparison":
        """Exact inverse of :meth:`to_dict`."""
        return cls(
            experiment=payload["experiment"],
            measure=payload["measure"],
            expected=payload["expected"],
            measured=payload["measured"],
        )


def compare(
    experiment: str, measured: dict[str, float]
) -> list[Comparison]:
    """Pair measured values with the paper's, by measure name."""
    expected = PAPER.get(experiment, {})
    return [
        Comparison(
            experiment=experiment,
            measure=measure,
            expected=expected[measure],
            measured=value,
        )
        for measure, value in measured.items()
        if measure in expected
    ]


def comparison_rows(comparisons: list[Comparison]) -> list[tuple[str, float, float, str]]:
    """(measure, paper, measured, ratio-text) rows for the tables."""
    return [
        (
            item.measure,
            item.expected,
            item.measured,
            f"{item.ratio:.2f}x",
        )
        for item in comparisons
    ]
