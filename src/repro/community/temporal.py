"""Multislice (temporal) community detection.

The paper's G_Day and G_Hour graphs give every trip a unique edge
carrying a day-of-week / hour-of-day property, and Louvain over them
returns *different* partitions with *higher* modularity than the
untimed G_Basic (0.25 -> 0.32 -> 0.54).  A station-node multigraph
cannot do that — Louvain is blind to edge properties — so, as DESIGN.md
documents, we realise the construction as the standard multislice
network of Mucha et al. (2010):

* each station is expanded into one copy per time slice in which it has
  any trip activity;
* a trip starting in slice *s* connects the two stations' slice-*s*
  copies;
* copies of the same station in circularly consecutive active slices
  are joined by coupling edges of weight ``omega`` (scaled per station);
* Louvain partitions the sliced graph; each station is then assigned to
  the community that holds the largest share of its trip weight, which
  is the station-level community structure the paper tabulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable, Mapping, Sequence

from ..config import TemporalCommunityConfig
from ..exceptions import CommunityError
from ..graphdb import WeightedGraph
from ..serialize import check_envelope
from .louvain import louvain
from .partition import Partition

StationKey = Hashable
#: A sliced node: (station, slice index).
SliceNode = tuple[StationKey, int]
#: A map-like callable for the per-slice aggregation fan-out (the
#: builtin ``map``, an executor's ``.map``, or ``PipelineRunner.map``).
SliceMapper = Callable[[Callable, Iterable], Iterable]


@dataclass(frozen=True)
class TemporalCommunityResult:
    """Output of multislice detection.

    ``station_partition`` assigns whole stations (the paper's table
    rows); ``slice_partition`` is the underlying partition of
    (station, slice) copies; ``modularity`` is Louvain's score on the
    sliced graph — the number the paper reports rising with temporal
    granularity.
    """

    station_partition: Partition
    slice_partition: Partition
    modularity: float
    n_slices: int

    @property
    def n_communities(self) -> int:
        """Number of station-level communities."""
        return self.station_partition.n_communities

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe envelope, both partition granularities included."""
        return {
            "type": "TemporalCommunityResult",
            "station_partition": self.station_partition.to_dict(),
            "slice_partition": self.slice_partition.to_dict(),
            "modularity": self.modularity,
            "n_slices": self.n_slices,
        }

    @classmethod
    def from_dict(
        cls, payload: Mapping[str, Any]
    ) -> "TemporalCommunityResult":
        """Exact inverse of :meth:`to_dict`."""
        check_envelope(payload, "TemporalCommunityResult")
        return cls(
            station_partition=Partition.from_dict(payload["station_partition"]),
            slice_partition=Partition.from_dict(payload["slice_partition"]),
            modularity=payload["modularity"],
            n_slices=payload["n_slices"],
        )


def slice_trip_buckets(
    trips: Iterable[tuple[StationKey, StationKey, int]],
    n_slices: int,
) -> list[list[tuple[StationKey, StationKey]]]:
    """Partition trips into per-slice buckets (trip order preserved)."""
    if n_slices <= 0:
        raise CommunityError("n_slices must be positive")
    buckets: list[list[tuple[StationKey, StationKey]]] = [
        [] for _ in range(n_slices)
    ]
    for origin, destination, slice_index in trips:
        if not 0 <= slice_index < n_slices:
            raise CommunityError(
                f"slice index {slice_index} outside [0, {n_slices})"
            )
        buckets[slice_index].append((origin, destination))
    return buckets


def aggregate_slice(
    bucket: Sequence[tuple[StationKey, StationKey]],
) -> tuple[
    dict[tuple[StationKey, StationKey], float], dict[StationKey, float]
]:
    """Aggregate one slice's trips: edge weights + station strengths.

    Pure and order-deterministic (dicts keep first-seen order), so the
    per-slice fan-out yields the same merged graph as a serial pass.
    Module-level so process pools can pickle it.
    """
    edges: dict[tuple[StationKey, StationKey], float] = {}
    stations: dict[StationKey, float] = {}
    for origin, destination in bucket:
        edges[(origin, destination)] = edges.get((origin, destination), 0.0) + 1.0
        stations[origin] = stations.get(origin, 0.0) + 1.0
        stations[destination] = stations.get(destination, 0.0) + 1.0
    return edges, stations


def build_sliced_graph(
    trips: Iterable[tuple[StationKey, StationKey, int]],
    n_slices: int,
    coupling: float,
    mapper: SliceMapper | None = None,
) -> WeightedGraph:
    """Build the multislice graph from ``(origin, destination, slice)``.

    Convenience wrapper bucketing the trip triples and delegating to
    :func:`build_sliced_graph_from_buckets`.
    """
    return build_sliced_graph_from_buckets(
        slice_trip_buckets(trips, n_slices), coupling, mapper=mapper
    )


def build_sliced_graph_from_buckets(
    buckets: Sequence[Sequence[tuple[StationKey, StationKey]]],
    coupling: float,
    mapper: SliceMapper | None = None,
) -> WeightedGraph:
    """Build the multislice graph from per-slice OD buckets.

    Coupling edges join a station's copies in circularly consecutive
    *active* slices with weight ``coupling`` times the station's mean
    per-active-slice strength, so the knob is scale-free in trip volume.

    Construction is canonical — each bucket is aggregated independently
    (``mapper`` fans the buckets out over workers) and the aggregates
    merged in slice order — so the resulting graph is identical whether
    the aggregation ran serially or in parallel.  (This ordering
    replaced the original trip-interleaved insertion; node sets and
    edge weights are unchanged but Louvain's seeded visit order — and
    hence the exact G_Day/G_Hour partitions — shifted within the
    calibrated ranges.  The current numbers are pinned by
    ``tests/test_golden_paper.py``.)
    """
    aggregates = list((mapper or map)(aggregate_slice, buckets))
    return build_sliced_graph_from_aggregates(aggregates, coupling)


#: One slice's aggregate: (OD edge weights, station strengths), both in
#: first-seen order — exactly what :func:`aggregate_slice` returns.
SliceAggregate = tuple[
    dict[tuple[StationKey, StationKey], float], dict[StationKey, float]
]


def build_sliced_graph_from_aggregates(
    aggregates: Sequence[SliceAggregate],
    coupling: float,
) -> WeightedGraph:
    """Build the multislice graph from per-slice aggregates.

    The aggregate of a slice is a pure function of that slice's bucket,
    so the incremental runner caches aggregates per slice (keyed by the
    slice's content digest) and re-aggregates only the slices an append
    touched — this merge then proceeds identically to the cold path.
    """
    graph = WeightedGraph()
    station_slice_weight: dict[StationKey, dict[int, float]] = {}
    for slice_index, (edges, stations) in enumerate(aggregates):
        for (origin, destination), weight in edges.items():
            graph.add_edge(
                (origin, slice_index), (destination, slice_index), weight
            )
        for station, weight in stations.items():
            station_slice_weight.setdefault(station, {})[slice_index] = weight

    if coupling > 0.0:
        for station, weights in station_slice_weight.items():
            active = sorted(weights)
            if len(active) < 2:
                continue
            mean_strength = sum(weights.values()) / len(active)
            omega = coupling * mean_strength
            # Circular chain over the active slices.
            for position, slice_index in enumerate(active):
                next_slice = active[(position + 1) % len(active)]
                if next_slice == slice_index:
                    continue
                graph.add_edge(
                    (station, slice_index), (station, next_slice), omega
                )
    return graph


def collapse_to_stations(
    slice_partition: Partition,
    trips: Iterable[tuple[StationKey, StationKey, int]],
) -> Partition:
    """Assign each station to the community holding most of its trips."""
    buckets: dict[int, list[tuple[StationKey, StationKey]]] = {}
    for origin, destination, slice_index in trips:
        buckets.setdefault(slice_index, []).append((origin, destination))
    return collapse_buckets_to_stations(
        slice_partition, sorted(buckets.items())
    )


def collapse_buckets_to_stations(
    slice_partition: Partition,
    indexed_buckets: Iterable[
        tuple[int, Sequence[tuple[StationKey, StationKey]]]
    ],
) -> Partition:
    """:func:`collapse_to_stations` over ``(slice, bucket)`` pairs.

    Per-station community weights are exact sums of 1.0s and the
    partition normalises its labels, so the slice-major iteration
    yields the identical station partition the trip-ordered pass did.
    """
    weight: dict[StationKey, dict[int, float]] = {}
    for slice_index, bucket in indexed_buckets:
        for origin, destination in bucket:
            for station in (origin, destination):
                label = slice_partition[(station, slice_index)]
                by_label = weight.setdefault(station, {})
                by_label[label] = by_label.get(label, 0.0) + 1.0
    assignment = {
        station: max(sorted(by_label), key=lambda label: by_label[label])
        for station, by_label in weight.items()
    }
    return Partition.from_assignment(assignment)


def collapse_aggregates_to_stations(
    slice_partition: Partition,
    aggregates: Sequence[SliceAggregate],
) -> Partition:
    """:func:`collapse_buckets_to_stations` from per-slice aggregates.

    Sums each aggregated OD edge's (integer) weight onto both endpoint
    stations instead of adding 1.0 per trip — the identical exact sums,
    and a station's first appearance happens inside the edge of its
    first trip, so the station iteration order (and hence the
    normalised partition) matches the bucket-based pass.
    """
    weight: dict[StationKey, dict[int, float]] = {}
    for slice_index, (edges, _stations) in enumerate(aggregates):
        for (origin, destination), edge_weight in edges.items():
            for station in (origin, destination):
                label = slice_partition[(station, slice_index)]
                by_label = weight.setdefault(station, {})
                by_label[label] = by_label.get(label, 0.0) + edge_weight
    assignment = {
        station: max(sorted(by_label), key=lambda label: by_label[label])
        for station, by_label in weight.items()
    }
    return Partition.from_assignment(assignment)


def detect_temporal_communities(
    trips: Sequence[tuple[StationKey, StationKey, int]],
    n_slices: int,
    config: TemporalCommunityConfig | None = None,
    mapper: SliceMapper | None = None,
) -> TemporalCommunityResult:
    """Full multislice pipeline: build, Louvain, collapse.

    ``mapper`` (optional) fans the per-slice aggregation out over
    workers; the result is identical to the serial path.
    """
    return detect_temporal_communities_from_buckets(
        slice_trip_buckets(trips, n_slices), config, mapper=mapper
    )


def detect_temporal_communities_from_buckets(
    buckets: Sequence[Sequence[tuple[StationKey, StationKey]]],
    config: TemporalCommunityConfig | None = None,
    mapper: SliceMapper | None = None,
) -> TemporalCommunityResult:
    """Full multislice pipeline over prebuilt per-slice OD buckets.

    The temporal pipeline stages feed this directly from
    :meth:`SelectedNetwork.day_slice_buckets` /
    :meth:`~SelectedNetwork.hour_slice_buckets`, skipping the
    intermediate per-stage trip-triple lists.
    """
    cfg = config or TemporalCommunityConfig()
    aggregates = list((mapper or map)(aggregate_slice, buckets))
    return detect_temporal_communities_from_aggregates(aggregates, cfg)


def detect_temporal_communities_from_aggregates(
    aggregates: Sequence[SliceAggregate],
    config: TemporalCommunityConfig | None = None,
) -> TemporalCommunityResult:
    """Full multislice pipeline over prebuilt per-slice aggregates.

    The incremental entry point: the aggregates may mix freshly
    computed slices with slices served warm from the stage cache — the
    merged graph, Louvain partition and station collapse are identical
    to the cold, bucket-based path.
    """
    cfg = config or TemporalCommunityConfig()
    graph = build_sliced_graph_from_aggregates(aggregates, cfg.coupling)
    if graph.node_count == 0:
        raise CommunityError("no trips — nothing to detect communities on")
    result = louvain(graph, cfg)
    station_partition = collapse_aggregates_to_stations(
        result.partition, aggregates
    )
    return TemporalCommunityResult(
        station_partition=station_partition,
        slice_partition=result.partition,
        modularity=result.modularity,
        n_slices=len(aggregates),
    )
