"""Consensus clustering over repeated Louvain runs.

Louvain's node-order randomness means different seeds can return
different partitions.  Consensus clustering (Lancichinetti & Fortunato
2012, simplified to one aggregation round) runs the detector many
times, builds the co-assignment graph — edge weight = fraction of runs
placing two nodes together — thresholds it, and reads the final
communities off its connected components.  Used here to check that the
paper's communities are stable, not artefacts of a lucky seed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import CommunityConfig
from ..exceptions import CommunityError
from ..graphdb import WeightedGraph
from .louvain import louvain
from .partition import Partition
from .similarity import normalized_mutual_information


@dataclass(frozen=True)
class ConsensusResult:
    """Consensus partition plus stability diagnostics."""

    partition: Partition
    n_runs: int
    #: Mean pairwise NMI between the individual runs (1.0 = identical).
    stability: float

    @property
    def n_communities(self) -> int:
        """Communities in the consensus partition."""
        return self.partition.n_communities


def consensus_louvain(
    graph: WeightedGraph,
    n_runs: int = 10,
    threshold: float = 0.5,
    config: CommunityConfig | None = None,
) -> ConsensusResult:
    """Run Louvain ``n_runs`` times and build the consensus partition.

    ``threshold`` is the minimum co-assignment fraction for two nodes
    to stay connected in the consensus graph.
    """
    if n_runs < 2:
        raise CommunityError("consensus needs at least two runs")
    if not 0.0 < threshold <= 1.0:
        raise CommunityError("threshold must be in (0, 1]")
    cfg = config or CommunityConfig()
    partitions: list[Partition] = []
    for run in range(n_runs):
        run_config = CommunityConfig(
            resolution=cfg.resolution,
            seed=cfg.seed + run,
            max_passes=cfg.max_passes,
        )
        partitions.append(louvain(graph, run_config).partition)

    # Co-assignment graph, restricted to pairs that share a community
    # in at least one run (everything else has weight 0 anyway).
    co_counts: dict[tuple, int] = {}
    for partition in partitions:
        for members in partition.communities().values():
            ordered = sorted(members, key=repr)
            for i, u in enumerate(ordered):
                for v in ordered[i + 1:]:
                    co_counts[(u, v)] = co_counts.get((u, v), 0) + 1

    consensus_graph = WeightedGraph()
    for node in graph.nodes():
        consensus_graph.add_node(node)
    for (u, v), count in co_counts.items():
        fraction = count / n_runs
        if fraction >= threshold:
            consensus_graph.add_edge(u, v, fraction)

    partition = Partition.from_communities(
        consensus_graph.connected_components()
    )

    total = 0.0
    pairs = 0
    for i in range(len(partitions)):
        for j in range(i + 1, len(partitions)):
            total += normalized_mutual_information(partitions[i], partitions[j])
            pairs += 1
    stability = total / pairs if pairs else 1.0
    return ConsensusResult(
        partition=partition, n_runs=n_runs, stability=stability
    )
