"""A two-level map-equation optimiser (Infomap-style).

The paper lists the Infomap algorithm as future work; this module
implements the core of it for undirected weighted graphs.  For such
graphs the random walker's stationary visit rate at node α has the
closed form p_α = s_α / (2 m) (s = strength), and a module m's exit
rate is its boundary weight over 2 m.  The two-level map equation

    L(M) = plogp(q) - 2 Σ_m plogp(q_m)
           + Σ_m plogp(q_m + p_m) - Σ_α plogp(p_α)

(with q = Σ_m q_m, p_m = Σ_{α in m} p_α and plogp(x) = x log2 x) is
minimised with Louvain-style local moves followed by aggregation.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..config import CommunityConfig
from ..exceptions import CommunityError
from ..graphdb import NodeKey, WeightedGraph
from .partition import Partition


def _plogp(x: float) -> float:
    return x * math.log2(x) if x > 0.0 else 0.0


@dataclass(frozen=True)
class MapEquationResult:
    """Final partition and its description length in bits."""

    partition: Partition
    codelength: float

    @property
    def n_communities(self) -> int:
        """Number of modules."""
        return self.partition.n_communities


def map_equation(graph: WeightedGraph, partition: Partition) -> float:
    """Two-level description length of ``partition`` on ``graph``."""
    total = graph.total_weight
    if total <= 0:
        raise CommunityError("map equation needs a graph with positive weight")
    two_m = 2.0 * total
    visit = {node: graph.strength(node) / two_m for node in graph.nodes()}
    module_visit: dict[int, float] = {}
    module_exit: dict[int, float] = {}
    for node in graph.nodes():
        label = partition[node]
        module_visit[label] = module_visit.get(label, 0.0) + visit[node]
        module_exit.setdefault(label, 0.0)
    for u, v, weight in graph.edges():
        if u != v and partition[u] != partition[v]:
            share = weight / two_m
            module_exit[partition[u]] += share
            module_exit[partition[v]] += share
    q = sum(module_exit.values())
    codelength = _plogp(q)
    codelength -= 2.0 * sum(_plogp(q_m) for q_m in module_exit.values())
    codelength += sum(
        _plogp(module_exit[label] + module_visit[label]) for label in module_visit
    )
    codelength -= sum(_plogp(p) for p in visit.values())
    return codelength


class _MapState:
    """Local-moving state over one (meta-)graph."""

    def __init__(self, graph: WeightedGraph) -> None:
        self.graph = graph
        self.total = graph.total_weight
        if self.total <= 0:
            raise CommunityError("map equation needs a graph with positive weight")
        self.two_m = 2.0 * self.total
        self.visit = {
            node: graph.strength(node) / self.two_m for node in graph.nodes()
        }
        self.module: dict[NodeKey, int] = {}
        self.module_visit: dict[int, float] = {}
        self.module_exit: dict[int, float] = {}
        for index, node in enumerate(graph.nodes()):
            self.module[node] = index
            self.module_visit[index] = self.visit[node]
            exit_weight = sum(
                weight
                for neighbour, weight in graph.neighbours(node).items()
                if neighbour != node
            )
            self.module_exit[index] = exit_weight / self.two_m

    def codelength(self) -> float:
        """Description length of the current assignment."""
        q = sum(self.module_exit.values())
        length = _plogp(q)
        length -= 2.0 * sum(_plogp(q_m) for q_m in self.module_exit.values())
        length += sum(
            _plogp(self.module_exit[label] + self.module_visit[label])
            for label in self.module_visit
        )
        length -= sum(_plogp(p) for p in self.visit.values())
        return length

    def _links_to_modules(self, node: NodeKey) -> dict[int, float]:
        links: dict[int, float] = {}
        for neighbour, weight in self.graph.neighbours(node).items():
            if neighbour == node:
                continue
            label = self.module[neighbour]
            links[label] = links.get(label, 0.0) + weight / self.two_m
        return links

    def _apply(self, node: NodeKey, target: int, links: dict[int, float]) -> None:
        current = self.module[node]
        node_exit = sum(links.values())
        # Remove from the current module.
        self.module_visit[current] -= self.visit[node]
        self.module_exit[current] -= node_exit - 2.0 * links.get(current, 0.0)
        if self.module_visit[current] <= 1e-15:
            self.module_visit.pop(current, None)
            self.module_exit.pop(current, None)
        # Add to the target.
        self.module[node] = target
        self.module_visit[target] = self.module_visit.get(target, 0.0) + self.visit[node]
        self.module_exit[target] = (
            self.module_exit.get(target, 0.0)
            + node_exit
            - 2.0 * links.get(target, 0.0)
        )

    def one_pass(self, rng: random.Random) -> bool:
        """Greedy sweep: move each node to its best module by codelength."""
        nodes = list(self.graph.nodes())
        rng.shuffle(nodes)
        moved = False
        for node in nodes:
            links = self._links_to_modules(node)
            if not links:
                continue
            current = self.module[node]
            best_label = current
            best_length = self.codelength()
            for label in sorted(links):
                if label == current:
                    continue
                self._apply(node, label, links)
                length = self.codelength()
                if length < best_length - 1e-12:
                    best_length = length
                    best_label = label
                self._apply(node, current, links)
            if best_label != current:
                self._apply(node, best_label, links)
                moved = True
        return moved


def _aggregate(graph: WeightedGraph, module: dict[NodeKey, int]) -> WeightedGraph:
    meta = WeightedGraph()
    for node in graph.nodes():
        meta.add_node(module[node])
    for u, v, weight in graph.edges():
        meta.add_edge(module[u], module[v], weight)
    return meta


def infomap(
    graph: WeightedGraph, config: CommunityConfig | None = None
) -> MapEquationResult:
    """Minimise the two-level map equation; returns the best partition."""
    cfg = config or CommunityConfig()
    rng = random.Random(cfg.seed)
    mapping: dict[NodeKey, NodeKey] = {node: node for node in graph.nodes()}
    working = graph
    best: Partition | None = None

    for _ in range(cfg.max_passes):
        state = _MapState(working)
        improved = False
        for _ in range(cfg.max_passes):
            if not state.one_pass(rng):
                break
            improved = True
        if not improved:
            break
        labels = sorted(set(state.module.values()))
        compact = {label: index for index, label in enumerate(labels)}
        module = {node: compact[label] for node, label in state.module.items()}
        mapping = {node: module[mapping[node]] for node in mapping}
        best = Partition.from_assignment(mapping)
        if len(labels) == len(state.module):
            break
        working = _aggregate(working, module)

    if best is None:
        best = Partition.from_assignment(
            {node: index for index, node in enumerate(graph.nodes())}
        )
    return MapEquationResult(partition=best, codelength=map_equation(graph, best))
